//! Property tests for the battery physics and charger policies.

use proptest::prelude::*;

use recharge_battery::{
    variable_current, Bbu, BbuPack, BbuParams, BbuState, ChargePolicy, ChargeTimeTable,
};
use recharge_units::{Amperes, Dod, Joules, Seconds, Watts};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn soc_stays_in_bounds_under_any_schedule(
        ops in proptest::collection::vec((0u8..3, 0.1f64..5_000.0, 1.0f64..300.0), 1..40)
    ) {
        let mut pack = BbuPack::new(BbuParams::production());
        for (op, magnitude, secs) in ops {
            match op {
                0 => {
                    pack.discharge_step(Watts::new(magnitude), Seconds::new(secs));
                }
                1 => {
                    let amps = Amperes::new((magnitude / 1_000.0).clamp(0.0, 5.0));
                    pack.charge_step(amps, Seconds::new(secs));
                }
                _ => {
                    // Interleave both in one step pair.
                    pack.discharge_step(Watts::new(magnitude), Seconds::new(secs / 2.0));
                    pack.charge_step(Amperes::new(2.0), Seconds::new(secs / 2.0));
                }
            }
            let soc = pack.soc().value();
            prop_assert!((0.0..=1.0).contains(&soc), "SoC {soc} out of bounds");
        }
    }

    #[test]
    fn discharge_energy_accounting_is_exact(
        power in 100.0f64..3_300.0,
        secs in 1.0f64..90.0,
    ) {
        let params = BbuParams::production();
        let mut pack = BbuPack::new(params);
        let step = pack.discharge_step(Watts::new(power), Seconds::new(secs));
        let delivered = step.delivered_power * Seconds::new(secs);
        let missing = params.full_discharge_energy * pack.dod().value();
        prop_assert!(
            (delivered.as_joules() - missing.as_joules()).abs() < 1.0,
            "delivered {delivered} vs missing {missing}"
        );
    }

    #[test]
    fn eq1_is_monotone_and_bounded(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c_lo = variable_current(Dod::new(lo));
        let c_hi = variable_current(Dod::new(hi));
        prop_assert!(c_lo <= c_hi, "Eq.1 not monotone: {c_lo} at {lo} vs {c_hi} at {hi}");
        prop_assert!(c_hi <= Amperes::MAX_CHARGE && c_lo >= Amperes::new(2.0));
    }

    #[test]
    fn charge_time_lookup_is_monotone_in_both_axes(
        d1 in 0.0f64..=1.0, d2 in 0.0f64..=1.0,
        c1 in 1.0f64..=5.0, c2 in 1.0f64..=5.0,
    ) {
        let table = ChargeTimeTable::production();
        let (d_lo, d_hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let (c_lo, c_hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let t_base = table.charge_time(Dod::new(d_lo), Amperes::new(c_hi)).unwrap();
        let t_deeper = table.charge_time(Dod::new(d_hi), Amperes::new(c_hi)).unwrap();
        let t_slower = table.charge_time(Dod::new(d_lo), Amperes::new(c_lo)).unwrap();
        prop_assert!(t_deeper >= t_base - Seconds::new(1.0));
        prop_assert!(t_slower >= t_base - Seconds::new(1.0));
    }

    #[test]
    fn bbu_state_machine_never_skips_charging(
        load_kw in 1.0f64..3.3,
        ot_secs in 5.0f64..90.0,
    ) {
        let mut bbu = Bbu::new(BbuParams::production(), ChargePolicy::Variable);
        bbu.input_power_lost();
        bbu.step(Watts::from_kilowatts(load_kw), Seconds::new(ot_secs));
        bbu.input_power_restored();
        // Any nonzero discharge must route through Charging before
        // FullyCharged (Fig 8a has no shortcut).
        prop_assert_eq!(bbu.state(), BbuState::Charging);
        prop_assert!(bbu.event_dod() > Dod::ZERO);
    }

    #[test]
    fn required_current_is_consistent_with_lookup(
        dod in 0.0f64..=1.0,
        budget_min in 10.0f64..150.0,
    ) {
        let table = ChargeTimeTable::production();
        let budget = Seconds::from_minutes(budget_min);
        if let Some(current) = table.required_current(Dod::new(dod), budget).unwrap() {
            let t = table.charge_time(Dod::new(dod), current).unwrap();
            prop_assert!(t <= budget + Seconds::new(1.0), "{t} > {budget} at {current}");
        } else {
            let t_max = table.charge_time(Dod::new(dod), Amperes::MAX_CHARGE).unwrap();
            prop_assert!(t_max > budget);
        }
    }

    #[test]
    fn wall_power_is_bounded_by_physical_ceiling(
        dod in 0.01f64..=1.0,
        amps in 1.0f64..=5.0,
    ) {
        let params = BbuParams::production();
        let mut pack = BbuPack::discharged(params, Dod::new(dod));
        let ceiling =
            params.cv_voltage.as_volts() * amps * params.wall_loss_factor + 1e-6;
        let mut guard = 0;
        while !pack.is_fully_charged() {
            let step = pack.charge_step(Amperes::new(amps), Seconds::new(1.0));
            prop_assert!(step.wall_power.as_watts() <= ceiling);
            prop_assert!(step.wall_power >= Watts::ZERO);
            guard += 1;
            prop_assert!(guard < 200_000);
        }
    }

    #[test]
    fn energy_missing_equals_event_dod_at_charge_start(
        load_kw in 0.5f64..3.0,
        secs in 1.0f64..120.0,
    ) {
        let mut bbu = Bbu::new(BbuParams::production(), ChargePolicy::Variable);
        bbu.input_power_lost();
        bbu.step(Watts::from_kilowatts(load_kw), Seconds::new(secs));
        bbu.input_power_restored();
        let expected = (load_kw * 1_000.0 * secs / 297_000.0).min(1.0);
        prop_assert!(
            (bbu.event_dod().value() - expected).abs() < 1e-9,
            "event dod {} vs expected {expected}",
            bbu.event_dod()
        );
    }

    #[test]
    fn no_charge_event_strictly_before_the_predicted_time(
        dod in 0.005f64..=1.0,
        amps in 0.5f64..=5.0,
        dt in 0.25f64..=30.0,
    ) {
        // The event-driven scheduler's safety contract: dense stepping at any
        // step size must not observe the next qualitative charge event (CC→CV
        // knee, or termination once in CV) strictly before the analytic lower
        // bound taken from the same state.
        let params = BbuParams::production();
        let mut pack = BbuPack::discharged(params, Dod::new(dod));
        let setpoint = Amperes::new(amps);
        let predicted = pack.next_event_time(setpoint);
        prop_assert!(predicted.as_secs() >= 0.0);
        prop_assert!(predicted.as_secs().is_finite(), "{predicted}");

        // Which event the bound refers to depends on the starting phase.
        let started_cc = params.ocv(pack.soc().value())
            + setpoint * params.internal_resistance
            < params.cc_to_cv_voltage;
        let mut steps: u64 = 0;
        loop {
            let step = pack.charge_step(setpoint, Seconds::new(dt));
            let event = if started_cc {
                step.phase != recharge_battery::ChargePhase::ConstantCurrent
            } else {
                step.phase == recharge_battery::ChargePhase::Complete
            };
            if event {
                // The event is observed at the *start* of this step.
                let elapsed = steps as f64 * dt;
                let slack = 1e-9 * predicted.as_secs().max(1.0);
                prop_assert!(
                    elapsed >= predicted.as_secs() - slack,
                    "event at {elapsed:.3} s, predicted no earlier than {predicted}"
                );
                break;
            }
            steps += 1;
            prop_assert!(steps < 1_000_000, "no event observed");
        }
    }

    #[test]
    fn charged_energy_never_exceeds_capacity(dod in 0.0f64..=1.0) {
        let params = BbuParams::production();
        let mut pack = BbuPack::discharged(params, Dod::new(dod));
        let mut stored = Joules::ZERO;
        let mut guard = 0;
        while !pack.is_fully_charged() && guard < 200_000 {
            stored += pack.charge_step(Amperes::new(5.0), Seconds::new(1.0)).stored_energy;
            guard += 1;
        }
        prop_assert!(stored <= params.full_discharge_energy * 1.01);
    }
}
