//! The paper's empirical rack-recharge-power approximation (§V-B): a constant
//! power draw during the CC phase followed by an exponential CV tail of the
//! form `A·e^{B·t}`.
//!
//! The fleet simulator integrates the physical model directly; this module
//! exists to (a) verify that the physics reproduces the paper's published fit
//! (`1.9 e^{−0.18 t} kW` for a fully discharged rack at 5 A) and (b) provide a
//! cheap closed-form profile for analytical estimates.

use serde::{Deserialize, Serialize};

use recharge_units::{Amperes, Dod, Seconds, Watts};

use crate::charger::ChargePolicy;
use crate::error::BatteryError;
use crate::pack::ChargePhase;
use crate::params::BbuParams;
use crate::rack::RackBatterySystem;

/// Closed-form rack recharge-power profile: constant CC power for
/// `cc_duration`, then an exponential decay `cv_initial · e^{−decay · t}`.
///
/// # Examples
///
/// ```
/// use recharge_battery::profile::EmpiricalProfile;
/// use recharge_battery::BbuParams;
/// use recharge_units::{Amperes, Dod, Seconds, Watts};
///
/// let profile =
///     EmpiricalProfile::fit(&BbuParams::default(), Dod::FULL, Amperes::new(5.0)).unwrap();
/// // §V-B quotes ≈1.9 kW of CC power for a fully discharged rack at 5 A.
/// assert!(profile.cc_power.as_kilowatts() > 1.5);
/// // Power is non-increasing over the charge.
/// assert!(profile.power_at(Seconds::from_minutes(30.0)) <= profile.cc_power);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalProfile {
    /// Constant rack wall power during the CC phase.
    pub cc_power: Watts,
    /// Duration of the CC phase (zero when charging starts in CV).
    pub cc_duration: Seconds,
    /// Rack wall power at the start of the CV tail.
    pub cv_initial: Watts,
    /// Exponential decay rate of the CV tail, per minute (positive).
    pub cv_decay_per_minute: f64,
    /// Total time until charge termination.
    pub total_duration: Seconds,
}

impl EmpiricalProfile {
    /// Fits the closed form to the physical model for one rack at the given
    /// depth of discharge and charging current.
    ///
    /// The CC power is the mean wall power over the CC phase; the CV decay is
    /// a least-squares log-linear fit over the tail.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParams`] for invalid `params` and
    /// [`BatteryError::ChargeDidNotConverge`] if the charge does not finish
    /// within eight simulated hours.
    pub fn fit(
        params: &BbuParams,
        dod: Dod,
        current: Amperes,
    ) -> Result<EmpiricalProfile, BatteryError> {
        params.validate()?;
        let trace = simulate_rack_recharge(params, dod, current)?;

        let cc_samples: Vec<&ProfileSample> = trace
            .iter()
            .filter(|s| s.phase == ChargePhase::ConstantCurrent)
            .collect();
        let cv_samples: Vec<&ProfileSample> = trace
            .iter()
            .filter(|s| s.phase == ChargePhase::ConstantVoltage)
            .collect();

        let cc_duration = Seconds::new(cc_samples.len() as f64);
        let cc_power = if cc_samples.is_empty() {
            cv_samples.first().map_or(Watts::ZERO, |s| s.power)
        } else {
            cc_samples.iter().map(|s| s.power).sum::<Watts>() / cc_samples.len() as f64
        };

        // Log-linear least squares on the CV tail: ln P = ln A + B·t.
        let (cv_initial, decay) = if cv_samples.len() >= 2 {
            let t0 = cv_samples[0].at.as_minutes();
            let n = cv_samples.len() as f64;
            let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
            for s in &cv_samples {
                let x = s.at.as_minutes() - t0;
                let y = s.power.as_watts().max(1e-6).ln();
                sx += x;
                sy += y;
                sxx += x * x;
                sxy += x * y;
            }
            let denom = n * sxx - sx * sx;
            if denom.abs() < 1e-12 {
                (cv_samples[0].power, 0.0)
            } else {
                let slope = (n * sxy - sx * sy) / denom;
                let intercept = (sy - slope * sx) / n;
                (Watts::new(intercept.exp()), -slope)
            }
        } else {
            (cc_power, 0.0)
        };

        Ok(EmpiricalProfile {
            cc_power,
            cc_duration,
            cv_initial,
            cv_decay_per_minute: decay,
            total_duration: Seconds::new(trace.len() as f64),
        })
    }

    /// Rack wall power `elapsed` after the start of charging under the fitted
    /// closed form (zero once the charge has terminated).
    #[must_use]
    pub fn power_at(&self, elapsed: Seconds) -> Watts {
        if elapsed < Seconds::ZERO || elapsed >= self.total_duration {
            Watts::ZERO
        } else if elapsed < self.cc_duration {
            self.cc_power
        } else {
            let tail_minutes = (elapsed - self.cc_duration).as_minutes();
            self.cv_initial * (-self.cv_decay_per_minute * tail_minutes).exp()
        }
    }

    /// Total wall energy implied by the closed form.
    #[must_use]
    pub fn total_energy(&self) -> recharge_units::Joules {
        let cc = self.cc_power * self.cc_duration;
        let tail_minutes = (self.total_duration - self.cc_duration)
            .as_minutes()
            .max(0.0);
        let cv = if self.cv_decay_per_minute > 1e-12 {
            self.cv_initial
                * Seconds::from_minutes(
                    (1.0 - (-self.cv_decay_per_minute * tail_minutes).exp())
                        / self.cv_decay_per_minute,
                )
        } else {
            self.cv_initial * Seconds::from_minutes(tail_minutes)
        };
        cc + cv
    }
}

struct ProfileSample {
    at: Seconds,
    phase: ChargePhase,
    power: Watts,
}

/// Simulates one rack recharging from `dod` at a fixed setpoint, sampling the
/// wall power every second until termination.
fn simulate_rack_recharge(
    params: &BbuParams,
    dod: Dod,
    current: Amperes,
) -> Result<Vec<ProfileSample>, BatteryError> {
    let mut rack = RackBatterySystem::new(*params, ChargePolicy::Original);
    // Bring the shelf to the requested DOD via a synthetic discharge event.
    rack.input_power_lost();
    let energy = params.full_discharge_energy * dod.value();
    if energy > recharge_units::Joules::ZERO {
        // Discharge the representative BBU at its max rate for the right time.
        let secs = energy / params.max_discharge_power;
        rack.step(
            params.max_discharge_power * f64::from(params.bbus_per_rack),
            secs,
        );
    }
    rack.input_power_restored();
    rack.set_override(current);

    let mut samples = Vec::new();
    let dt = Seconds::new(1.0);
    let mut elapsed = Seconds::ZERO;
    let limit = Seconds::from_hours(8.0);
    while !rack.is_redundant() {
        if elapsed > limit {
            return Err(BatteryError::ChargeDidNotConverge {
                dod: dod.value(),
                current: current.as_amps(),
            });
        }
        let before = rack.bbu().pack().soc();
        let report = rack.step(Watts::ZERO, dt);
        let phase = if rack.is_redundant() {
            ChargePhase::Complete
        } else if rack.bbu().pack().natural_cv_current() > report.charge_current
            && before.value() < 1.0
            && report.charge_current >= current
        {
            ChargePhase::ConstantCurrent
        } else {
            ChargePhase::ConstantVoltage
        };
        if report.recharge_power > Watts::ZERO {
            samples.push(ProfileSample {
                at: elapsed,
                phase,
                power: report.recharge_power,
            });
        }
        elapsed += dt;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_discharge_5a_matches_paper_fit() {
        // §V-B: "for a fully discharged rack charging at 5 A, CC power would
        // be a constant 1.9 kW and the CV power approximated by 1.9·e^{−0.18t}".
        let p = EmpiricalProfile::fit(&BbuParams::default(), Dod::FULL, Amperes::new(5.0)).unwrap();
        assert!(
            (1.5..2.1).contains(&p.cc_power.as_kilowatts()),
            "CC power {} should be ≈1.9 kW",
            p.cc_power
        );
        assert!(
            (0.05..0.4).contains(&p.cv_decay_per_minute),
            "CV decay {:.3}/min should be ≈0.18/min",
            p.cv_decay_per_minute
        );
        assert!(
            (25.0..45.0).contains(&p.total_duration.as_minutes()),
            "total {} min",
            p.total_duration.as_minutes()
        );
    }

    #[test]
    fn cc_duration_shrinks_with_dod() {
        // Fig 4: shallower discharges shorten the CC phase, not the CV tail.
        let params = BbuParams::default();
        let deep = EmpiricalProfile::fit(&params, Dod::FULL, Amperes::new(5.0)).unwrap();
        let shallow = EmpiricalProfile::fit(&params, Dod::new(0.5), Amperes::new(5.0)).unwrap();
        assert!(deep.cc_duration > shallow.cc_duration);
    }

    #[test]
    fn power_peaks_early_and_ends_at_zero() {
        let p =
            EmpiricalProfile::fit(&BbuParams::default(), Dod::new(0.8), Amperes::new(4.0)).unwrap();
        // The closed form may step up slightly at the CC→CV hand-off (the CV
        // regulation voltage exceeds the CC→CV threshold), but the profile
        // peak stays within 25% of the CC plateau and the tail decays.
        let mut peak = 0.0f64;
        let mut t = Seconds::ZERO;
        while t < p.total_duration {
            peak = peak.max(p.power_at(t).as_watts());
            t += Seconds::new(10.0);
        }
        assert!(
            peak <= p.cc_power.as_watts() * 1.25,
            "peak {peak} vs CC {}",
            p.cc_power
        );
        let near_end = p.power_at(p.total_duration - Seconds::new(30.0));
        assert!(
            near_end < p.cc_power * 0.7,
            "tail {near_end} should have decayed"
        );
        assert_eq!(p.power_at(p.total_duration), Watts::ZERO);
        assert_eq!(p.power_at(Seconds::new(-1.0)), Watts::ZERO);
    }

    #[test]
    fn closed_form_energy_is_close_to_physics() {
        let params = BbuParams::default();
        let p = EmpiricalProfile::fit(&params, Dod::FULL, Amperes::new(5.0)).unwrap();
        // Physics wall energy: 6 BBUs × capacity / efficiency × loss factor,
        // roughly — the closed form should land within 30%.
        let physical = params.full_discharge_energy.as_joules() * f64::from(params.bbus_per_rack)
            / params.charge_efficiency
            * params.wall_loss_factor;
        let ratio = p.total_energy().as_joules() / physical;
        assert!(
            (0.7..1.3).contains(&ratio),
            "closed-form/physics energy ratio {ratio:.2}"
        );
    }

    #[test]
    fn low_dod_profile_may_skip_cc() {
        let p = EmpiricalProfile::fit(&BbuParams::default(), Dod::new(0.05), Amperes::new(5.0))
            .unwrap();
        assert!(p.cc_duration < Seconds::from_minutes(2.0));
        assert!(p.cv_initial > Watts::ZERO);
    }
}
