//! The scalar CC-CV / discharge kernel over raw pack state.
//!
//! One BBU's electrical state is two scalars — `soc` and the
//! `charge_terminated` latch — plus the shared [`BbuParams`]. The object
//! path ([`BbuPack`](crate::BbuPack)) wraps that state per pack; the
//! struct-of-arrays fleet kernel in `recharge-dynamo` holds it in contiguous
//! arrays and steps thousands of racks in one pass. Both call *these*
//! functions, so the two paths execute the same floating-point operations in
//! the same order and stay bit-identical by construction.

use recharge_units::{Amperes, Joules, Seconds, Volts, Watts};

use crate::pack::{ChargePhase, ChargeStep, DischargeStep};
use crate::params::BbuParams;

/// Current the CV loop would naturally drive at open-circuit voltage `ocv`,
/// before clamping to the commanded setpoint.
#[inline]
#[must_use]
pub fn natural_cv_current(params: &BbuParams, ocv: Volts) -> Amperes {
    ((params.cv_voltage - ocv) / params.internal_resistance).max(Amperes::ZERO)
}

/// Advances the CC-CV charge sequence of Fig 6(a) by `dt` over raw state.
///
/// 1. If the terminal voltage at the setpoint current stays below the CC→CV
///    threshold (52 V), charge at constant current.
/// 2. Otherwise regulate the terminal at the CV voltage (52.5 V); the current
///    is the natural taper current, clamped to the setpoint.
/// 3. Terminate when the taper current falls to the cutoff (400 mA). The
///    terminating step reports the sub-cutoff current that still flowed (the
///    wall-power series tapers, it does not dip to zero one tick early) and a
///    `stored_energy` equal to the *entire* remaining sliver of capacity, so
///    cumulative stored energy telescopes exactly with ΔSoC × capacity. The
///    sliver charged beyond the physical taper flow is bounded by
///    `(1 − soc_cutoff) × capacity` — ≈0.4% of capacity with the production
///    parameters, whose [`BbuParams::validate`] requires the taper to cross
///    the cutoff strictly before 100% SoC.
///
/// A zero or negative `setpoint` pauses charging (used by coordination layers
/// that postpone charging entirely).
#[inline]
pub fn charge_step(
    params: &BbuParams,
    soc: &mut f64,
    charge_terminated: &mut bool,
    setpoint: Amperes,
    dt: Seconds,
) -> ChargeStep {
    if *charge_terminated || setpoint <= Amperes::ZERO || dt <= Seconds::ZERO {
        return ChargeStep {
            phase: if *charge_terminated {
                ChargePhase::Complete
            } else {
                ChargePhase::ConstantCurrent
            },
            current: Amperes::ZERO,
            terminal_voltage: params.ocv(*soc),
            wall_power: Watts::ZERO,
            stored_energy: Joules::ZERO,
        };
    }

    let ocv = params.ocv(*soc);
    let cc_terminal = ocv + setpoint * params.internal_resistance;

    let (phase, current, terminal) = if cc_terminal < params.cc_to_cv_voltage {
        (ChargePhase::ConstantCurrent, setpoint, cc_terminal)
    } else {
        let natural = natural_cv_current(params, ocv);
        let current = natural.min(setpoint);
        if current <= params.cutoff_current {
            // Taper finished: latch termination and snap the remaining sliver
            // of charge, reporting it as stored so the cumulative series
            // telescopes; the sub-cutoff current still flowed during `dt`.
            let stored = params.full_discharge_energy * (1.0 - *soc);
            *soc = 1.0;
            *charge_terminated = true;
            return ChargeStep {
                phase: ChargePhase::Complete,
                current,
                terminal_voltage: params.cv_voltage,
                wall_power: params.cv_voltage * current * params.wall_loss_factor,
                stored_energy: stored,
            };
        }
        (ChargePhase::ConstantVoltage, current, params.cv_voltage)
    };

    // Energy stored by the chemistry accrues at the open-circuit potential
    // scaled by the charge-acceptance efficiency; the I²R drop is heat.
    let stored = ocv * current * dt * params.charge_efficiency;
    *soc = (*soc + stored / params.full_discharge_energy).min(1.0);

    let wall_power = terminal * current * params.wall_loss_factor;
    ChargeStep {
        phase,
        current,
        terminal_voltage: terminal,
        wall_power,
        stored_energy: stored,
    }
}

/// A conservative lower bound on the time until the charge sequence's next
/// *qualitative* event — the CC→CV knee crossing while the pack charges in
/// constant current, or charge termination (the taper reaching the cutoff)
/// once it is in constant voltage.
///
/// The bound is analytic. Under the affine OCV model both thresholds
/// correspond to fixed states of charge:
///
/// ```text
/// soc_knee = (cc_to_cv_voltage − I·R − ocv_empty) / (ocv_full − ocv_empty)
/// soc_cut  = (cv_voltage − I_cutoff·R − ocv_empty) / (ocv_full − ocv_empty)
/// ```
///
/// and every charging step stores at most `ocv_full × I_now × η` joules per
/// second, because the OCV and (in CV) the taper current only fall as charge
/// accrues. Dividing the charge still missing to the threshold by that
/// ceiling can therefore only *under*-estimate the time to the event:
/// discrete stepping with any `dt` cannot observe the event strictly before
/// the returned time (property-tested). The event-driven backend uses this
/// as a safe horizon — never as permission to skip state it would otherwise
/// have computed, since the accumulated float series is step-size dependent.
///
/// The bound is valid only while the inputs stand still: a setpoint change,
/// a postpone/override, or any discharge invalidates it and a fresh bound
/// must be taken from the new state.
///
/// Returns infinite [`Seconds`] when no self-driven event can occur: charging
/// already terminated, a non-positive setpoint (postponed), or parameters
/// whose threshold lies beyond 100% SoC.
#[must_use]
pub fn next_charge_event_time(
    params: &BbuParams,
    soc: f64,
    charge_terminated: bool,
    setpoint: Amperes,
) -> Seconds {
    let never = Seconds::new(f64::INFINITY);
    if charge_terminated || setpoint <= Amperes::ZERO {
        return never;
    }
    let span = params.ocv_full.as_volts() - params.ocv_empty.as_volts();
    let r = params.internal_resistance.as_ohms();
    let capacity = params.full_discharge_energy.as_joules();
    // J/s stored per ampere at the OCV ceiling.
    let rate_per_amp = params.ocv_full.as_volts() * params.charge_efficiency;

    let cc_terminal = params.ocv(soc) + setpoint * params.internal_resistance;
    if cc_terminal < params.cc_to_cv_voltage {
        // Constant current: the next event is the CC→CV knee.
        let soc_knee = (params.cc_to_cv_voltage.as_volts()
            - setpoint.as_amps() * r
            - params.ocv_empty.as_volts())
            / span;
        if soc_knee > 1.0 {
            return never; // the terminal can never reach the knee
        }
        let missing = (soc_knee - soc).max(0.0) * capacity;
        Seconds::new(missing / (rate_per_amp * setpoint.as_amps()))
    } else {
        // Constant voltage: the next event is termination at the cutoff.
        let current_now = natural_cv_current(params, params.ocv(soc)).min(setpoint);
        if current_now <= params.cutoff_current {
            return Seconds::ZERO; // the very next step latches completion
        }
        let soc_cut = (params.cv_voltage.as_volts()
            - params.cutoff_current.as_amps() * r
            - params.ocv_empty.as_volts())
            / span;
        if soc_cut > 1.0 {
            return never; // the taper never crosses the cutoff
        }
        let missing = (soc_cut - soc).max(0.0) * capacity;
        Seconds::new(missing / (rate_per_amp * current_now.as_amps()))
    }
}

/// A lower bound on the time for the CV tail to ε-settle: to store all but
/// an `epsilon` fraction of capacity from the present state of charge at the
/// given setpoint.
///
/// Same ceiling argument as [`next_charge_event_time`]: the present current
/// (natural taper clamped to the setpoint) and `ocv_full` bound the storage
/// rate of every future step, so the bound is conservative for any step
/// size. Infinite when charging is paused or the taper has already stalled.
#[must_use]
pub fn cv_settle_time(params: &BbuParams, soc: f64, setpoint: Amperes, epsilon: f64) -> Seconds {
    if setpoint <= Amperes::ZERO {
        return Seconds::new(f64::INFINITY);
    }
    let target = (1.0 - epsilon.clamp(0.0, 1.0)).max(0.0);
    if soc >= target {
        return Seconds::ZERO;
    }
    let current = natural_cv_current(params, params.ocv(soc)).min(setpoint);
    if current <= Amperes::ZERO {
        return Seconds::new(f64::INFINITY);
    }
    let rate = params.ocv_full.as_volts() * current.as_amps() * params.charge_efficiency;
    Seconds::new((target - soc) * params.full_discharge_energy.as_joules() / rate)
}

/// Draws `requested` power from raw pack state for `dt`.
///
/// Delivery is limited by the per-BBU discharge ceiling
/// ([`BbuParams::max_discharge_power`]) and by the energy remaining; if the
/// pack empties mid-step the delivered power is the average over `dt`. Any
/// actual discharge clears the `charge_terminated` latch.
#[inline]
pub fn discharge_step(
    params: &BbuParams,
    soc: &mut f64,
    charge_terminated: &mut bool,
    requested: Watts,
    dt: Seconds,
) -> DischargeStep {
    let depleted_now = *soc <= 0.0;
    if requested <= Watts::ZERO || dt <= Seconds::ZERO || depleted_now {
        return DischargeStep {
            delivered_power: Watts::ZERO,
            depleted: depleted_now,
        };
    }
    *charge_terminated = false;

    let power = requested.min(params.max_discharge_power);
    let wanted = power * dt;
    let available = params.full_discharge_energy * *soc;
    let (delivered_energy, depleted) = if wanted >= available {
        (available, true)
    } else {
        (wanted, false)
    };

    *soc = (*soc - delivered_energy / params.full_discharge_energy).max(0.0);
    if depleted {
        *soc = 0.0;
    }
    DischargeStep {
        delivered_power: delivered_energy / dt,
        depleted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn production() -> BbuParams {
        BbuParams::production()
    }

    #[test]
    fn terminated_or_paused_charging_has_no_event() {
        let p = production();
        assert!(next_charge_event_time(&p, 1.0, true, Amperes::new(5.0))
            .as_secs()
            .is_infinite());
        assert!(next_charge_event_time(&p, 0.5, false, Amperes::ZERO)
            .as_secs()
            .is_infinite());
        assert!(next_charge_event_time(&p, 0.5, false, Amperes::new(-1.0))
            .as_secs()
            .is_infinite());
    }

    #[test]
    fn cc_phase_predicts_a_positive_knee_horizon() {
        let p = production();
        // Half discharged at 5 A: deep in CC, the knee is minutes away.
        let t = next_charge_event_time(&p, 0.5, false, Amperes::new(5.0));
        assert!(t > Seconds::new(60.0), "knee horizon {t}");
        // The bound must not exceed the true knee time: stepping densely at
        // 1 s must stay in CC for at least `t` seconds.
        let mut soc = 0.5;
        let mut term = false;
        let mut elapsed = 0.0;
        loop {
            let step = charge_step(
                &p,
                &mut soc,
                &mut term,
                Amperes::new(5.0),
                Seconds::new(1.0),
            );
            if step.phase != ChargePhase::ConstantCurrent {
                break;
            }
            elapsed += 1.0;
            assert!(elapsed < 1e6, "never left CC");
        }
        assert!(
            elapsed >= t.as_secs() - 1e-9,
            "knee at {elapsed:.1} s before predicted {t}"
        );
    }

    #[test]
    fn cv_phase_predicts_termination_and_zero_at_the_cutoff() {
        let p = production();
        // Just past the cutoff SoC the next step must terminate: bound is 0.
        let span = p.ocv_full.as_volts() - p.ocv_empty.as_volts();
        let soc_cut = (p.cv_voltage.as_volts()
            - p.cutoff_current.as_amps() * p.internal_resistance.as_ohms()
            - p.ocv_empty.as_volts())
            / span;
        assert_eq!(
            next_charge_event_time(&p, soc_cut + 1e-6, false, Amperes::new(2.0)),
            Seconds::ZERO
        );
        // Early in the CV leg the bound is positive and conservative.
        let soc0 = soc_cut - 0.02;
        let t = next_charge_event_time(&p, soc0, false, Amperes::new(2.0));
        assert!(t > Seconds::ZERO, "{t}");
        let mut soc = soc0;
        let mut term = false;
        let mut elapsed = 0.0;
        while !term {
            charge_step(
                &p,
                &mut soc,
                &mut term,
                Amperes::new(2.0),
                Seconds::new(1.0),
            );
            if !term {
                elapsed += 1.0;
            }
            assert!(elapsed < 1e6, "never terminated");
        }
        assert!(
            elapsed >= t.as_secs() - 1e-9,
            "terminated at {elapsed:.1} s before predicted {t}"
        );
    }

    #[test]
    fn settle_time_is_conservative_and_monotone_in_epsilon() {
        let p = production();
        let loose = cv_settle_time(&p, 0.9, Amperes::new(2.0), 0.05);
        let tight = cv_settle_time(&p, 0.9, Amperes::new(2.0), 0.005);
        assert!(tight > loose, "tight {tight} vs loose {loose}");
        assert_eq!(
            cv_settle_time(&p, 0.999, Amperes::new(2.0), 0.01),
            Seconds::ZERO
        );
        assert!(cv_settle_time(&p, 0.5, Amperes::ZERO, 0.01)
            .as_secs()
            .is_infinite());
    }
}
