//! The scalar CC-CV / discharge kernel over raw pack state.
//!
//! One BBU's electrical state is two scalars — `soc` and the
//! `charge_terminated` latch — plus the shared [`BbuParams`]. The object
//! path ([`BbuPack`](crate::BbuPack)) wraps that state per pack; the
//! struct-of-arrays fleet kernel in `recharge-dynamo` holds it in contiguous
//! arrays and steps thousands of racks in one pass. Both call *these*
//! functions, so the two paths execute the same floating-point operations in
//! the same order and stay bit-identical by construction.

use recharge_units::{Amperes, Joules, Seconds, Volts, Watts};

use crate::pack::{ChargePhase, ChargeStep, DischargeStep};
use crate::params::BbuParams;

/// Current the CV loop would naturally drive at open-circuit voltage `ocv`,
/// before clamping to the commanded setpoint.
#[inline]
#[must_use]
pub fn natural_cv_current(params: &BbuParams, ocv: Volts) -> Amperes {
    ((params.cv_voltage - ocv) / params.internal_resistance).max(Amperes::ZERO)
}

/// Advances the CC-CV charge sequence of Fig 6(a) by `dt` over raw state.
///
/// 1. If the terminal voltage at the setpoint current stays below the CC→CV
///    threshold (52 V), charge at constant current.
/// 2. Otherwise regulate the terminal at the CV voltage (52.5 V); the current
///    is the natural taper current, clamped to the setpoint.
/// 3. Terminate when the taper current falls to the cutoff (400 mA). The
///    terminating step reports the sub-cutoff current that still flowed (the
///    wall-power series tapers, it does not dip to zero one tick early) and a
///    `stored_energy` equal to the *entire* remaining sliver of capacity, so
///    cumulative stored energy telescopes exactly with ΔSoC × capacity. The
///    sliver charged beyond the physical taper flow is bounded by
///    `(1 − soc_cutoff) × capacity` — ≈0.4% of capacity with the production
///    parameters, whose [`BbuParams::validate`] requires the taper to cross
///    the cutoff strictly before 100% SoC.
///
/// A zero or negative `setpoint` pauses charging (used by coordination layers
/// that postpone charging entirely).
#[inline]
pub fn charge_step(
    params: &BbuParams,
    soc: &mut f64,
    charge_terminated: &mut bool,
    setpoint: Amperes,
    dt: Seconds,
) -> ChargeStep {
    if *charge_terminated || setpoint <= Amperes::ZERO || dt <= Seconds::ZERO {
        return ChargeStep {
            phase: if *charge_terminated {
                ChargePhase::Complete
            } else {
                ChargePhase::ConstantCurrent
            },
            current: Amperes::ZERO,
            terminal_voltage: params.ocv(*soc),
            wall_power: Watts::ZERO,
            stored_energy: Joules::ZERO,
        };
    }

    let ocv = params.ocv(*soc);
    let cc_terminal = ocv + setpoint * params.internal_resistance;

    let (phase, current, terminal) = if cc_terminal < params.cc_to_cv_voltage {
        (ChargePhase::ConstantCurrent, setpoint, cc_terminal)
    } else {
        let natural = natural_cv_current(params, ocv);
        let current = natural.min(setpoint);
        if current <= params.cutoff_current {
            // Taper finished: latch termination and snap the remaining sliver
            // of charge, reporting it as stored so the cumulative series
            // telescopes; the sub-cutoff current still flowed during `dt`.
            let stored = params.full_discharge_energy * (1.0 - *soc);
            *soc = 1.0;
            *charge_terminated = true;
            return ChargeStep {
                phase: ChargePhase::Complete,
                current,
                terminal_voltage: params.cv_voltage,
                wall_power: params.cv_voltage * current * params.wall_loss_factor,
                stored_energy: stored,
            };
        }
        (ChargePhase::ConstantVoltage, current, params.cv_voltage)
    };

    // Energy stored by the chemistry accrues at the open-circuit potential
    // scaled by the charge-acceptance efficiency; the I²R drop is heat.
    let stored = ocv * current * dt * params.charge_efficiency;
    *soc = (*soc + stored / params.full_discharge_energy).min(1.0);

    let wall_power = terminal * current * params.wall_loss_factor;
    ChargeStep {
        phase,
        current,
        terminal_voltage: terminal,
        wall_power,
        stored_energy: stored,
    }
}

/// Draws `requested` power from raw pack state for `dt`.
///
/// Delivery is limited by the per-BBU discharge ceiling
/// ([`BbuParams::max_discharge_power`]) and by the energy remaining; if the
/// pack empties mid-step the delivered power is the average over `dt`. Any
/// actual discharge clears the `charge_terminated` latch.
#[inline]
pub fn discharge_step(
    params: &BbuParams,
    soc: &mut f64,
    charge_terminated: &mut bool,
    requested: Watts,
    dt: Seconds,
) -> DischargeStep {
    let depleted_now = *soc <= 0.0;
    if requested <= Watts::ZERO || dt <= Seconds::ZERO || depleted_now {
        return DischargeStep {
            delivered_power: Watts::ZERO,
            depleted: depleted_now,
        };
    }
    *charge_terminated = false;

    let power = requested.min(params.max_discharge_power);
    let wanted = power * dt;
    let available = params.full_discharge_energy * *soc;
    let (delivered_energy, depleted) = if wanted >= available {
        (available, true)
    } else {
        (wanted, false)
    };

    *soc = (*soc - delivered_energy / params.full_discharge_energy).max(0.0);
    if depleted {
        *soc = 0.0;
    }
    DischargeStep {
        delivered_power: delivered_energy / dt,
        depleted,
    }
}
