//! Error types of the battery crate.

/// Errors produced by battery model construction and table queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BatteryError {
    /// A parameter set failed validation; the message names the violated
    /// constraint.
    InvalidParams(String),
    /// A charge-time table was asked to interpolate outside its grid.
    OutOfTableRange {
        /// The requested depth of discharge (fraction).
        dod: f64,
        /// The requested charging current in amperes.
        current: f64,
    },
    /// A charge simulation failed to complete within its step budget,
    /// indicating an unphysical parameter set.
    ChargeDidNotConverge {
        /// The depth of discharge being simulated.
        dod: f64,
        /// The charging current in amperes.
        current: f64,
    },
}

impl core::fmt::Display for BatteryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BatteryError::InvalidParams(what) => write!(f, "invalid battery parameters: {what}"),
            BatteryError::OutOfTableRange { dod, current } => write!(
                f,
                "charge-time lookup outside table range (DOD {dod:.3}, current {current:.2} A)"
            ),
            BatteryError::ChargeDidNotConverge { dod, current } => write!(
                f,
                "charge simulation did not converge (DOD {dod:.3}, current {current:.2} A)"
            ),
        }
    }
}

impl std::error::Error for BatteryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = BatteryError::InvalidParams("x must be positive".into());
        assert!(e.to_string().starts_with("invalid battery parameters"));
        let e = BatteryError::OutOfTableRange {
            dod: 0.5,
            current: 9.0,
        };
        assert!(e.to_string().contains("9.00 A"));
        let e = BatteryError::ChargeDidNotConverge {
            dod: 1.0,
            current: 1.0,
        };
        assert!(e.to_string().contains("converge"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatteryError>();
    }
}
