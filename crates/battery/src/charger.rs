//! Charging-current selection: the original charger, the variable charger
//! (Eq. 1), and the manual override used by coordinated control.

use serde::{Deserialize, Serialize};

use recharge_units::{Amperes, Dod};

/// How a charger picks its constant-current setpoint after a discharge event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ChargePolicy {
    /// The original production charger: always 5 A, regardless of DOD
    /// (§III-A). Simple, but causes the worst-case recharge power spike on
    /// every event.
    Original,
    /// The new variable charger (§III-B, Eq. 1): 2 A below 50% DOD, rising
    /// linearly to 5 A at 100% DOD, keeping the charge time within 45 min.
    #[default]
    Variable,
}

impl ChargePolicy {
    /// The automatic setpoint this policy selects for a given depth of
    /// discharge (Fig 6b).
    ///
    /// # Examples
    ///
    /// ```
    /// use recharge_battery::ChargePolicy;
    /// use recharge_units::{Amperes, Dod};
    ///
    /// assert_eq!(ChargePolicy::Original.automatic_current(Dod::new(0.1)), Amperes::new(5.0));
    /// assert_eq!(ChargePolicy::Variable.automatic_current(Dod::new(0.1)), Amperes::new(2.0));
    /// assert_eq!(ChargePolicy::Variable.automatic_current(Dod::new(0.75)), Amperes::new(3.5));
    /// ```
    #[must_use]
    pub fn automatic_current(self, dod: Dod) -> Amperes {
        match self {
            ChargePolicy::Original => Amperes::MAX_CHARGE,
            ChargePolicy::Variable => variable_current(dod),
        }
    }
}

impl core::fmt::Display for ChargePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChargePolicy::Original => f.write_str("original 5 A charger"),
            ChargePolicy::Variable => f.write_str("variable charger"),
        }
    }
}

/// Eq. 1 of the paper: the variable charger's CC setpoint as a function of
/// depth of discharge.
///
/// ```text
/// I_C = 2 + (DOD − 0.5) × 6   if DOD ≥ 50%
/// I_C = 2                      if DOD < 50%
/// ```
#[must_use]
pub fn variable_current(dod: Dod) -> Amperes {
    if dod.is_at_least_half() {
        Amperes::new(2.0 + (dod.value() - 0.5) * 6.0)
    } else {
        Amperes::new(2.0)
    }
}

/// A BBU charger: an automatic policy plus an optional manual override.
///
/// The override models the hardware hook added in §III-B: a power-management
/// system (Dynamo) may force any setpoint in the 1–5 A hardware range,
/// displacing the automatic selection until cleared. The effective setpoint is
/// re-evaluated whenever a discharge event completes (the DOD is then known).
///
/// # Examples
///
/// ```
/// use recharge_battery::{ChargePolicy, Charger};
/// use recharge_units::{Amperes, Dod};
///
/// let mut charger = Charger::new(ChargePolicy::Variable);
/// charger.begin_charge(Dod::new(0.2));
/// assert_eq!(charger.setpoint(), Amperes::new(2.0));
///
/// // Coordinated control throttles this rack to the 1 A hardware floor.
/// charger.set_override(Amperes::new(1.0));
/// assert_eq!(charger.setpoint(), Amperes::new(1.0));
///
/// charger.clear_override();
/// assert_eq!(charger.setpoint(), Amperes::new(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Charger {
    policy: ChargePolicy,
    automatic: Amperes,
    override_current: Option<Amperes>,
    postponed: bool,
}

impl Charger {
    /// Creates a charger with the given automatic policy and no override.
    #[must_use]
    pub fn new(policy: ChargePolicy) -> Self {
        Charger {
            policy,
            automatic: policy.automatic_current(Dod::ZERO),
            override_current: None,
            postponed: false,
        }
    }

    /// The automatic policy of this charger.
    #[must_use]
    pub fn policy(&self) -> ChargePolicy {
        self.policy
    }

    /// Recomputes the automatic setpoint for a new charge sequence following a
    /// discharge to `dod`.
    ///
    /// Any previous manual override is retained: in the deployed system the
    /// controller, not the charger, decides when an override ends.
    pub fn begin_charge(&mut self, dod: Dod) {
        self.automatic = self.policy.automatic_current(dod);
    }

    /// Applies a manual override, clamped to the 1–5 A hardware range.
    pub fn set_override(&mut self, current: Amperes) {
        self.override_current = Some(current.clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE));
    }

    /// Removes the manual override, returning to automatic selection.
    pub fn clear_override(&mut self) {
        self.override_current = None;
    }

    /// The active override, if any.
    #[must_use]
    pub fn override_current(&self) -> Option<Amperes> {
        self.override_current
    }

    /// The automatic setpoint computed at the last
    /// [`begin_charge`](Self::begin_charge), independent of any override or
    /// postpone state — what [`setpoint`](Self::setpoint) falls back to.
    #[must_use]
    pub fn automatic_current(&self) -> Amperes {
        self.automatic
    }

    /// Suspends or resumes charging entirely.
    ///
    /// Postponing is the paper's stated future-work extension (§IV-A): with
    /// hardware that can hold charging at zero, a power-constrained
    /// controller can defer low-priority racks completely instead of capping
    /// servers. While postponed the effective setpoint is zero; the override
    /// and automatic selection are retained for resumption.
    pub fn set_postponed(&mut self, postponed: bool) {
        self.postponed = postponed;
    }

    /// Whether charging is currently postponed.
    #[must_use]
    pub fn is_postponed(&self) -> bool {
        self.postponed
    }

    /// The effective CC setpoint: zero while postponed, else the override if
    /// set, else the automatic policy's choice for the most recent discharge.
    #[must_use]
    pub fn setpoint(&self) -> Amperes {
        if self.postponed {
            return Amperes::ZERO;
        }
        self.override_current.unwrap_or(self.automatic)
    }
}

impl Default for Charger {
    fn default() -> Self {
        Charger::new(ChargePolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_paper() {
        // Below 50% DOD the setpoint is pinned at 2 A.
        assert_eq!(variable_current(Dod::ZERO), Amperes::new(2.0));
        assert_eq!(variable_current(Dod::new(0.25)), Amperes::new(2.0));
        assert_eq!(variable_current(Dod::new(0.4999)), Amperes::new(2.0));
        // At and above 50% it rises linearly: 2 + (DOD − 0.5) × 6.
        assert_eq!(variable_current(Dod::new(0.5)), Amperes::new(2.0));
        assert!((variable_current(Dod::new(0.7)).as_amps() - 3.2).abs() < 1e-12);
        assert!((variable_current(Dod::new(0.9)).as_amps() - 4.4).abs() < 1e-12);
        assert_eq!(variable_current(Dod::FULL), Amperes::new(5.0));
    }

    #[test]
    fn eq1_stays_in_hardware_range() {
        for i in 0..=100 {
            let dod = Dod::new(f64::from(i) / 100.0);
            let c = variable_current(dod);
            assert!(
                c >= Amperes::new(2.0) && c <= Amperes::MAX_CHARGE,
                "dod={dod} gave {c}"
            );
        }
    }

    #[test]
    fn original_policy_is_always_max() {
        for dod in [0.0, 0.3, 0.7, 1.0] {
            assert_eq!(
                ChargePolicy::Original.automatic_current(Dod::new(dod)),
                Amperes::MAX_CHARGE
            );
        }
    }

    #[test]
    fn recharge_power_reduction_reaches_60_percent() {
        // §III-B: "the recharge power is decreased by as much as 60% (if DOD
        // is less than 50%)" — 2 A vs 5 A is exactly a 60% current reduction.
        let reduction = 1.0
            - ChargePolicy::Variable
                .automatic_current(Dod::new(0.3))
                .as_amps()
                / ChargePolicy::Original
                    .automatic_current(Dod::new(0.3))
                    .as_amps();
        assert!((reduction - 0.6).abs() < 1e-12);
    }

    #[test]
    fn override_clamps_to_hardware_range() {
        let mut charger = Charger::new(ChargePolicy::Variable);
        charger.set_override(Amperes::new(0.2));
        assert_eq!(charger.setpoint(), Amperes::MIN_CHARGE);
        charger.set_override(Amperes::new(9.0));
        assert_eq!(charger.setpoint(), Amperes::MAX_CHARGE);
        assert_eq!(charger.override_current(), Some(Amperes::MAX_CHARGE));
    }

    #[test]
    fn override_survives_new_charge_sequence() {
        let mut charger = Charger::new(ChargePolicy::Variable);
        charger.set_override(Amperes::new(1.0));
        charger.begin_charge(Dod::FULL);
        assert_eq!(charger.setpoint(), Amperes::new(1.0));
        charger.clear_override();
        assert_eq!(charger.setpoint(), Amperes::new(5.0));
    }

    #[test]
    fn default_charger_is_variable() {
        let charger = Charger::default();
        assert_eq!(charger.policy(), ChargePolicy::Variable);
        assert_eq!(charger.override_current(), None);
    }

    #[test]
    fn postpone_zeroes_setpoint_and_resumes_cleanly() {
        let mut charger = Charger::new(ChargePolicy::Variable);
        charger.begin_charge(Dod::new(0.8));
        let before = charger.setpoint();
        assert!(before > Amperes::ZERO);

        charger.set_postponed(true);
        assert!(charger.is_postponed());
        assert_eq!(charger.setpoint(), Amperes::ZERO);

        // Overrides are retained behind the postpone flag.
        charger.set_override(Amperes::new(1.5));
        assert_eq!(charger.setpoint(), Amperes::ZERO);
        charger.set_postponed(false);
        assert_eq!(charger.setpoint(), Amperes::new(1.5));
        charger.clear_override();
        assert_eq!(charger.setpoint(), before);
    }

    #[test]
    fn display_names() {
        assert_eq!(ChargePolicy::Original.to_string(), "original 5 A charger");
        assert_eq!(ChargePolicy::Variable.to_string(), "variable charger");
    }
}
