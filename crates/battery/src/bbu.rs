//! The four-state battery backup unit machine of Fig 8(a).

use serde::{Deserialize, Serialize};

use recharge_units::{Amperes, Dod, Seconds, Soc, Watts};

use crate::charger::{ChargePolicy, Charger};
use crate::pack::{BbuPack, ChargePhase};
use crate::params::BbuParams;

/// The observable state of a BBU (Fig 8a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BbuState {
    /// Battery full and idle; the rack has its redundancy available.
    #[default]
    FullyCharged,
    /// Input power present, battery recharging.
    Charging,
    /// Input power absent, battery carrying the IT load.
    Discharging,
    /// Battery empty while input power is still absent (the rack is dark).
    FullyDischarged,
}

impl core::fmt::Display for BbuState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            BbuState::FullyCharged => "fully charged",
            BbuState::Charging => "charging",
            BbuState::Discharging => "discharging",
            BbuState::FullyDischarged => "fully discharged",
        };
        f.write_str(name)
    }
}

/// What one simulation step of a [`Bbu`] did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BbuStepReport {
    /// State after the step.
    pub state: BbuState,
    /// Power delivered to the IT load from the battery (discharging only).
    pub discharge_power: Watts,
    /// Wall power drawn to recharge the battery (charging only).
    pub recharge_wall_power: Watts,
    /// Charging current that flowed (charging only).
    pub charge_current: Amperes,
}

impl BbuStepReport {
    fn idle(state: BbuState) -> Self {
        BbuStepReport {
            state,
            discharge_power: Watts::ZERO,
            recharge_wall_power: Watts::ZERO,
            charge_current: Amperes::ZERO,
        }
    }
}

/// One battery backup unit: an electrical pack plus its charger, advanced
/// through the state machine of Fig 8(a) by input-power events and time steps.
///
/// # Examples
///
/// ```
/// use recharge_battery::{Bbu, BbuParams, BbuState, ChargePolicy};
/// use recharge_units::{Seconds, Watts};
///
/// let mut bbu = Bbu::new(BbuParams::default(), ChargePolicy::Variable);
/// assert_eq!(bbu.state(), BbuState::FullyCharged);
///
/// // A 45-second open transition at 1.6 kW of IT-load share.
/// bbu.input_power_lost();
/// bbu.step(Watts::new(1_600.0), Seconds::new(45.0));
/// assert_eq!(bbu.state(), BbuState::Discharging);
///
/// bbu.input_power_restored();
/// let report = bbu.step(Watts::new(1_600.0), Seconds::new(1.0));
/// assert_eq!(report.state, BbuState::Charging);
/// assert!(report.recharge_wall_power > Watts::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bbu {
    pack: BbuPack,
    charger: Charger,
    state: BbuState,
    /// DOD measured when the most recent charge sequence began; this is what
    /// the variable charger (and the controller's SLA calculation) key off.
    event_dod: Dod,
}

impl Bbu {
    /// Creates a fully charged BBU with the given charger policy.
    #[must_use]
    pub fn new(params: BbuParams, policy: ChargePolicy) -> Self {
        Bbu {
            pack: BbuPack::new(params),
            charger: Charger::new(policy),
            state: BbuState::FullyCharged,
            event_dod: Dod::ZERO,
        }
    }

    /// Current state in the Fig 8(a) machine.
    #[must_use]
    pub fn state(&self) -> BbuState {
        self.state
    }

    /// Current state of charge of the pack.
    #[must_use]
    pub fn soc(&self) -> Soc {
        self.pack.soc()
    }

    /// Current depth of discharge of the pack.
    #[must_use]
    pub fn dod(&self) -> Dod {
        self.pack.dod()
    }

    /// DOD measured when the most recent charge sequence began.
    #[must_use]
    pub fn event_dod(&self) -> Dod {
        self.event_dod
    }

    /// Immutable access to the charger.
    #[must_use]
    pub fn charger(&self) -> &Charger {
        &self.charger
    }

    /// Mutable access to the charger (override control).
    #[must_use]
    pub fn charger_mut(&mut self) -> &mut Charger {
        &mut self.charger
    }

    /// Immutable access to the electrical pack.
    #[must_use]
    pub fn pack(&self) -> &BbuPack {
        &self.pack
    }

    /// Signals loss of rack input power: the BBU starts carrying the load.
    ///
    /// A no-op if the BBU is already discharging or empty.
    pub fn input_power_lost(&mut self) {
        match self.state {
            BbuState::FullyCharged | BbuState::Charging => self.state = BbuState::Discharging,
            BbuState::Discharging | BbuState::FullyDischarged => {}
        }
    }

    /// Signals restoration of rack input power: the BBU begins (or resumes)
    /// charging, with the automatic setpoint recomputed from the measured DOD.
    ///
    /// A no-op if the BBU was neither discharging nor empty.
    pub fn input_power_restored(&mut self) {
        match self.state {
            BbuState::Discharging | BbuState::FullyDischarged => {
                self.event_dod = self.pack.dod();
                self.charger.begin_charge(self.event_dod);
                if self.pack.is_fully_charged() {
                    // Possible only for a zero-length or zero-load event.
                    self.state = BbuState::FullyCharged;
                } else {
                    self.state = BbuState::Charging;
                }
            }
            BbuState::FullyCharged | BbuState::Charging => {}
        }
    }

    /// Advances the BBU by `dt`.
    ///
    /// `load_share` is this BBU's share of the rack IT load and is only
    /// consumed while discharging.
    pub fn step(&mut self, load_share: Watts, dt: Seconds) -> BbuStepReport {
        match self.state {
            BbuState::FullyCharged => BbuStepReport::idle(BbuState::FullyCharged),
            BbuState::FullyDischarged => BbuStepReport::idle(BbuState::FullyDischarged),
            BbuState::Discharging => {
                let step = self.pack.discharge_step(load_share, dt);
                if step.depleted {
                    self.state = BbuState::FullyDischarged;
                }
                BbuStepReport {
                    state: self.state,
                    discharge_power: step.delivered_power,
                    recharge_wall_power: Watts::ZERO,
                    charge_current: Amperes::ZERO,
                }
            }
            BbuState::Charging => {
                let step = self.pack.charge_step(self.charger.setpoint(), dt);
                if step.phase == ChargePhase::Complete {
                    self.state = BbuState::FullyCharged;
                }
                BbuStepReport {
                    state: self.state,
                    discharge_power: Watts::ZERO,
                    recharge_wall_power: step.wall_power,
                    charge_current: step.current,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbu() -> Bbu {
        Bbu::new(BbuParams::default(), ChargePolicy::Variable)
    }

    #[test]
    fn starts_fully_charged() {
        let b = bbu();
        assert_eq!(b.state(), BbuState::FullyCharged);
        assert_eq!(b.soc(), Soc::FULL);
    }

    #[test]
    fn open_transition_cycle_visits_all_expected_states() {
        let mut b = bbu();
        b.input_power_lost();
        assert_eq!(b.state(), BbuState::Discharging);

        let report = b.step(Watts::new(2_000.0), Seconds::new(45.0));
        assert_eq!(report.discharge_power, Watts::new(2_000.0));
        assert_eq!(b.state(), BbuState::Discharging);

        b.input_power_restored();
        assert_eq!(b.state(), BbuState::Charging);
        // Variable charger at ~30% DOD selects 2 A.
        assert_eq!(b.charger().setpoint(), Amperes::new(2.0));

        // Charge until done.
        let mut minutes = 0.0;
        while b.state() == BbuState::Charging {
            b.step(Watts::ZERO, Seconds::new(1.0));
            minutes += 1.0 / 60.0;
            assert!(minutes < 120.0, "charge did not complete");
        }
        assert_eq!(b.state(), BbuState::FullyCharged);
    }

    #[test]
    fn sustained_outage_fully_discharges() {
        let mut b = bbu();
        b.input_power_lost();
        let report = b.step(Watts::new(3_300.0), Seconds::new(120.0));
        assert_eq!(report.state, BbuState::FullyDischarged);
        // While dark and empty, nothing flows.
        let idle = b.step(Watts::new(3_300.0), Seconds::new(10.0));
        assert_eq!(idle.discharge_power, Watts::ZERO);

        b.input_power_restored();
        assert_eq!(b.state(), BbuState::Charging);
        assert_eq!(b.event_dod(), Dod::FULL);
        // Variable charger at 100% DOD selects 5 A.
        assert_eq!(b.charger().setpoint(), Amperes::new(5.0));
    }

    #[test]
    fn event_dod_is_latched_at_charge_start() {
        let mut b = bbu();
        b.input_power_lost();
        b.step(Watts::new(3_300.0), Seconds::new(45.0));
        b.input_power_restored();
        let latched = b.event_dod();
        assert!((latched.value() - 0.5).abs() < 1e-9);
        // Charging reduces the instantaneous DOD but not the latched one.
        b.step(Watts::ZERO, Seconds::new(60.0));
        assert!(b.dod() < latched);
        assert_eq!(b.event_dod(), latched);
    }

    #[test]
    fn power_events_are_idempotent() {
        let mut b = bbu();
        b.input_power_restored(); // no-op when charged
        assert_eq!(b.state(), BbuState::FullyCharged);
        b.input_power_lost();
        b.input_power_lost(); // no-op when already discharging
        assert_eq!(b.state(), BbuState::Discharging);
        b.step(Watts::new(2_000.0), Seconds::new(10.0));
        b.input_power_restored();
        b.input_power_restored();
        assert_eq!(b.state(), BbuState::Charging);
    }

    #[test]
    fn zero_length_event_returns_to_fully_charged() {
        let mut b = bbu();
        b.input_power_lost();
        b.input_power_restored();
        assert_eq!(b.state(), BbuState::FullyCharged);
    }

    #[test]
    fn override_throttles_recharge_power() {
        let mut b = bbu();
        b.input_power_lost();
        b.step(Watts::new(3_300.0), Seconds::new(60.0));
        b.input_power_restored();

        let unthrottled = b.step(Watts::ZERO, Seconds::new(1.0)).recharge_wall_power;
        b.charger_mut().set_override(Amperes::MIN_CHARGE);
        let throttled = b.step(Watts::ZERO, Seconds::new(1.0)).recharge_wall_power;
        assert!(
            throttled < unthrottled * 0.6,
            "override 1 A power {throttled} should be well below automatic {unthrottled}"
        );
    }

    #[test]
    fn display_names_cover_all_states() {
        for (state, name) in [
            (BbuState::FullyCharged, "fully charged"),
            (BbuState::Charging, "charging"),
            (BbuState::Discharging, "discharging"),
            (BbuState::FullyDischarged, "fully discharged"),
        ] {
            assert_eq!(state.to_string(), name);
        }
    }
}
