//! Lumped equivalent-circuit electrical model of one BBU pack.

use serde::{Deserialize, Serialize};

use recharge_units::{Amperes, Dod, Joules, Seconds, Soc, Volts, Watts};

use crate::kernel;
use crate::params::BbuParams;

/// Which leg of the CC-CV sequence (Fig 6a) a charging step executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChargePhase {
    /// Constant-current: terminal voltage below the CC→CV threshold, charging
    /// at the commanded setpoint.
    ConstantCurrent,
    /// Constant-voltage: terminal held at the CV voltage, current tapering
    /// (possibly still clamped at the setpoint just after the transition).
    ConstantVoltage,
    /// Charging finished: the taper current reached the cutoff.
    Complete,
}

/// Result of one charging step of a [`BbuPack`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeStep {
    /// Phase the charger was in during this step.
    pub phase: ChargePhase,
    /// Current that actually flowed into the pack.
    pub current: Amperes,
    /// Terminal voltage during the step.
    pub terminal_voltage: Volts,
    /// Power drawn from the wall (PSU input), including conversion losses.
    pub wall_power: Watts,
    /// Energy actually stored by the chemistry during the step.
    pub stored_energy: Joules,
}

/// Result of one discharging step of a [`BbuPack`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DischargeStep {
    /// Power the pack delivered (≤ the request, limited by the per-BBU
    /// discharge ceiling and by remaining energy).
    pub delivered_power: Watts,
    /// Whether the pack hit 0% state of charge during the step.
    pub depleted: bool,
}

/// Lumped electrical model of a BBU: affine open-circuit voltage over state of
/// charge plus a series internal resistance, charged via the CC-CV logic of
/// Fig 6(a) and discharged at the rack's IT-load share.
///
/// State of charge is tracked energetically: 100% SoC corresponds to
/// [`BbuParams::full_discharge_energy`] of deliverable energy.
///
/// # Examples
///
/// ```
/// use recharge_battery::{BbuPack, BbuParams};
/// use recharge_units::{Dod, Seconds, Watts};
///
/// let mut pack = BbuPack::new(BbuParams::default());
/// assert!(pack.is_fully_charged());
///
/// // Drain 50% of capacity at 1,650 W for 90 s.
/// let step = pack.discharge_step(Watts::new(1_650.0), Seconds::new(90.0));
/// assert!(!step.depleted);
/// assert!((pack.dod().value() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BbuPack {
    params: BbuParams,
    soc: f64,
    /// Latched once the CV taper reaches the cutoff; cleared by any discharge.
    charge_terminated: bool,
}

impl BbuPack {
    /// Creates a fully charged pack.
    #[must_use]
    pub fn new(params: BbuParams) -> Self {
        BbuPack {
            params,
            soc: 1.0,
            charge_terminated: true,
        }
    }

    /// Creates a pack pre-discharged to the given depth of discharge.
    #[must_use]
    pub fn discharged(params: BbuParams, dod: Dod) -> Self {
        let mut pack = BbuPack::new(params);
        if dod > Dod::ZERO {
            pack.soc = 1.0 - dod.value();
            pack.charge_terminated = false;
        }
        pack
    }

    /// The physical parameters of this pack.
    #[must_use]
    pub fn params(&self) -> &BbuParams {
        &self.params
    }

    /// Current state of charge.
    #[must_use]
    pub fn soc(&self) -> Soc {
        Soc::new(self.soc)
    }

    /// Current depth of discharge.
    #[must_use]
    pub fn dod(&self) -> Dod {
        self.soc().to_dod()
    }

    /// Deliverable energy remaining in the pack.
    #[must_use]
    pub fn remaining_energy(&self) -> Joules {
        self.params.full_discharge_energy * self.soc
    }

    /// Whether the charge sequence has completed (taper reached cutoff).
    #[must_use]
    pub fn is_fully_charged(&self) -> bool {
        self.charge_terminated
    }

    /// Whether the pack is completely empty.
    #[must_use]
    pub fn is_depleted(&self) -> bool {
        self.soc <= 0.0
    }

    /// Open-circuit voltage at the present state of charge.
    #[must_use]
    pub fn open_circuit_voltage(&self) -> Volts {
        self.params.ocv(self.soc)
    }

    /// Current the CV loop would naturally drive at the present state of
    /// charge, before clamping to the commanded setpoint.
    #[must_use]
    pub fn natural_cv_current(&self) -> Amperes {
        kernel::natural_cv_current(&self.params, self.open_circuit_voltage())
    }

    /// Advances the CC-CV charge sequence by `dt` with the commanded setpoint.
    ///
    /// Implements the flowchart of Fig 6(a):
    ///
    /// 1. If the terminal voltage at the setpoint current stays below the
    ///    CC→CV threshold (52 V), charge at constant current.
    /// 2. Otherwise regulate the terminal at the CV voltage (52.5 V); the
    ///    current is the natural taper current, clamped to the setpoint.
    /// 3. Terminate when the taper current falls to the cutoff (400 mA); the
    ///    terminating step reports the final sub-cutoff taper flow plus the
    ///    snapped sliver of charge, so cumulative `stored_energy` telescopes
    ///    exactly with ΔSoC × capacity (see [`kernel::charge_step`]).
    ///
    /// A zero or negative `setpoint` pauses charging (used by coordination
    /// layers that postpone charging entirely).
    pub fn charge_step(&mut self, setpoint: Amperes, dt: Seconds) -> ChargeStep {
        kernel::charge_step(
            &self.params,
            &mut self.soc,
            &mut self.charge_terminated,
            setpoint,
            dt,
        )
    }

    /// Draws `requested` power from the pack for `dt`.
    ///
    /// Delivery is limited by the per-BBU discharge ceiling
    /// ([`BbuParams::max_discharge_power`]) and by the energy remaining; if the
    /// pack empties mid-step the delivered power is the average over `dt`.
    pub fn discharge_step(&mut self, requested: Watts, dt: Seconds) -> DischargeStep {
        kernel::discharge_step(
            &self.params,
            &mut self.soc,
            &mut self.charge_terminated,
            requested,
            dt,
        )
    }

    /// A conservative lower bound on the time until this pack's next
    /// self-driven charge event — the CC→CV knee while in constant current,
    /// or termination once in constant voltage — at the given setpoint.
    ///
    /// See [`kernel::next_charge_event_time`] for the ceiling argument and
    /// the invalidation rules: infinite when charging is terminated or
    /// paused, and any external input (setpoint change, discharge) requires
    /// taking a fresh bound from the new state.
    #[must_use]
    pub fn next_event_time(&self, setpoint: Amperes) -> Seconds {
        kernel::next_charge_event_time(&self.params, self.soc, self.charge_terminated, setpoint)
    }

    /// Charges to completion at a fixed setpoint, returning the total time.
    ///
    /// Used by table generation and tests; `dt` is the integration step.
    ///
    /// Returns `None` if charging has not completed within `max_steps` steps.
    #[must_use]
    pub fn charge_to_full(
        &mut self,
        setpoint: Amperes,
        dt: Seconds,
        max_steps: usize,
    ) -> Option<Seconds> {
        let mut elapsed = Seconds::ZERO;
        for _ in 0..max_steps {
            if self.is_fully_charged() {
                return Some(elapsed);
            }
            self.charge_step(setpoint, dt);
            elapsed += dt;
        }
        self.is_fully_charged().then_some(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack_at(dod: f64) -> BbuPack {
        BbuPack::discharged(BbuParams::default(), Dod::new(dod))
    }

    #[test]
    fn new_pack_is_full() {
        let pack = BbuPack::new(BbuParams::default());
        assert!(pack.is_fully_charged());
        assert_eq!(pack.soc(), Soc::FULL);
        assert_eq!(pack.dod(), Dod::ZERO);
    }

    #[test]
    fn discharge_reduces_soc_proportionally() {
        let mut pack = BbuPack::new(BbuParams::default());
        let step = pack.discharge_step(Watts::new(3_300.0), Seconds::new(45.0));
        assert_eq!(step.delivered_power, Watts::new(3_300.0));
        assert!(!step.depleted);
        assert!((pack.dod().value() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn discharge_is_capped_at_max_power() {
        let mut pack = BbuPack::new(BbuParams::default());
        let step = pack.discharge_step(Watts::new(10_000.0), Seconds::new(1.0));
        assert_eq!(step.delivered_power, Watts::new(3_300.0));
    }

    #[test]
    fn full_discharge_depletes_exactly() {
        let mut pack = BbuPack::new(BbuParams::default());
        let step = pack.discharge_step(Watts::new(3_300.0), Seconds::new(90.0));
        assert!(step.depleted);
        assert!(pack.is_depleted());
        assert_eq!(pack.dod(), Dod::FULL);
        // Further discharge delivers nothing.
        let step = pack.discharge_step(Watts::new(3_300.0), Seconds::new(1.0));
        assert_eq!(step.delivered_power, Watts::ZERO);
    }

    #[test]
    fn overlong_discharge_delivers_average_power() {
        let mut pack = pack_at(0.5);
        // 50% remaining = 148.5 kJ; ask for 3.3 kW for 90 s (297 kJ).
        let step = pack.discharge_step(Watts::new(3_300.0), Seconds::new(90.0));
        assert!(step.depleted);
        assert!((step.delivered_power.as_watts() - 1_650.0).abs() < 1e-6);
    }

    #[test]
    fn charging_starts_in_cc_and_reaches_cv() {
        let mut pack = pack_at(1.0);
        let first = pack.charge_step(Amperes::new(5.0), Seconds::new(1.0));
        assert_eq!(first.phase, ChargePhase::ConstantCurrent);
        assert_eq!(first.current, Amperes::new(5.0));
        // Initial wall power ≈ 260 W (paper Fig 3/4): V_term ≈ 46.5 V × 5 A × 1.2.
        assert!(
            (first.wall_power.as_watts() - 260.0).abs() < 40.0,
            "initial wall power {} should be ≈260 W",
            first.wall_power
        );

        let mut saw_cv = false;
        for _ in 0..20_000 {
            let step = pack.charge_step(Amperes::new(5.0), Seconds::new(1.0));
            if step.phase == ChargePhase::ConstantVoltage {
                saw_cv = true;
                assert_eq!(step.terminal_voltage, Volts::new(52.5));
                assert!(step.current <= Amperes::new(5.0));
            }
            if pack.is_fully_charged() {
                break;
            }
        }
        assert!(saw_cv, "charge sequence must pass through the CV phase");
        assert!(pack.is_fully_charged());
        assert_eq!(pack.soc(), Soc::FULL);
    }

    #[test]
    fn full_charge_at_5a_takes_about_36_minutes() {
        let mut pack = pack_at(1.0);
        let t = pack
            .charge_to_full(Amperes::new(5.0), Seconds::new(1.0), 100_000)
            .unwrap();
        assert!(
            (30.0..45.0).contains(&t.as_minutes()),
            "full 5 A charge took {:.1} min, expected ≈36 min",
            t.as_minutes()
        );
    }

    #[test]
    fn cc_phase_at_5a_is_about_20_minutes() {
        let mut pack = pack_at(1.0);
        let mut cc_time = Seconds::ZERO;
        for _ in 0..100_000 {
            let step = pack.charge_step(Amperes::new(5.0), Seconds::new(1.0));
            match step.phase {
                ChargePhase::ConstantCurrent => cc_time += Seconds::new(1.0),
                _ => break,
            }
        }
        assert!(
            (14.0..24.0).contains(&cc_time.as_minutes()),
            "CC phase took {:.1} min, expected ≈20 min",
            cc_time.as_minutes()
        );
    }

    #[test]
    fn initial_power_is_independent_of_dod() {
        // Fig 4: the original charger always starts at the same (maximum)
        // power because it always begins in CC mode.
        let mut powers = Vec::new();
        for dod in [0.25, 0.5, 0.75, 1.0] {
            let mut pack = pack_at(dod);
            let step = pack.charge_step(Amperes::new(5.0), Seconds::new(1.0));
            powers.push(step.wall_power.as_watts());
        }
        let spread = powers.iter().cloned().fold(f64::MIN, f64::max)
            - powers.iter().cloned().fold(f64::MAX, f64::min);
        // The affine OCV makes the initial terminal voltage climb slightly
        // with SoC, so "independent" means within ≈15% here.
        assert!(
            spread < 60.0,
            "initial power spread {spread} W too large: {powers:?}"
        );
    }

    #[test]
    fn zero_setpoint_pauses_charging() {
        let mut pack = pack_at(0.5);
        let before = pack.soc();
        let step = pack.charge_step(Amperes::ZERO, Seconds::new(60.0));
        assert_eq!(step.wall_power, Watts::ZERO);
        assert_eq!(pack.soc(), before);
        assert!(!pack.is_fully_charged());
    }

    #[test]
    fn charge_step_after_completion_is_inert() {
        let mut pack = BbuPack::new(BbuParams::default());
        let step = pack.charge_step(Amperes::new(5.0), Seconds::new(1.0));
        assert_eq!(step.phase, ChargePhase::Complete);
        assert_eq!(step.wall_power, Watts::ZERO);
    }

    #[test]
    fn small_discharge_requires_recharge_to_terminate() {
        // Even a brief discharge clears the completion latch: the pack must
        // run its taper before it reports fully charged again (Fig 8a has no
        // shortcut from discharging back to fully charged).
        let mut pack = BbuPack::new(BbuParams::default());
        pack.discharge_step(Watts::new(3_300.0), Seconds::new(1.0));
        assert!(!pack.is_fully_charged());
        let t = pack
            .charge_to_full(Amperes::new(2.0), Seconds::new(1.0), 100_000)
            .unwrap();
        assert!(t > Seconds::ZERO);
    }

    #[test]
    fn energy_conservation_wall_exceeds_stored() {
        let mut pack = pack_at(1.0);
        let mut wall = Joules::ZERO;
        let mut stored = Joules::ZERO;
        let dt = Seconds::new(1.0);
        while !pack.is_fully_charged() {
            let step = pack.charge_step(Amperes::new(5.0), dt);
            wall += step.wall_power * dt;
            stored += step.stored_energy;
        }
        assert!(
            wall > stored,
            "wall energy must exceed stored energy (losses)"
        );
        // The terminating step accounts the snapped sliver, so the cumulative
        // stored series telescopes with ΔSoC × capacity to float precision —
        // not the 2% slack the zero-energy snap used to need.
        assert!(
            (stored.as_joules() - 297_000.0).abs() / 297_000.0 < 1e-9,
            "stored {stored} should match capacity exactly"
        );
    }

    #[test]
    fn termination_step_reports_taper_flow_not_zeros() {
        // Drive a pack to the terminating step and check that the step that
        // latches completion still reports the sub-cutoff taper current, a
        // non-zero wall power (no one-tick dip to zero before completion),
        // and the stored sliver that makes the energy series telescope.
        let mut pack = pack_at(0.5);
        let dt = Seconds::new(1.0);
        for _ in 0..200_000 {
            let soc_before = pack.soc().value();
            let step = pack.charge_step(Amperes::new(2.0), dt);
            if step.phase == ChargePhase::Complete {
                assert!(step.current > Amperes::ZERO, "taper current flowed");
                assert!(step.current <= pack.params().cutoff_current);
                assert_eq!(step.terminal_voltage, pack.params().cv_voltage);
                assert!(
                    step.wall_power > Watts::ZERO,
                    "wall power must taper, not dip to zero"
                );
                let expected = pack.params().full_discharge_energy * (1.0 - soc_before);
                assert!(
                    (step.stored_energy.as_joules() - expected.as_joules()).abs() < 1e-6,
                    "terminating stored {} != remaining sliver {}",
                    step.stored_energy,
                    expected
                );
                assert!(pack.is_fully_charged());
                return;
            }
        }
        panic!("charge never terminated");
    }

    #[test]
    fn lower_current_charges_slower() {
        let mut fast = pack_at(0.6);
        let mut slow = pack_at(0.6);
        let t_fast = fast
            .charge_to_full(Amperes::new(5.0), Seconds::new(1.0), 200_000)
            .unwrap();
        let t_slow = slow
            .charge_to_full(Amperes::new(1.0), Seconds::new(1.0), 200_000)
            .unwrap();
        assert!(t_slow > t_fast);
    }

    #[test]
    fn charge_to_full_gives_none_when_budget_too_small() {
        let mut pack = pack_at(1.0);
        assert!(pack
            .charge_to_full(Amperes::new(1.0), Seconds::new(1.0), 10)
            .is_none());
    }
}
