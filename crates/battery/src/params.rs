//! Calibrated physical parameters of one battery backup unit and its charger.

use serde::{Deserialize, Serialize};

use recharge_units::{Amperes, Joules, Ohms, Volts, Watts};

use crate::error::BatteryError;

/// Physical constants of a single BBU plus its CC-CV charger.
///
/// The defaults are calibrated so that the *emergent* behaviour of
/// [`BbuPack`](crate::BbuPack) matches every quantitative anchor published in
/// §III of the paper:
///
/// | Paper anchor | Source | Emergent value |
/// |---|---|---|
/// | Full charge at 5 A takes ≈ 36 min (CC ≈ 20 min to 52 V, then CV) | Fig 3 | ~37 min |
/// | Initial recharge power ≈ 260 W per BBU, independent of DOD | Fig 4 | ~270 W |
/// | Worst-case 5 A charge within 45 min | §III-B | yes |
/// | Eq. 1 variable current always charges within 45 min | §III-B | yes |
/// | Rack recharge ≈ 1.9 kW at 5 A, ≈ 700 W at 2 A, ≈ 350 W at 1 A | §III-A, §V-A | yes |
/// | Charge time plateaus below ≈ 22% DOD (CV-dominated) | Fig 5 | yes |
/// | 1 A charge time considerably higher (> 60 min at 50% DOD) | Fig 5 | yes |
///
/// This is a passive configuration record, so its fields are public; use
/// [`BbuParams::validate`] after hand-editing values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BbuParams {
    /// Usable energy of a full BBU: the paper defines 100% DOD as powering
    /// 3,300 W of IT load for 90 seconds (297 kJ = 82.5 Wh).
    pub full_discharge_energy: Joules,
    /// Open-circuit voltage at 0% state of charge.
    pub ocv_empty: Volts,
    /// Open-circuit voltage at 100% state of charge. Must satisfy
    /// `(cv_voltage − ocv_full) / internal_resistance < cutoff_current` so the
    /// CV taper crosses the cutoff current (and terminates) strictly before
    /// 100% SoC; the pack snaps the final sliver of charge at termination.
    pub ocv_full: Volts,
    /// Series internal resistance of the pack.
    pub internal_resistance: Ohms,
    /// Terminal voltage at which the charger switches from CC to CV (52 V).
    pub cc_to_cv_voltage: Volts,
    /// Regulated terminal voltage during the CV phase (52.5 V).
    pub cv_voltage: Volts,
    /// CV-phase termination current (400 mA).
    pub cutoff_current: Amperes,
    /// Fraction of electrical energy at the open-circuit potential that is
    /// actually stored by the chemistry (coulombic × energy efficiency).
    pub charge_efficiency: f64,
    /// Multiplier from battery-terminal power to wall (PSU input) power,
    /// covering charger and conversion losses.
    pub wall_loss_factor: f64,
    /// Maximum power one BBU can deliver while discharging (3,300 W).
    pub max_discharge_power: Watts,
    /// Number of BBUs in one Open Rack V2 rack (2 power zones × 3).
    pub bbus_per_rack: u8,
}

impl BbuParams {
    /// The calibrated production parameters (see the type-level table).
    #[must_use]
    pub fn production() -> Self {
        let internal_resistance = Ohms::new(0.3);
        let cutoff_current = Amperes::new(0.4);
        let cv_voltage = Volts::new(52.5);
        BbuParams {
            full_discharge_energy: Joules::new(3_300.0 * 90.0),
            ocv_empty: Volts::new(44.0),
            // Taper reaches the 0.4 A cutoff at V_oc = 52.38 V (≈99.6% SoC),
            // so the natural CV current at 100% SoC (0.3 A) sits safely below
            // it and charging terminates in finite time.
            ocv_full: cv_voltage - cutoff_current * internal_resistance * 0.75,
            internal_resistance,
            cc_to_cv_voltage: Volts::new(52.0),
            cv_voltage,
            cutoff_current,
            charge_efficiency: 0.77,
            wall_loss_factor: 1.2,
            max_discharge_power: Watts::new(3_300.0),
            bbus_per_rack: 6,
        }
    }

    /// Checks the internal consistency of the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParams`] describing the first violated
    /// constraint: all physical quantities must be positive and finite, the
    /// OCV window must be increasing and bracket the charger voltages
    /// correctly, and efficiency/loss factors must be physical.
    pub fn validate(&self) -> Result<(), BatteryError> {
        fn check(cond: bool, what: &str) -> Result<(), BatteryError> {
            if cond {
                Ok(())
            } else {
                Err(BatteryError::InvalidParams(what.to_owned()))
            }
        }

        check(
            self.full_discharge_energy > Joules::ZERO && self.full_discharge_energy.is_finite(),
            "full_discharge_energy must be positive",
        )?;
        check(
            self.internal_resistance > Ohms::ZERO && self.internal_resistance.is_finite(),
            "internal_resistance must be positive",
        )?;
        check(
            self.ocv_empty > Volts::ZERO && self.ocv_full > self.ocv_empty,
            "OCV window must be positive and increasing",
        )?;
        check(
            self.cv_voltage > self.cc_to_cv_voltage,
            "cv_voltage must exceed cc_to_cv_voltage",
        )?;
        check(
            self.cc_to_cv_voltage > self.ocv_empty,
            "cc_to_cv_voltage must exceed ocv_empty (otherwise CC never runs)",
        )?;
        check(
            self.ocv_full < self.cv_voltage,
            "ocv_full must stay below cv_voltage (otherwise CV cannot finish)",
        )?;
        check(
            (self.cv_voltage - self.ocv_full) / self.internal_resistance < self.cutoff_current,
            "CV taper must cross the cutoff current before 100% SoC (raise ocv_full)",
        )?;
        check(
            self.cutoff_current > Amperes::ZERO && self.cutoff_current < Amperes::MIN_CHARGE,
            "cutoff_current must be positive and below the 1 A minimum setpoint",
        )?;
        check(
            self.charge_efficiency > 0.0 && self.charge_efficiency <= 1.0,
            "charge_efficiency must be in (0, 1]",
        )?;
        check(
            self.wall_loss_factor >= 1.0 && self.wall_loss_factor.is_finite(),
            "wall_loss_factor must be >= 1",
        )?;
        check(
            self.max_discharge_power > Watts::ZERO,
            "max_discharge_power must be positive",
        )?;
        check(self.bbus_per_rack > 0, "bbus_per_rack must be positive")?;
        Ok(())
    }

    /// Open-circuit voltage at the given state of charge (affine model).
    #[must_use]
    pub fn ocv(&self, soc: f64) -> Volts {
        self.ocv_empty + (self.ocv_full - self.ocv_empty) * soc.clamp(0.0, 1.0)
    }
}

impl Default for BbuParams {
    fn default() -> Self {
        BbuParams::production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_params_are_valid() {
        BbuParams::production()
            .validate()
            .expect("calibrated defaults must validate");
    }

    #[test]
    fn full_discharge_energy_matches_paper_definition() {
        let p = BbuParams::default();
        assert_eq!(p.full_discharge_energy, Joules::new(297_000.0));
        assert!((p.full_discharge_energy.as_watt_hours() - 82.5).abs() < 1e-9);
    }

    #[test]
    fn ocv_is_affine_and_clamped() {
        let p = BbuParams::default();
        assert_eq!(p.ocv(0.0), p.ocv_empty);
        assert_eq!(p.ocv(1.0), p.ocv_full);
        let mid = p.ocv(0.5);
        assert!(
            (mid.as_volts() - (p.ocv_empty.as_volts() + p.ocv_full.as_volts()) / 2.0).abs() < 1e-9
        );
        assert_eq!(p.ocv(2.0), p.ocv_full);
        assert_eq!(p.ocv(-1.0), p.ocv_empty);
    }

    #[test]
    fn ocv_full_lets_cv_taper_terminate() {
        // The natural CV current at 100% SoC must sit strictly below the
        // cutoff, otherwise the taper approaches the cutoff asymptotically
        // and charging never terminates.
        let p = BbuParams::default();
        let natural = (p.cv_voltage - p.ocv_full) / p.internal_resistance;
        assert!(natural < p.cutoff_current);
        assert!(natural > Amperes::ZERO);
    }

    #[test]
    fn validation_rejects_broken_configs() {
        let p = BbuParams {
            charge_efficiency: 1.5,
            ..BbuParams::default()
        };
        assert!(matches!(p.validate(), Err(BatteryError::InvalidParams(_))));

        let mut p = BbuParams::default();
        p.ocv_full = p.ocv_empty - Volts::new(1.0);
        assert!(p.validate().is_err());

        let p = BbuParams {
            wall_loss_factor: 0.5,
            ..BbuParams::default()
        };
        assert!(p.validate().is_err());

        let p = BbuParams {
            cutoff_current: Amperes::new(2.0),
            ..BbuParams::default()
        };
        assert!(p.validate().is_err());

        let p = BbuParams {
            bbus_per_rack: 0,
            ..BbuParams::default()
        };
        assert!(p.validate().is_err());
    }
}
