//! Rack-level battery shelf: the six identical BBUs of an Open Rack V2 rack.

use serde::{Deserialize, Serialize};

use recharge_units::{Amperes, Dod, Seconds, Soc, Watts};

use crate::bbu::{Bbu, BbuState};
use crate::charger::ChargePolicy;
use crate::error::BatteryError;
use crate::params::BbuParams;

/// What one simulation step of a [`RackBatterySystem`] did, rack-aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackStepReport {
    /// State of the (identical) BBUs after the step.
    pub state: BbuState,
    /// Total battery power delivered to the rack's IT load.
    pub discharge_power: Watts,
    /// Total wall power drawn by all BBU chargers in the rack.
    pub recharge_power: Watts,
    /// Per-BBU charging current that flowed.
    pub charge_current: Amperes,
}

/// The battery subsystem of one rack.
///
/// All six BBUs in a rack share the same parameters, see the same input-power
/// events, and split the rack IT load evenly, so they stay in lock-step; the
/// system therefore simulates one representative BBU and scales its power by
/// the unit count. Rack-level recharge power with the calibrated defaults is
/// ≈ 0.37 kW per ampere of setpoint: ~1.9 kW at 5 A, ~0.73 kW at 2 A, and
/// ~0.37 kW at 1 A, matching §III-A and the Fig 10 plateaus.
///
/// # Examples
///
/// ```
/// use recharge_battery::{ChargePolicy, BbuParams, RackBatterySystem};
/// use recharge_units::{Seconds, Watts};
///
/// let mut rack = RackBatterySystem::new(BbuParams::default(), ChargePolicy::Variable);
///
/// // 60-second open transition at 6.3 kW of rack IT load.
/// rack.input_power_lost();
/// rack.step(Watts::from_kilowatts(6.3), Seconds::new(60.0));
/// rack.input_power_restored();
///
/// let report = rack.step(Watts::from_kilowatts(6.3), Seconds::new(1.0));
/// assert!(report.recharge_power > Watts::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackBatterySystem {
    representative: Bbu,
    count: u8,
}

impl RackBatterySystem {
    /// Creates a rack battery shelf with `params.bbus_per_rack` identical BBUs.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`BbuParams::validate`] — in particular a
    /// zero `bbus_per_rack` (constructible via serde) would otherwise turn
    /// every load-share division in [`step`](Self::step) into silent NaN.
    /// Fallible callers should use [`try_new`](Self::try_new).
    #[must_use]
    pub fn new(params: BbuParams, policy: ChargePolicy) -> Self {
        match RackBatterySystem::try_new(params, policy) {
            Ok(rack) => rack,
            Err(err) => panic!("invalid BBU parameters: {err}"),
        }
    }

    /// Creates a rack battery shelf, validating the parameters first.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParams`] describing the first violated
    /// constraint (see [`BbuParams::validate`]); deserialized configurations
    /// with `bbus_per_rack: 0` are rejected here instead of yielding NaN load
    /// shares at step time.
    pub fn try_new(params: BbuParams, policy: ChargePolicy) -> Result<Self, BatteryError> {
        params.validate()?;
        Ok(RackBatterySystem {
            representative: Bbu::new(params, policy),
            count: params.bbus_per_rack,
        })
    }

    /// Number of BBUs in the rack.
    #[must_use]
    pub fn bbu_count(&self) -> u8 {
        self.count
    }

    /// State of the BBUs.
    #[must_use]
    pub fn state(&self) -> BbuState {
        self.representative.state()
    }

    /// State of charge of the BBUs.
    #[must_use]
    pub fn soc(&self) -> Soc {
        self.representative.soc()
    }

    /// Instantaneous depth of discharge of the BBUs.
    #[must_use]
    pub fn dod(&self) -> Dod {
        self.representative.dod()
    }

    /// DOD latched when the current charge sequence began — the quantity the
    /// leaf controller estimates and feeds to the SLA current calculation.
    #[must_use]
    pub fn event_dod(&self) -> Dod {
        self.representative.event_dod()
    }

    /// The representative BBU (all six are identical).
    #[must_use]
    pub fn bbu(&self) -> &Bbu {
        &self.representative
    }

    /// Whether the rack currently has its battery redundancy available.
    #[must_use]
    pub fn is_redundant(&self) -> bool {
        self.state() == BbuState::FullyCharged
    }

    /// The per-BBU charging setpoint currently in force.
    #[must_use]
    pub fn setpoint(&self) -> Amperes {
        self.representative.charger().setpoint()
    }

    /// Signals loss of rack input power to all BBUs.
    pub fn input_power_lost(&mut self) {
        self.representative.input_power_lost();
    }

    /// Signals restoration of rack input power to all BBUs.
    pub fn input_power_restored(&mut self) {
        self.representative.input_power_restored();
    }

    /// Applies a manual charging-current override (clamped to 1–5 A) to every
    /// BBU in the rack.
    pub fn set_override(&mut self, current: Amperes) {
        self.representative.charger_mut().set_override(current);
    }

    /// Clears the manual override on every BBU in the rack.
    pub fn clear_override(&mut self) {
        self.representative.charger_mut().clear_override();
    }

    /// Suspends or resumes charging on every BBU in the rack (the postponing
    /// extension; see [`Charger::set_postponed`](crate::Charger::set_postponed)).
    pub fn set_postponed(&mut self, postponed: bool) {
        self.representative.charger_mut().set_postponed(postponed);
    }

    /// Whether charging is currently postponed.
    #[must_use]
    pub fn is_postponed(&self) -> bool {
        self.representative.charger().is_postponed()
    }

    /// Advances the shelf by `dt` with the rack drawing `rack_it_load`.
    pub fn step(&mut self, rack_it_load: Watts, dt: Seconds) -> RackStepReport {
        let share = rack_it_load / f64::from(self.count);
        let report = self.representative.step(share, dt);
        RackStepReport {
            state: report.state,
            discharge_power: report.discharge_power * f64::from(self.count),
            recharge_power: report.recharge_wall_power * f64::from(self.count),
            charge_current: report.charge_current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rack() -> RackBatterySystem {
        RackBatterySystem::new(BbuParams::default(), ChargePolicy::Variable)
    }

    /// Discharge a rack for `secs` at `load_kw`, then restore power.
    fn discharge(rack: &mut RackBatterySystem, load_kw: f64, secs: f64) {
        rack.input_power_lost();
        rack.step(Watts::from_kilowatts(load_kw), Seconds::new(secs));
        rack.input_power_restored();
    }

    #[test]
    fn six_bbus_by_default() {
        assert_eq!(rack().bbu_count(), 6);
        assert!(rack().is_redundant());
    }

    #[test]
    fn zero_bbu_params_are_rejected_with_typed_error() {
        // Regression: BbuParams is serde-deserializable, so a config file can
        // carry bbus_per_rack: 0; construction must fail loudly instead of
        // stepping into NaN load shares.
        let params = BbuParams {
            bbus_per_rack: 0,
            ..BbuParams::default()
        };
        let err = RackBatterySystem::try_new(params, ChargePolicy::Variable).unwrap_err();
        assert!(
            matches!(&err, BatteryError::InvalidParams(msg) if msg.contains("bbus_per_rack")),
            "unexpected error: {err}"
        );
    }

    #[test]
    #[should_panic(expected = "bbus_per_rack")]
    fn zero_bbu_params_panic_in_new() {
        let params = BbuParams {
            bbus_per_rack: 0,
            ..BbuParams::default()
        };
        let _ = RackBatterySystem::new(params, ChargePolicy::Variable);
    }

    #[test]
    fn load_split_across_bbus_gives_expected_dod() {
        let mut r = rack();
        // 6.3 kW rack load → 1.05 kW per BBU → 94.5 kJ in 90 s ≈ 31.8% DOD.
        discharge(&mut r, 6.3, 90.0);
        assert!(
            (r.event_dod().value() - 0.3185).abs() < 0.011,
            "dod={}",
            r.event_dod()
        );
    }

    #[test]
    fn rack_recharge_power_at_5a_is_about_1_9_kw() {
        let mut r = RackBatterySystem::new(BbuParams::default(), ChargePolicy::Original);
        discharge(&mut r, 12.6, 90.0);
        // Peak recharge power over the CC phase.
        let mut peak = Watts::ZERO;
        for _ in 0..600 {
            peak = peak.max(r.step(Watts::ZERO, Seconds::new(1.0)).recharge_power);
        }
        assert!(
            (1_500.0..2_100.0).contains(&peak.as_watts()),
            "5 A rack recharge peak {} should be ≈1.9 kW",
            peak
        );
    }

    #[test]
    fn rack_recharge_power_at_2a_is_about_700_w() {
        let mut r = rack();
        discharge(&mut r, 6.0, 60.0); // ~20% DOD → variable charger picks 2 A
        assert_eq!(r.setpoint(), Amperes::new(2.0));
        let p = r.step(Watts::ZERO, Seconds::new(1.0)).recharge_power;
        assert!(
            (580.0..820.0).contains(&p.as_watts()),
            "2 A rack recharge power {} should be ≈700 W",
            p
        );
    }

    #[test]
    fn rack_recharge_power_at_1a_is_about_350_w() {
        let mut r = rack();
        discharge(&mut r, 6.0, 60.0);
        r.set_override(Amperes::MIN_CHARGE);
        let p = r.step(Watts::ZERO, Seconds::new(1.0)).recharge_power;
        assert!(
            (290.0..410.0).contains(&p.as_watts()),
            "1 A rack recharge power {} should be ≈350 W",
            p
        );
    }

    #[test]
    fn production_validation_spike_shape() {
        // §III-B production validation: a 60 s open transition leaving BBUs at
        // ~20% DOD starts them at 2 A; the original charger would have drawn
        // 2.6× more (26 kW vs 10 kW across 14 racks).
        let mut variable = rack();
        let mut original = RackBatterySystem::new(BbuParams::default(), ChargePolicy::Original);
        discharge(&mut variable, 6.0, 60.0);
        discharge(&mut original, 6.0, 60.0);
        let pv = variable.step(Watts::ZERO, Seconds::new(1.0)).recharge_power;
        let po = original.step(Watts::ZERO, Seconds::new(1.0)).recharge_power;
        let ratio = po / pv;
        assert!(
            (2.0..3.2).contains(&ratio),
            "original/variable power ratio {ratio:.2}"
        );
    }

    #[test]
    fn override_round_trip() {
        let mut r = rack();
        discharge(&mut r, 12.6, 90.0);
        let auto = r.setpoint();
        r.set_override(Amperes::new(1.5));
        assert_eq!(r.setpoint(), Amperes::new(1.5));
        r.clear_override();
        assert_eq!(r.setpoint(), auto);
    }

    #[test]
    fn postponed_rack_draws_nothing_and_resumes() {
        let mut r = rack();
        discharge(&mut r, 12.6, 90.0);
        r.set_postponed(true);
        assert!(r.is_postponed());
        let report = r.step(Watts::ZERO, Seconds::new(60.0));
        assert_eq!(report.recharge_power, Watts::ZERO);
        assert!(!r.is_redundant());

        r.set_postponed(false);
        let report = r.step(Watts::ZERO, Seconds::new(1.0));
        assert!(report.recharge_power > Watts::ZERO);
    }

    #[test]
    fn redundancy_restored_only_after_full_charge() {
        let mut r = rack();
        discharge(&mut r, 12.6, 30.0);
        assert!(!r.is_redundant());
        let mut steps = 0;
        while !r.is_redundant() {
            r.step(Watts::ZERO, Seconds::new(1.0));
            steps += 1;
            assert!(steps < 7_200, "charge should finish within 2 h");
        }
        assert_eq!(r.soc(), Soc::FULL);
    }
}
