//! Exporters: a metrics-snapshot JSON document and the Chrome trace-event
//! format (openable directly in Perfetto / `chrome://tracing`).
//!
//! Everything is hand-rolled over `std::fmt::Write` — the vendored `serde`
//! stand-in is derive-only, so the writers here are the workspace's real
//! serializers.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::registry::MetricsSnapshot;
use crate::trace::{dropped_records, take_records, RecordKind, TraceRecord};

/// Environment variable naming the Chrome-trace output path; when set,
/// instrumented runs (e.g. `FleetSimulation::run`) enable telemetry and
/// export their trace there on completion.
pub const TRACE_ENV_VAR: &str = "RECHARGE_TRACE";

/// Escapes a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal point
        // or exponent, so the output re-parses as the same float.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as a self-contained JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            let _ = write!(out, "\":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            out.push_str("\":");
            number_into(&mut out, *value);
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, &h.name);
            out.push_str("\":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                number_into(&mut out, *b);
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"count\":{},\"sum\":", h.count);
            number_into(&mut out, h.sum);
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

/// Rewrites a metric name as a Prometheus-legal identifier: every character
/// outside `[A-Za-z0-9_:]` becomes `_` (so `net.rpc_latency_us.shard003`
/// exposes as `net_rpc_latency_us_shard003`).
fn prometheus_name(out: &mut String, name: &str) {
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format —
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le="..."}` series plus `_sum`/`_count`. This is the payload
    /// the mesh's `ReadHealth` wire op serves.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256);
        for (name, value) in &self.counters {
            out.push_str("# TYPE ");
            prometheus_name(&mut out, name);
            out.push_str(" counter\n");
            prometheus_name(&mut out, name);
            let _ = writeln!(out, " {value}");
        }
        for (name, value) in &self.gauges {
            out.push_str("# TYPE ");
            prometheus_name(&mut out, name);
            out.push_str(" gauge\n");
            prometheus_name(&mut out, name);
            out.push(' ');
            if value.is_finite() {
                let _ = writeln!(out, "{value:?}");
            } else {
                out.push_str("NaN\n");
            }
        }
        for h in &self.histograms {
            out.push_str("# TYPE ");
            prometheus_name(&mut out, &h.name);
            out.push_str(" histogram\n");
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                prometheus_name(&mut out, &h.name);
                let _ = writeln!(out, "_bucket{{le=\"{bound:?}\"}} {cumulative}");
            }
            cumulative += h.counts.last().copied().unwrap_or(0);
            prometheus_name(&mut out, &h.name);
            let _ = writeln!(out, "_bucket{{le=\"+Inf\"}} {cumulative}");
            prometheus_name(&mut out, &h.name);
            let _ = write!(out, "_sum ");
            if h.sum.is_finite() {
                let _ = writeln!(out, "{:?}", h.sum);
            } else {
                out.push_str("NaN\n");
            }
            prometheus_name(&mut out, &h.name);
            let _ = writeln!(out, "_count {}", h.count);
        }
        out
    }
}

/// Renders trace records as a Chrome trace-event JSON document.
///
/// Spans become complete (`ph: "X"`) events and instants become `ph: "i"`
/// events; timestamps and durations are microseconds with nanosecond
/// fractions, relative to the process trace epoch.
#[must_use]
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_into(&mut out, r.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, r.cat);
        let ts_us = r.ts_ns as f64 / 1_000.0;
        let _ = write!(out, "\",\"ph\":");
        match r.kind {
            RecordKind::Span => {
                let dur_us = r.dur_ns as f64 / 1_000.0;
                let _ = write!(out, "\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3}");
            }
            RecordKind::Instant => {
                let _ = write!(out, "\"i\",\"s\":\"t\",\"ts\":{ts_us:.3}");
            }
        }
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", r.tid);
        if !r.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (key, value)) in r.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, key);
                let _ = write!(out, "\":{value}");
            }
            out.push('}');
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_records\":{}}}}}",
        dropped_records()
    );
    out
}

/// The Chrome-trace output path configured via [`TRACE_ENV_VAR`], if any.
#[must_use]
pub fn env_trace_path() -> Option<PathBuf> {
    std::env::var_os(TRACE_ENV_VAR)
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Drains all buffered trace records and writes them as Chrome trace JSON to
/// `path`. Returns the number of events written.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let records = take_records();
    std::fs::write(path, chrome_trace_json(&records))?;
    Ok(records.len())
}

/// If [`TRACE_ENV_VAR`] is set, drains the trace buffers and writes the
/// Chrome trace there (overwriting a previous run's file). Returns the path
/// and event count when a file was written.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn export_env_trace() -> std::io::Result<Option<(PathBuf, usize)>> {
    match env_trace_path() {
        Some(path) => {
            let events = write_chrome_trace(&path)?;
            Ok(Some((path, events)))
        }
        None => Ok(None),
    }
}

/// Nesting depth of live [`env_trace_scope`] guards; only the outermost
/// scope exports, so a harness wrapping many runs gets one combined trace.
static TRACE_SCOPE_DEPTH: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// A drop guard that exports the env-configured Chrome trace when the
/// *outermost* scope ends — including on unwind, so a panicking or aborted
/// run still flushes its partial per-thread span buffers into a valid JSON
/// trace file instead of losing them.
#[must_use = "the guard exports on drop; binding it to _ drops it immediately"]
pub struct EnvTraceGuard {
    active: bool,
}

impl Drop for EnvTraceGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        if TRACE_SCOPE_DEPTH.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) == 1 {
            let _ = export_env_trace();
        }
    }
}

/// Enters an env-trace scope: if [`TRACE_ENV_VAR`] is set, enables telemetry
/// and returns a guard that writes the Chrome trace when the outermost scope
/// drops (normally or by unwind). Inert when the variable is unset.
///
/// Every entry point that can own a traced run — `FleetSimulation::run`, the
/// Monte-Carlo trial runners, soak harnesses — takes one of these; nesting
/// is free because only the outermost guard exports.
pub fn env_trace_scope() -> EnvTraceGuard {
    if env_trace_path().is_none() {
        return EnvTraceGuard { active: false };
    }
    crate::set_enabled(true);
    TRACE_SCOPE_DEPTH.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    EnvTraceGuard { active: true }
}

/// One line of [`span_summary`]: aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: &'static str,
    /// Number of recorded spans.
    pub count: u64,
    /// Total recorded duration in nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Mean span duration in nanoseconds.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Aggregates span records by name (instants are skipped), sorted by total
/// duration descending — the quick "where did the time go" view.
#[must_use]
pub fn span_summary(records: &[TraceRecord]) -> Vec<SpanStats> {
    let mut stats: Vec<SpanStats> = Vec::new();
    for r in records {
        if r.kind != RecordKind::Span {
            continue;
        }
        match stats.iter_mut().find(|s| s.name == r.name) {
            Some(s) => {
                s.count += 1;
                s.total_ns = s.total_ns.saturating_add(r.dur_ns);
                s.max_ns = s.max_ns.max(r.dur_ns);
            }
            None => stats.push(SpanStats {
                name: r.name,
                count: 1,
                total_ns: r.dur_ns,
                max_ns: r.dur_ns,
            }),
        }
    }
    stats.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
    stats
}
