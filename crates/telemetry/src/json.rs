//! A minimal JSON reader, just enough to round-trip-validate this crate's
//! own exporters (the vendored `serde` is derive-only, so nothing else in
//! the workspace can parse JSON).
//!
//! Recursive-descent over the full JSON grammar: objects, arrays, strings
//! with escapes, numbers, booleans, null. Numbers parse as `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input or trailing
/// non-whitespace.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not produced by our writers;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Consume one UTF-8 scalar; the input came from a &str, so
                // `pos` always sits on a character boundary.
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {pos}"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"s": "x\ny", "t": true, "n": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse("\"A\\u00e9é\"").unwrap();
        assert_eq!(v.as_str(), Some("Aéé"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }
}
