//! The global metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are cheap [`Arc`]s over atomics; the registry itself is only
//! locked at registration and snapshot time, never on the record path. Every
//! mutation first checks the crate-wide [`enabled`](crate::enabled) flag, so
//! a disabled build pays one relaxed atomic load per call site.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::enabled;

/// A monotonically increasing event count.
///
/// Increments are relaxed atomic adds; concurrent increments from any number
/// of threads sum exactly.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point measurement.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge. A no-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, value: f64) {
        if enabled() {
            self.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Strictly increasing upper bounds; values above the last bound land in
    /// the saturating overflow bucket.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets (the last one is the overflow bucket).
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Bit-packed f64 running sum, updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Bucket `i` counts observations `v <= bounds[i]` (first matching bound);
/// anything larger — including `NaN`/`inf` — saturates into the overflow
/// bucket, so recording can never panic.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation. A no-op while telemetry is disabled.
    pub fn record(&self, value: f64) {
        if !enabled() {
            return;
        }
        let inner = &*self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            let mut bits = inner.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(bits) + value).to_bits();
                match inner.sum_bits.compare_exchange_weak(
                    bits,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => bits = seen,
                }
            }
        }
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// The bucket upper bounds (overflow bucket excluded).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts, overflow bucket last.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[derive(Default)]
struct Registry {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: Vec::new(),
    gauges: Vec::new(),
    histograms: Vec::new(),
});

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Registers (or retrieves) the counter named `name`.
#[must_use]
pub fn counter(name: &'static str) -> Counter {
    let mut reg = registry();
    if let Some((_, c)) = reg.counters.iter().find(|(n, _)| n == name) {
        return c.clone();
    }
    let c = Counter(Arc::new(AtomicU64::new(0)));
    reg.counters.push((name.to_owned(), c.clone()));
    c
}

/// Registers (or retrieves) the gauge named `name`.
#[must_use]
pub fn gauge(name: &'static str) -> Gauge {
    let mut reg = registry();
    if let Some((_, g)) = reg.gauges.iter().find(|(n, _)| n == name) {
        return g.clone();
    }
    let g = Gauge(Arc::new(AtomicU64::new(0f64.to_bits())));
    reg.gauges.push((name.to_owned(), g.clone()));
    g
}

/// Registers (or retrieves) the histogram named `name` with the given bucket
/// upper bounds. The bounds of the first registration win.
///
/// # Panics
///
/// Panics if `bounds` is empty or not strictly increasing.
#[must_use]
pub fn histogram(name: &'static str, bounds: &[f64]) -> Histogram {
    histogram_named(name.to_owned(), bounds)
}

/// Registers (or retrieves) a histogram under a runtime-built name — the
/// registration path for label-bearing metrics such as the per-shard RPC
/// latency series `net.rpc_latency_us.shard000`. Snapshots sort by name, so
/// zero-padded labels keep shard order deterministic and numeric.
///
/// # Panics
///
/// Panics if `bounds` is empty or not strictly increasing.
#[must_use]
pub fn histogram_named(name: String, bounds: &[f64]) -> Histogram {
    let mut reg = registry();
    if let Some((_, h)) = reg.histograms.iter().find(|(n, _)| *n == name) {
        return h.clone();
    }
    assert!(!bounds.is_empty(), "histogram needs at least one bucket");
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram bounds must be strictly increasing"
    );
    let inner = HistogramInner {
        bounds: bounds.to_vec(),
        counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
        count: AtomicU64::new(0),
        sum_bits: AtomicU64::new(0f64.to_bits()),
    };
    let h = Histogram(Arc::new(inner));
    reg.histograms.push((name, h.clone()));
    h
}

/// Zeroes every registered metric in place (handles held by call sites stay
/// valid). Intended for tests and benchmark harnesses.
pub fn reset_metrics() {
    let reg = registry();
    for (_, c) in &reg.counters {
        c.0.store(0, Ordering::Relaxed);
    }
    for (_, g) in &reg.gauges {
        g.0.store(0f64.to_bits(), Ordering::Relaxed);
    }
    for (_, h) in &reg.histograms {
        for bucket in &h.0.counts {
            bucket.store(0, Ordering::Relaxed);
        }
        h.0.count.store(0, Ordering::Relaxed);
        h.0.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds (overflow excluded).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, overflow last (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Takes a snapshot of the registry (values copied, metrics left running).
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut snap = MetricsSnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(n, c)| ((*n).to_owned(), c.value()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(n, g)| ((*n).to_owned(), g.value()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: (*n).to_owned(),
                bounds: h.bounds().to_vec(),
                counts: h.bucket_counts(),
                count: h.count(),
                sum: h.sum(),
            })
            .collect(),
    };
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}
