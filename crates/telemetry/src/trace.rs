//! Span and event tracing: RAII guards recording monotonic start/duration
//! plus a small thread id into per-thread buffers, drained at export time.
//!
//! The record path takes one uncontended per-thread mutex; nothing global is
//! touched until [`take_records`] drains the buffers. While telemetry is
//! disabled, creating a span is a single relaxed atomic load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::enabled;

/// Hard cap on records buffered per thread; one record is ~80 bytes, so the
/// cap bounds a runaway trace at a few hundred MB fleet-wide. Records beyond
/// it are counted in [`dropped_records`] instead of growing the buffer.
pub const MAX_RECORDS_PER_THREAD: usize = 1 << 22;

/// What kind of trace record this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A duration span (Chrome `ph: "X"`).
    Span,
    /// An instantaneous event (Chrome `ph: "i"`).
    Instant,
}

/// One buffered span or event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Span/event name.
    pub name: &'static str,
    /// Category (Chrome trace `cat`).
    pub cat: &'static str,
    /// Span or instant.
    pub kind: RecordKind,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Small dense id of the recording thread.
    pub tid: u64,
    /// Structured integer arguments, if any.
    pub args: Vec<(&'static str, i64)>,
}

type Buffer = Arc<Mutex<Vec<TraceRecord>>>;

static SINKS: Mutex<Vec<Buffer>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: (u64, Buffer) = {
        let buffer: Buffer = Arc::new(Mutex::new(Vec::new()));
        SINKS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&buffer));
        (NEXT_TID.fetch_add(1, Ordering::Relaxed), buffer)
    };
}

/// Nanoseconds since the (lazily initialized) process trace epoch.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn push(record: TraceRecord) {
    LOCAL.with(|(tid, buffer)| {
        let mut buf = buffer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.len() < MAX_RECORDS_PER_THREAD {
            let mut record = record;
            record.tid = *tid;
            buf.push(record);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Records buffered-then-dropped because a thread hit
/// [`MAX_RECORDS_PER_THREAD`].
#[must_use]
pub fn dropped_records() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// An RAII span: created by [`span`] (or the [`tspan!`](crate::tspan) macro),
/// it records one [`TraceRecord`] covering its lifetime when dropped.
///
/// Spans created while telemetry is disabled are inert and record nothing,
/// even if telemetry is enabled before the guard drops.
#[must_use = "a span guard measures until it is dropped; binding it to _ drops it immediately"]
pub struct SpanGuard {
    inner: Option<(&'static str, &'static str, u64, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, cat, ts_ns, start)) = self.inner.take() {
            push(TraceRecord {
                name,
                cat,
                kind: RecordKind::Span,
                ts_ns,
                dur_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                tid: 0,
                args: Vec::new(),
            });
        }
    }
}

/// Starts a span; the returned guard records it on drop.
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some((name, cat, now_ns(), Instant::now())),
    }
}

/// Records an instantaneous event.
pub fn event(name: &'static str, cat: &'static str) {
    event_with(name, cat, &[]);
}

/// Records an instantaneous event with structured integer arguments.
pub fn event_with(name: &'static str, cat: &'static str, args: &[(&'static str, i64)]) {
    if !enabled() {
        return;
    }
    push(TraceRecord {
        name,
        cat,
        kind: RecordKind::Instant,
        ts_ns: now_ns(),
        dur_ns: 0,
        tid: 0,
        args: args.to_vec(),
    });
}

/// Drains every thread's buffer and returns all records sorted by start time.
///
/// Spans still open (guards not yet dropped) are not included; they land in
/// the next drain.
#[must_use]
pub fn take_records() -> Vec<TraceRecord> {
    let sinks = SINKS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut all = Vec::new();
    for buffer in sinks.iter() {
        let mut buf = buffer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        all.append(&mut *buf);
    }
    drop(sinks);
    all.sort_by_key(|r| r.ts_ns);
    all
}
