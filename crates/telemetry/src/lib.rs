//! Hand-rolled observability for the `recharge` workspace: a global metrics
//! registry, lightweight span/event tracing, and exporters for a metrics
//! snapshot (JSON) and the Chrome trace-event format.
//!
//! The build environment is offline, so — like the `vendor/` stand-ins —
//! this crate is dependency-free (std only). It is designed to stay
//! compiled-in everywhere:
//!
//! * **Disabled by default.** Every record path starts with one relaxed
//!   atomic load of the global `enabled` flag; when off, counters, gauges,
//!   histograms, spans, and events all return immediately, so the hot loops
//!   pay well under 2% (see `BENCH_telemetry.json` from `bench_report`).
//! * **Atomic fast path when on.** Metric handles are `Arc`s over atomics;
//!   span records go into per-thread buffers behind uncontended mutexes and
//!   are only merged when [`take_records`] drains them at export time.
//! * **Instrumentation cannot change results.** Nothing here feeds back into
//!   simulation state; the sim test-suite pins `RunMetrics` bit-identical
//!   with telemetry enabled vs disabled.
//!
//! # Quick tour
//!
//! ```
//! use recharge_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! {
//!     let _span = telemetry::tspan!("work.phase", "demo");
//!     telemetry::tcounter!("work.items").add(3);
//!     telemetry::tevent!("work.milestone", "demo", "item" => 3);
//! }
//! let records = telemetry::take_records();
//! assert!(records.iter().any(|r| r.name == "work.phase"));
//! let json = telemetry::chrome_trace_json(&records);
//! assert!(telemetry::json::parse(&json).is_ok());
//! telemetry::set_enabled(false);
//! ```
//!
//! Setting `RECHARGE_TRACE=<path>` makes instrumented runs (the fleet
//! simulator, the `trace_demo` example) enable telemetry and write their
//! Chrome trace to `<path>` on completion; open it at <https://ui.perfetto.dev>.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

pub mod export;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use export::{
    chrome_trace_json, env_trace_path, env_trace_scope, export_env_trace, span_summary,
    write_chrome_trace, EnvTraceGuard, SpanStats, TRACE_ENV_VAR,
};
pub use recorder::{
    blackbox_json, env_blackbox_path, flight, flight_at, install_panic_blackbox_hook,
    overwritten_events, parse_blackbox, recorder_enabled, reset_blackbox_trigger, set_flight_now,
    set_recorder_enabled, snapshot_flight_events, take_flight_events, trigger_blackbox,
    write_blackbox, BlackboxDump, FlightEvent, FlightKind, ReasonCode, BLACKBOX_ENV_VAR, NO_BUCKET,
    NO_RACK, RING_CAPACITY,
};
pub use registry::{
    counter, gauge, histogram, histogram_named, reset_metrics, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use trace::{
    dropped_records, event, event_with, now_ns, span, take_records, RecordKind, SpanGuard,
    TraceRecord, MAX_RECORDS_PER_THREAD,
};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry recording on or off globally (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether telemetry recording is currently enabled.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a span recorded on guard drop: `tspan!("name")` or
/// `tspan!("name", "category")`. Bind the result (`let _span = ...`) — an
/// unbound guard drops immediately and measures nothing.
#[macro_export]
macro_rules! tspan {
    ($name:expr) => {
        $crate::span($name, "app")
    };
    ($name:expr, $cat:expr) => {
        $crate::span($name, $cat)
    };
}

/// Records an instantaneous event: `tevent!("name")`,
/// `tevent!("name", "category")`, or with structured integer arguments
/// `tevent!("name", "category", "key" => value, ...)`.
#[macro_export]
macro_rules! tevent {
    ($name:expr) => {
        $crate::event($name, "app")
    };
    ($name:expr, $cat:expr) => {
        $crate::event($name, $cat)
    };
    ($name:expr, $cat:expr, $($key:expr => $value:expr),+ $(,)?) => {
        $crate::event_with($name, $cat, &[$(($key, $value as i64)),+])
    };
}

/// A process-wide cached [`Counter`] handle: registry lookup happens once
/// per call site, increments are lock-free afterwards.
#[macro_export]
macro_rules! tcounter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// A process-wide cached [`Gauge`] handle (see [`tcounter!`]).
#[macro_export]
macro_rules! tgauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// A process-wide cached [`Histogram`] handle (see [`tcounter!`]); the
/// bucket bounds of the first registration win.
#[macro_export]
macro_rules! thistogram {
    ($name:expr, $bounds:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::histogram($name, $bounds))
    }};
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Serializes tests that flip the global `enabled` flag or drain the
    /// global trace buffers, so they cannot race within this test binary.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn guard() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = test_support::guard();
        set_enabled(false);
        let _ = take_records();
        reset_metrics();

        let c = counter("test.disabled.counter");
        let ga = gauge("test.disabled.gauge");
        let h = histogram("test.disabled.hist", &[1.0, 2.0]);
        {
            let _span = tspan!("test.disabled.span");
            c.inc();
            ga.set(42.0);
            h.record(1.5);
            tevent!("test.disabled.event");
        }
        assert_eq!(c.value(), 0);
        assert_eq!(ga.value(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(take_records().is_empty());
    }

    #[test]
    fn span_enabled_at_creation_governs_recording() {
        let _g = test_support::guard();
        set_enabled(false);
        let _ = take_records();

        // Disabled at creation → inert even if enabled before drop.
        let span = tspan!("test.flip.span");
        set_enabled(true);
        drop(span);
        assert!(take_records().iter().all(|r| r.name != "test.flip.span"));
        set_enabled(false);
    }

    #[test]
    fn histogram_bounds_are_validated_and_saturating() {
        let _g = test_support::guard();
        set_enabled(true);
        let h = histogram("test.hist.sat", &[1.0, 10.0, 100.0]);
        // Bounds monotone by construction; recording anything is panic-free.
        for v in [-5.0, 0.5, 1.0, 9.9, 55.0, 1e18, f64::INFINITY, f64::NAN] {
            h.record(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts, vec![3, 1, 1, 3]); // NaN and inf saturate into overflow.
        assert_eq!(h.count(), 8);
        assert!(h.sum().is_finite());
        set_enabled(false);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_non_monotone_bounds() {
        let _ = histogram("test.hist.bad", &[1.0, 1.0]);
    }

    #[test]
    fn chrome_trace_round_trips_as_valid_json() {
        let _g = test_support::guard();
        set_enabled(true);
        let _ = take_records();
        {
            let _outer = tspan!("test.json.outer", "cat\"with\\escapes");
            let _inner = tspan!("test.json.inner");
            tevent!("test.json.event", "t", "rack" => 7, "amps" => -2);
        }
        let records = take_records();
        set_enabled(false);
        assert!(records.len() >= 3);

        let doc = chrome_trace_json(&records);
        let parsed = json::parse(&doc).expect("exporter must emit valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(json::Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), records.len());
        for e in events {
            let ts = e.get("ts").and_then(json::Json::as_num).expect("ts");
            assert!(ts >= 0.0, "negative ts {ts}");
            if e.get("ph").and_then(json::Json::as_str) == Some("X") {
                let dur = e.get("dur").and_then(json::Json::as_num).expect("dur");
                assert!(dur >= 0.0, "negative dur {dur}");
            }
        }
        let with_args = events
            .iter()
            .find(|e| e.get("args").is_some())
            .expect("event args");
        assert_eq!(
            with_args.get("args").unwrap().get("rack").unwrap().as_num(),
            Some(7.0)
        );
    }

    #[test]
    fn metrics_snapshot_round_trips_as_valid_json() {
        let _g = test_support::guard();
        set_enabled(true);
        reset_metrics();
        counter("test.snap.count").add(12);
        gauge("test.snap.gauge").set(0.75);
        histogram("test.snap.hist", &[1.0, 2.0]).record(1.5);
        let snap = snapshot();
        set_enabled(false);

        let parsed = json::parse(&snap.to_json()).expect("snapshot JSON");
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("test.snap.count")
                .unwrap()
                .as_num(),
            Some(12.0)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .unwrap()
                .get("test.snap.gauge")
                .unwrap()
                .as_num(),
            Some(0.75)
        );
        let hist = parsed
            .get("histograms")
            .unwrap()
            .get("test.snap.hist")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn span_summary_aggregates_by_name() {
        let _g = test_support::guard();
        set_enabled(true);
        let _ = take_records();
        for _ in 0..3 {
            let _s = tspan!("test.summary.span");
        }
        tevent!("test.summary.event");
        let records = take_records();
        set_enabled(false);
        let stats = span_summary(&records);
        let s = stats
            .iter()
            .find(|s| s.name == "test.summary.span")
            .expect("aggregated");
        assert_eq!(s.count, 3);
        assert!(s.max_ns <= s.total_ns);
        assert!(s.mean_ns() >= 0.0);
        assert!(stats.iter().all(|s| s.name != "test.summary.event"));
    }

    #[test]
    fn registry_returns_same_instance_per_name() {
        let a = counter("test.same.counter");
        let b = counter("test.same.counter");
        set_enabled(true);
        a.inc();
        set_enabled(false);
        assert_eq!(b.value(), a.value());
    }
}
