//! The flight recorder: an always-on, bounded-overhead black box.
//!
//! Where the span tracer ([`crate::trace`]) answers "where did the time go"
//! and the registry answers "how many", the flight recorder answers *"why is
//! rack 41 throttled at t = 4120 s"*. It journals compact, fixed-size
//! [`FlightEvent`]s — breaker-margin crossings, per-priority SLA state
//! transitions, every Algorithm 1 admit/postpone/park/throttle/override
//! decision with its machine-readable [`ReasonCode`] and inputs (priority,
//! DOD bucket, headroom), lease grant/expiry/fallback/rejoin, RPC
//! retry/partition edges — into fixed-capacity per-thread rings.
//!
//! Design rules, in the same discipline as the rest of this crate:
//!
//! * **Bounded memory.** Each thread owns a ring of [`RING_CAPACITY`] events
//!   (40 bytes apiece); once full, the oldest event is overwritten and
//!   counted in [`overwritten_events`]. A runaway run keeps the most recent
//!   window — exactly what a post-mortem needs.
//! * **Bounded cost.** Recording is one relaxed atomic load when the
//!   recorder is off, and a thread-local push behind an uncontended mutex
//!   when on (`BENCH_obs.json` gates the steady-state cost at ≤ 2 % of a
//!   simulation tick). The recorder is **on by default** — it is the black
//!   box, not the profiler.
//! * **No feedback.** Nothing here reads back into simulation state;
//!   `backend_equivalence` pins `RunMetrics` bit-identical recorder on/off.
//! * **Exact floats.** Every `f64` input (currents, headroom, times) is
//!   stored and exported as its IEEE-754 bit pattern, so a dump re-parses to
//!   the same float the controller saw.
//! * **Deterministic merge.** [`take_flight_events`] drains every thread's
//!   ring and sorts by a key derived *only from event content* (logical
//!   time, kind, rack, reason, inputs) — never from thread ids or arrival
//!   order — so the merged timeline of a run with distinct events is
//!   identical across thread interleavings.
//!
//! Setting `RECHARGE_BLACKBOX=<path>` arms trigger-based dumps: the first
//! trigger (breaker trip, first SLA miss, or a panic if
//! [`install_panic_blackbox_hook`] was called) writes the merged timeline as
//! a JSON document to `<path>`; `recharge-ops explain` reconstructs it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

use crate::json;

/// Events kept per thread before the ring wraps; 40 bytes per event bounds a
/// thread's journal at ~320 KiB.
pub const RING_CAPACITY: usize = 8192;

/// Environment variable naming the black-box dump path; when set, the first
/// trigger (breaker trip / first SLA miss / panic) writes the merged flight
/// timeline there as JSON.
pub const BLACKBOX_ENV_VAR: &str = "RECHARGE_BLACKBOX";

/// What happened: the event's kind. Discriminants are stable wire/JSON codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum FlightKind {
    /// Total draw crossed the breaker limit (margin edge, either direction).
    BreakerMargin = 0,
    /// The breaker latched open.
    BreakerTrip = 1,
    /// A rack's recharge finished and its Table II SLA verdict was decided.
    SlaOutcome = 2,
    /// Algorithm 1 granted a rack charge current.
    Admit = 3,
    /// A rack's charging was postponed (§III-D extension).
    Postpone = 4,
    /// A postponed rack was parked in the controller's resume queue.
    Park = 5,
    /// A parked rack was resumed.
    Resume = 6,
    /// A rack was throttled back to the floor current on overload.
    Throttle = 7,
    /// A charge-current override was sent to a rack agent.
    Override = 8,
    /// Server power was capped as the last resort.
    Cap = 9,
    /// A server power cap was lifted.
    Uncap = 10,
    /// A rack's coordination lease was granted (first contact or rejoin).
    LeaseGrant = 11,
    /// A rack's coordination lease expired; it fell back to standalone.
    LeaseExpire = 12,
    /// An RPC attempt was retried.
    RpcRetry = 13,
    /// A link partition opened or healed.
    PartitionEdge = 14,
    /// The event-driven backend fast-forwarded a quiescent rack: the rack
    /// woke after skipping provably no-op sub-steps. `v0` is the number of
    /// sub-steps skipped, `v1` the sub-step index at which it woke (both
    /// integers, not `f64` bits).
    FastForward = 15,
    /// An HA controller won a leader election. `v0` is the winning
    /// controller id, `v1` the new term (both integers).
    LeaderElected = 16,
    /// The HA leader lost leadership (lease expiry, crash, or freeze).
    /// `v0` is the lost leader's id, `v1` the term it held (integers).
    LeaderLost = 17,
    /// The HA leader captured a brain snapshot for replication. `v0` is the
    /// leader's term, `v1` the snapshot size in bytes (integers).
    SnapshotTaken = 18,
    /// A standby restored a replicated brain snapshot. `v0` is the term the
    /// snapshot carries, `v1` its size in bytes (integers).
    SnapshotRestored = 19,
    /// A new leader finished its takeover tick after a failover. `v0` is the
    /// new leader's id, `v1` its term (integers).
    TakeoverComplete = 20,
    /// A stale-term leader's command was fenced off. `v0` is the stale term
    /// presented, `v1` the current term that rejected it (integers).
    StaleLeaderFenced = 21,
}

impl FlightKind {
    /// Every kind, in discriminant order.
    pub const ALL: [FlightKind; 22] = [
        FlightKind::BreakerMargin,
        FlightKind::BreakerTrip,
        FlightKind::SlaOutcome,
        FlightKind::Admit,
        FlightKind::Postpone,
        FlightKind::Park,
        FlightKind::Resume,
        FlightKind::Throttle,
        FlightKind::Override,
        FlightKind::Cap,
        FlightKind::Uncap,
        FlightKind::LeaseGrant,
        FlightKind::LeaseExpire,
        FlightKind::RpcRetry,
        FlightKind::PartitionEdge,
        FlightKind::FastForward,
        FlightKind::LeaderElected,
        FlightKind::LeaderLost,
        FlightKind::SnapshotTaken,
        FlightKind::SnapshotRestored,
        FlightKind::TakeoverComplete,
        FlightKind::StaleLeaderFenced,
    ];

    /// Stable numeric code (the discriminant).
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Stable snake_case name used in dumps and by `recharge-ops`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::BreakerMargin => "breaker_margin",
            FlightKind::BreakerTrip => "breaker_trip",
            FlightKind::SlaOutcome => "sla_outcome",
            FlightKind::Admit => "admit",
            FlightKind::Postpone => "postpone",
            FlightKind::Park => "park",
            FlightKind::Resume => "resume",
            FlightKind::Throttle => "throttle",
            FlightKind::Override => "override",
            FlightKind::Cap => "cap",
            FlightKind::Uncap => "uncap",
            FlightKind::LeaseGrant => "lease_grant",
            FlightKind::LeaseExpire => "lease_expire",
            FlightKind::RpcRetry => "rpc_retry",
            FlightKind::PartitionEdge => "partition_edge",
            FlightKind::FastForward => "fast_forward",
            FlightKind::LeaderElected => "leader_elected",
            FlightKind::LeaderLost => "leader_lost",
            FlightKind::SnapshotTaken => "snapshot_taken",
            FlightKind::SnapshotRestored => "snapshot_restored",
            FlightKind::TakeoverComplete => "takeover_complete",
            FlightKind::StaleLeaderFenced => "stale_leader_fenced",
        }
    }

    /// The kind with code `code`, if any.
    #[must_use]
    pub fn from_code(code: u8) -> Option<FlightKind> {
        FlightKind::ALL.get(code as usize).copied()
    }
}

/// Why it happened: the machine-readable reason carried by every decision.
///
/// The table (also in DESIGN.md §15) maps each code to the Algorithm 1 /
/// mesh rule that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ReasonCode {
    /// No decision semantics (margin crossings, SLA outcomes, wire edges).
    Observed = 0,
    /// Admitted at the 1 A floor (Algorithm 1 line 1: everyone charges).
    AdmitFloor = 1,
    /// Upgraded to the Table II SLA current in (priority, DOD) order.
    AdmitUpgraded = 2,
    /// Upgrade stopped: the SLA current no longer fit the remaining budget.
    AdmitBudgetExhausted = 3,
    /// Demoted to the floor in reverse (priority, DOD) order on overload.
    ThrottleOverload = 4,
    /// Postponed because overload persisted at all-floor charging.
    PostponeDeficit = 5,
    /// Resumed from the parked queue under recovered headroom (hysteresis).
    ResumeHeadroom = 6,
    /// Servers capped as the last resort after throttling and postponing.
    CapLastResort = 7,
    /// Cap lifted: observed draw left enough headroom.
    UncapHeadroom = 8,
    /// Override sent because the commanded current changed by > 0.01 A.
    OverrideDelta = 9,
    /// Lease granted on a rack's first contact with its server.
    LeaseFirstContact = 10,
    /// Lease renewed after a lapse: the rack rejoined coordination.
    LeaseRejoin = 11,
    /// Lease lapsed: the rack fell back to §III-B standalone charging.
    LeaseLapsed = 12,
    /// The RPC deadline elapsed (includes injected drops).
    RpcDeadline = 13,
    /// The link was administratively partitioned by the fault plan.
    RpcPartitioned = 14,
    /// SLA verdict: recharge finished within the Table II budget.
    SlaMet = 15,
    /// SLA verdict: recharge exceeded the Table II budget.
    SlaMissed = 16,
    /// The HA leader's lease expired without renewal.
    HaLeaseExpired = 17,
    /// An HA standby won the election campaign (lowest seeded jitter draw).
    HaCampaignWon = 18,
    /// A brain snapshot was taken/replicated on the configured cadence.
    HaSnapshotCadence = 19,
    /// State restored or command issued as part of a failover takeover.
    HaTakeover = 20,
    /// A command carried a term below the highest term seen: fenced.
    HaStaleTerm = 21,
    /// The controller process was crashed (SIGKILL-style) by the fault plan.
    HaCrashed = 22,
    /// The controller process was frozen (SIGSTOP-style) by the fault plan.
    HaFrozen = 23,
}

impl ReasonCode {
    /// Every reason, in discriminant order.
    pub const ALL: [ReasonCode; 24] = [
        ReasonCode::Observed,
        ReasonCode::AdmitFloor,
        ReasonCode::AdmitUpgraded,
        ReasonCode::AdmitBudgetExhausted,
        ReasonCode::ThrottleOverload,
        ReasonCode::PostponeDeficit,
        ReasonCode::ResumeHeadroom,
        ReasonCode::CapLastResort,
        ReasonCode::UncapHeadroom,
        ReasonCode::OverrideDelta,
        ReasonCode::LeaseFirstContact,
        ReasonCode::LeaseRejoin,
        ReasonCode::LeaseLapsed,
        ReasonCode::RpcDeadline,
        ReasonCode::RpcPartitioned,
        ReasonCode::SlaMet,
        ReasonCode::SlaMissed,
        ReasonCode::HaLeaseExpired,
        ReasonCode::HaCampaignWon,
        ReasonCode::HaSnapshotCadence,
        ReasonCode::HaTakeover,
        ReasonCode::HaStaleTerm,
        ReasonCode::HaCrashed,
        ReasonCode::HaFrozen,
    ];

    /// Stable numeric code (the discriminant).
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Stable snake_case name used in dumps and by `recharge-ops`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReasonCode::Observed => "observed",
            ReasonCode::AdmitFloor => "admit_floor",
            ReasonCode::AdmitUpgraded => "admit_upgraded",
            ReasonCode::AdmitBudgetExhausted => "admit_budget_exhausted",
            ReasonCode::ThrottleOverload => "throttle_overload",
            ReasonCode::PostponeDeficit => "postpone_deficit",
            ReasonCode::ResumeHeadroom => "resume_headroom",
            ReasonCode::CapLastResort => "cap_last_resort",
            ReasonCode::UncapHeadroom => "uncap_headroom",
            ReasonCode::OverrideDelta => "override_delta",
            ReasonCode::LeaseFirstContact => "lease_first_contact",
            ReasonCode::LeaseRejoin => "lease_rejoin",
            ReasonCode::LeaseLapsed => "lease_lapsed",
            ReasonCode::RpcDeadline => "rpc_deadline",
            ReasonCode::RpcPartitioned => "rpc_partitioned",
            ReasonCode::SlaMet => "sla_met",
            ReasonCode::SlaMissed => "sla_missed",
            ReasonCode::HaLeaseExpired => "ha_lease_expired",
            ReasonCode::HaCampaignWon => "ha_campaign_won",
            ReasonCode::HaSnapshotCadence => "ha_snapshot_cadence",
            ReasonCode::HaTakeover => "ha_takeover",
            ReasonCode::HaStaleTerm => "ha_stale_term",
            ReasonCode::HaCrashed => "ha_crashed",
            ReasonCode::HaFrozen => "ha_frozen",
        }
    }

    /// The reason with code `code`, if any.
    #[must_use]
    pub fn from_code(code: u8) -> Option<ReasonCode> {
        ReasonCode::ALL.get(code as usize).copied()
    }
}

/// Sentinel for "no rack" in [`FlightEvent::rack`] (fleet-wide events).
pub const NO_RACK: u32 = u32::MAX;
/// Sentinel for "no DOD bucket" in [`FlightEvent::bucket`].
pub const NO_BUCKET: u16 = u16::MAX;

/// One journaled event: 40 bytes, `Copy`, every float as exact bits.
///
/// The two payload words `v0`/`v1` are kind-specific; by convention `v0`
/// carries the decision's primary quantity (granted current, cap limit,
/// elapsed recharge time…) and `v1` the budget it was decided against
/// (remaining headroom, SLA budget, breaker limit…), both as `f64` bits
/// unless the kind says otherwise (RPC kinds carry integer attempt counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Logical (simulation) time of the decision, seconds as `f64` bits.
    pub at_bits: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Why (machine-readable; [`ReasonCode::Observed`] for pure telemetry).
    pub reason: ReasonCode,
    /// Priority rank 1–3 of the rack involved; 0 when not applicable.
    pub priority: u8,
    /// The rack's quantized DOD bucket (see `recharge_core::dod_bucket`);
    /// [`NO_BUCKET`] when not applicable.
    pub bucket: u16,
    /// The rack involved; [`NO_RACK`] for fleet-wide events.
    pub rack: u32,
    /// Kind-specific payload word (usually `f64` bits).
    pub v0: u64,
    /// Kind-specific payload word (usually `f64` bits).
    pub v1: u64,
}

impl FlightEvent {
    /// The logical time in seconds.
    #[must_use]
    pub fn at(&self) -> f64 {
        f64::from_bits(self.at_bits)
    }

    /// `v0` reinterpreted as `f64`.
    #[must_use]
    pub fn v0_f64(&self) -> f64 {
        f64::from_bits(self.v0)
    }

    /// `v1` reinterpreted as `f64`.
    #[must_use]
    pub fn v1_f64(&self) -> f64 {
        f64::from_bits(self.v1)
    }

    /// Orders two events by content only (logical time via `total_cmp`, then
    /// kind, rack, reason, priority, bucket, payloads) — the merged-timeline
    /// order, deterministic across thread interleavings for distinct events.
    #[must_use]
    pub fn timeline_cmp(&self, other: &FlightEvent) -> std::cmp::Ordering {
        self.at()
            .total_cmp(&other.at())
            .then_with(|| self.kind.cmp(&other.kind))
            .then_with(|| self.rack.cmp(&other.rack))
            .then_with(|| self.reason.cmp(&other.reason))
            .then_with(|| self.priority.cmp(&other.priority))
            .then_with(|| self.bucket.cmp(&other.bucket))
            .then_with(|| self.v0.cmp(&other.v0))
            .then_with(|| self.v1.cmp(&other.v1))
    }
}

/// A fixed-capacity overwrite-oldest ring of events.
struct Ring {
    slots: Vec<FlightEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    wrapped: bool,
}

impl Ring {
    fn new() -> Self {
        Ring {
            slots: Vec::new(),
            head: 0,
            wrapped: false,
        }
    }

    fn push(&mut self, event: FlightEvent) {
        if self.slots.len() < RING_CAPACITY {
            self.slots.push(event);
        } else {
            self.slots[self.head] = event;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.wrapped = true;
            OVERWRITTEN.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies the ring oldest-first without consuming it.
    fn copy_out(&self, into: &mut Vec<FlightEvent>) {
        if self.wrapped {
            into.extend_from_slice(&self.slots[self.head..]);
            into.extend_from_slice(&self.slots[..self.head]);
        } else {
            into.extend_from_slice(&self.slots);
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.head = 0;
        self.wrapped = false;
    }
}

type SharedRing = Arc<Mutex<Ring>>;

static RECORDER_SINKS: Mutex<Vec<SharedRing>> = Mutex::new(Vec::new());
static RECORDER_ENABLED: AtomicBool = AtomicBool::new(true);
static OVERWRITTEN: AtomicU64 = AtomicU64::new(0);
/// Ambient logical time (seconds as f64 bits) stamped onto events recorded
/// from code that has no `now` in scope (the core assignment kernels).
static AMBIENT_NOW: AtomicU64 = AtomicU64::new(0);
/// Latch: only the first black-box trigger writes the dump.
static BLACKBOX_FIRED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static LOCAL_RING: SharedRing = {
        let ring: SharedRing = Arc::new(Mutex::new(Ring::new()));
        RECORDER_SINKS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&ring));
        ring
    };
}

/// Turns the flight recorder on or off globally. Unlike the span tracer it
/// is **on by default**: the recorder is the always-on black box.
pub fn set_recorder_enabled(on: bool) {
    RECORDER_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the flight recorder is currently on.
#[inline]
#[must_use]
pub fn recorder_enabled() -> bool {
    RECORDER_ENABLED.load(Ordering::Relaxed)
}

/// Sets the ambient logical time stamped onto events recorded without an
/// explicit time (controllers call this at the top of every tick).
#[inline]
pub fn set_flight_now(secs: f64) {
    if recorder_enabled() {
        AMBIENT_NOW.store(secs.to_bits(), Ordering::Relaxed);
    }
}

/// Events overwritten because a thread's ring wrapped.
#[must_use]
pub fn overwritten_events() -> u64 {
    OVERWRITTEN.load(Ordering::Relaxed)
}

fn push_event(event: FlightEvent) {
    LOCAL_RING.with(|ring| {
        ring.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event);
    });
}

/// Journals an event at the ambient logical time. One relaxed load and an
/// immediate return while the recorder is off.
#[inline]
pub fn flight(
    kind: FlightKind,
    reason: ReasonCode,
    rack: u32,
    priority: u8,
    bucket: u16,
    v0: u64,
    v1: u64,
) {
    if !recorder_enabled() {
        return;
    }
    push_event(FlightEvent {
        at_bits: AMBIENT_NOW.load(Ordering::Relaxed),
        kind,
        reason,
        priority,
        bucket,
        rack,
        v0,
        v1,
    });
}

/// Journals an event at an explicit logical time (seconds).
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the FlightEvent fields
pub fn flight_at(
    at_secs: f64,
    kind: FlightKind,
    reason: ReasonCode,
    rack: u32,
    priority: u8,
    bucket: u16,
    v0: u64,
    v1: u64,
) {
    if !recorder_enabled() {
        return;
    }
    push_event(FlightEvent {
        at_bits: at_secs.to_bits(),
        kind,
        reason,
        priority,
        bucket,
        rack,
        v0,
        v1,
    });
}

fn merged(drain: bool) -> Vec<FlightEvent> {
    let sinks = RECORDER_SINKS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut all = Vec::new();
    for ring in sinks.iter() {
        let mut ring = ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.copy_out(&mut all);
        if drain {
            ring.clear();
        }
    }
    drop(sinks);
    all.sort_by(FlightEvent::timeline_cmp);
    all
}

/// Drains every thread's ring and returns the merged timeline, sorted by the
/// content-only [`FlightEvent::timeline_cmp`] key.
#[must_use]
pub fn take_flight_events() -> Vec<FlightEvent> {
    merged(true)
}

/// Copies the merged timeline without draining (black-box dumps use this so
/// a later trigger still sees the journal).
#[must_use]
pub fn snapshot_flight_events() -> Vec<FlightEvent> {
    merged(false)
}

/// The black-box dump path configured via [`BLACKBOX_ENV_VAR`], if any.
#[must_use]
pub fn env_blackbox_path() -> Option<PathBuf> {
    std::env::var_os(BLACKBOX_ENV_VAR)
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Renders events as the black-box JSON document.
#[must_use]
pub fn blackbox_json(trigger: &str, events: &[FlightEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(128 + events.len() * 160);
    out.push_str("{\"version\":1,\"trigger\":\"");
    for c in trigger.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    let _ = write!(
        out,
        "\",\"overwritten\":{},\"events\":[",
        overwritten_events()
    );
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `at` is convenience (f64 `{:?}` round-trips exactly); the bit
        // patterns are authoritative and travel as hex *strings* because a
        // JSON number (f64) cannot carry all 64 bits.
        let _ = write!(
            out,
            "\n{{\"at\":{:?},\"at_bits\":\"{:016x}\",\"kind\":\"{}\",\"reason\":\"{}\",\
             \"rack\":{},\"priority\":{},\"bucket\":{},\"v0\":\"{:016x}\",\"v1\":\"{:016x}\"}}",
            e.at(),
            e.at_bits,
            e.kind.name(),
            e.reason.name(),
            e.rack,
            e.priority,
            e.bucket,
            e.v0,
            e.v1,
        );
    }
    out.push_str("\n]}");
    out
}

/// A black-box dump read back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackboxDump {
    /// What fired the dump (`breaker_trip`, `sla_miss`, `panic`, `forced`…).
    pub trigger: String,
    /// Ring overwrites at dump time (non-zero means the window is partial).
    pub overwritten: u64,
    /// The merged timeline, in [`FlightEvent::timeline_cmp`] order.
    pub events: Vec<FlightEvent>,
}

/// Parses a black-box JSON document produced by [`blackbox_json`].
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn parse_blackbox(doc: &str) -> Result<BlackboxDump, String> {
    let parsed = json::parse(doc).map_err(|e| format!("invalid JSON: {e}"))?;
    let trigger = parsed
        .get("trigger")
        .and_then(json::Json::as_str)
        .ok_or("missing trigger")?
        .to_owned();
    let overwritten = parsed
        .get("overwritten")
        .and_then(json::Json::as_num)
        .ok_or("missing overwritten")? as u64;
    let raw = parsed
        .get("events")
        .and_then(json::Json::as_arr)
        .ok_or("missing events array")?;
    let mut events = Vec::with_capacity(raw.len());
    for (i, e) in raw.iter().enumerate() {
        let field = |name: &str| -> Result<f64, String> {
            e.get(name)
                .and_then(json::Json::as_num)
                .ok_or_else(|| format!("event {i}: missing {name}"))
        };
        let bits = |name: &str| -> Result<u64, String> {
            let hex = e
                .get(name)
                .and_then(json::Json::as_str)
                .ok_or_else(|| format!("event {i}: missing {name}"))?;
            u64::from_str_radix(hex, 16).map_err(|_| format!("event {i}: bad hex in {name}"))
        };
        let kind_name = e
            .get("kind")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("event {i}: missing kind"))?;
        let kind = FlightKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == kind_name)
            .ok_or_else(|| format!("event {i}: unknown kind {kind_name}"))?;
        let reason_name = e
            .get("reason")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("event {i}: missing reason"))?;
        let reason = ReasonCode::ALL
            .iter()
            .copied()
            .find(|r| r.name() == reason_name)
            .ok_or_else(|| format!("event {i}: unknown reason {reason_name}"))?;
        events.push(FlightEvent {
            at_bits: bits("at_bits")?,
            kind,
            reason,
            priority: field("priority")? as u8,
            bucket: field("bucket")? as u16,
            rack: field("rack")? as u32,
            v0: bits("v0")?,
            v1: bits("v1")?,
        });
    }
    Ok(BlackboxDump {
        trigger,
        overwritten,
        events,
    })
}

/// Writes the merged timeline (snapshot, not drained) to `path`.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_blackbox(path: &Path, trigger: &str) -> std::io::Result<usize> {
    let events = snapshot_flight_events();
    std::fs::write(path, blackbox_json(trigger, &events))?;
    Ok(events.len())
}

/// Fires a black-box trigger: if [`BLACKBOX_ENV_VAR`] is set and no earlier
/// trigger has fired, writes the dump and returns its path. Later triggers
/// are no-ops — the black box preserves the *first* incident.
pub fn trigger_blackbox(trigger: &str) -> Option<PathBuf> {
    let path = env_blackbox_path()?;
    if BLACKBOX_FIRED.swap(true, Ordering::SeqCst) {
        return None;
    }
    match write_blackbox(&path, trigger) {
        Ok(_) => Some(path),
        Err(_) => None,
    }
}

/// Re-arms the trigger latch (tests and multi-run harnesses).
pub fn reset_blackbox_trigger() {
    BLACKBOX_FIRED.store(false, Ordering::SeqCst);
}

/// Installs a panic hook (once per process) that dumps the black box with
/// trigger `panic` before delegating to the previous hook. A no-op dump-wise
/// unless [`BLACKBOX_ENV_VAR`] is set at panic time.
pub fn install_panic_blackbox_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = trigger_blackbox("panic");
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    fn ev(at: f64, rack: u32, kind: FlightKind, reason: ReasonCode) -> FlightEvent {
        FlightEvent {
            at_bits: at.to_bits(),
            kind,
            reason,
            priority: 2,
            bucket: 512,
            rack,
            v0: 1.5f64.to_bits(),
            v1: 2.5f64.to_bits(),
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = test_support::guard();
        let _ = take_flight_events();
        set_recorder_enabled(false);
        flight(FlightKind::Admit, ReasonCode::AdmitFloor, 1, 1, 0, 0, 0);
        flight_at(
            9.0,
            FlightKind::Cap,
            ReasonCode::CapLastResort,
            2,
            1,
            0,
            0,
            0,
        );
        assert!(take_flight_events().is_empty());
        set_recorder_enabled(true);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let _g = test_support::guard();
        let _ = take_flight_events();
        let before = overwritten_events();
        set_recorder_enabled(true);
        let total = RING_CAPACITY + 100;
        for i in 0..total {
            flight_at(
                i as f64,
                FlightKind::Override,
                ReasonCode::OverrideDelta,
                7,
                1,
                0,
                i as u64,
                0,
            );
        }
        let events = take_flight_events();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(overwritten_events() - before, 100);
        // The oldest 100 were overwritten; the window starts at 100.
        assert_eq!(events.first().unwrap().at(), 100.0);
        assert_eq!(events.last().unwrap().at(), (total - 1) as f64);
    }

    #[test]
    fn merged_timeline_order_is_content_deterministic() {
        let _g = test_support::guard();
        let _ = take_flight_events();
        set_recorder_enabled(true);
        // Three threads each journal a disjoint slice of a known event set,
        // in different local orders, with interleaving-perturbing yields. The
        // merged timeline must equal the content-sorted set every time.
        let mut expected: Vec<FlightEvent> = Vec::new();
        for t in 0..120u32 {
            expected.push(ev(
                f64::from(t % 40),
                t,
                FlightKind::ALL[(t % 15) as usize],
                ReasonCode::ALL[(t % 17) as usize],
            ));
        }
        expected.sort_by(FlightEvent::timeline_cmp);

        for round in 0..3 {
            let mut slices: Vec<Vec<FlightEvent>> = vec![Vec::new(); 3];
            for t in 0..120u32 {
                slices[((t as usize) + round) % 3].push(ev(
                    f64::from(t % 40),
                    t,
                    FlightKind::ALL[(t % 15) as usize],
                    ReasonCode::ALL[(t % 17) as usize],
                ));
            }
            std::thread::scope(|scope| {
                for (i, slice) in slices.into_iter().enumerate() {
                    scope.spawn(move || {
                        for (j, event) in slice.into_iter().enumerate() {
                            if (i + j) % 4 == 0 {
                                std::thread::yield_now();
                            }
                            flight_at(
                                event.at(),
                                event.kind,
                                event.reason,
                                event.rack,
                                event.priority,
                                event.bucket,
                                event.v0,
                                event.v1,
                            );
                        }
                    });
                }
            });
            let merged = take_flight_events();
            assert_eq!(merged, expected, "round {round} diverged");
        }
    }

    #[test]
    fn blackbox_round_trips_exact_bits() {
        let _g = test_support::guard();
        let _ = take_flight_events();
        set_recorder_enabled(true);
        let awkward = f64::from_bits(0x3FB9_9999_9999_999A); // 0.1: not exact in decimal
        flight_at(
            awkward,
            FlightKind::Admit,
            ReasonCode::AdmitUpgraded,
            41,
            1,
            1023,
            awkward.to_bits(),
            f64::NAN.to_bits(),
        );
        let events = snapshot_flight_events();
        let doc = blackbox_json("forced \"test\"", &events);
        let dump = parse_blackbox(&doc).expect("dump parses");
        assert_eq!(dump.trigger, "forced \"test\"");
        assert_eq!(dump.events, events);
        assert_eq!(dump.events[0].v0, awkward.to_bits());
        assert!(dump.events[0].v1_f64().is_nan());
        let _ = take_flight_events();
    }

    #[test]
    fn kind_and_reason_codes_are_stable() {
        for (i, kind) in FlightKind::ALL.iter().enumerate() {
            assert_eq!(kind.code() as usize, i);
            assert_eq!(FlightKind::from_code(kind.code()), Some(*kind));
        }
        for (i, reason) in ReasonCode::ALL.iter().enumerate() {
            assert_eq!(reason.code() as usize, i);
            assert_eq!(ReasonCode::from_code(reason.code()), Some(*reason));
        }
        assert_eq!(FlightKind::from_code(200), None);
        assert_eq!(ReasonCode::from_code(200), None);
    }
}
