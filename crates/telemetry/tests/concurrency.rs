//! Concurrency guarantees of the metrics registry and trace buffers.
//!
//! Runs as a single `#[test]` because it owns the process-global `enabled`
//! flag and trace buffers.

use recharge_telemetry as telemetry;
use telemetry::{tcounter, tspan};

const THREADS: usize = 8;
const INCREMENTS: u64 = 50_000;

#[test]
fn concurrent_recording_is_exact() {
    telemetry::set_enabled(true);
    let counter = telemetry::counter("concurrency.counter");
    let histogram = telemetry::histogram("concurrency.hist", &[0.25, 0.5, 0.75]);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..INCREMENTS {
                    counter.inc();
                    // Deterministic spread across all four buckets.
                    histogram.record((i % 4) as f64 / 4.0 + 0.1);
                    if i % 1_000 == 0 {
                        let _span = tspan!("concurrency.span", "test");
                        tcounter!("concurrency.cached").inc();
                    }
                }
            });
        }
    });

    let total = THREADS as u64 * INCREMENTS;
    assert_eq!(counter.value(), total, "lost counter increments");
    assert_eq!(histogram.count(), total, "lost histogram records");
    let buckets = histogram.bucket_counts();
    assert_eq!(buckets.iter().sum::<u64>(), total);
    // i%4/4 + 0.1 ∈ {0.1, 0.35, 0.6, 0.85}: one value per bucket.
    assert!(buckets.iter().all(|&b| b == total / 4), "{buckets:?}");

    let expected_spans = THREADS as u64 * INCREMENTS.div_ceil(1_000);
    assert_eq!(
        telemetry::counter("concurrency.cached").value(),
        expected_spans
    );

    let records = telemetry::take_records();
    telemetry::set_enabled(false);
    let spans: Vec<_> = records
        .iter()
        .filter(|r| r.name == "concurrency.span")
        .collect();
    assert_eq!(spans.len(), usize::try_from(expected_spans).unwrap());
    // Every participating thread got its own tid.
    let mut tids: Vec<u64> = spans.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), THREADS);
    // Records come out sorted by start time.
    assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));

    // A second drain is empty: buffers were consumed, not copied.
    assert!(telemetry::take_records().is_empty());

    // The snapshot sees the concurrent totals and renders valid JSON.
    let snap = telemetry::snapshot();
    let parsed = telemetry::json::parse(&snap.to_json()).expect("snapshot JSON");
    assert_eq!(
        parsed
            .get("counters")
            .unwrap()
            .get("concurrency.counter")
            .unwrap()
            .as_num(),
        Some(total as f64)
    );
}
