//! Arena-allocated power-hierarchy tree.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use recharge_units::{DeviceId, RackId, Watts};

use crate::breaker::Breaker;
use crate::device::{Device, DeviceKind};

/// Errors produced while building or querying a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A device id did not refer to a node of this topology.
    UnknownDevice(DeviceId),
    /// A rack id was attached to more than one device.
    DuplicateRack(RackId),
    /// The builder finished without any devices.
    Empty,
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::UnknownDevice(id) => write!(f, "unknown device {id}"),
            TopologyError::DuplicateRack(id) => write!(f, "rack {id} attached twice"),
            TopologyError::Empty => f.write_str("topology has no devices"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Builder for a [`Topology`] (C-BUILDER).
///
/// Devices are added top-down: the first device becomes the root and every
/// later device names its parent. Racks attach to any device, though the
/// canonical layouts only attach them to RPPs.
///
/// # Examples
///
/// ```
/// use recharge_power::{DeviceKind, TopologyBuilder};
/// use recharge_units::{RackId, Watts};
///
/// let mut builder = TopologyBuilder::new();
/// let msb = builder.root(DeviceKind::Msb, Some(Watts::from_megawatts(2.5)));
/// let sb = builder.child(msb, DeviceKind::Sb, Some(Watts::from_megawatts(1.25))).unwrap();
/// let rpp = builder.child(sb, DeviceKind::Rpp, Some(Watts::from_kilowatts(190.0))).unwrap();
/// builder.attach_rack(rpp, RackId::new(0)).unwrap();
/// let topology = builder.build().unwrap();
/// assert_eq!(topology.racks_under(msb), vec![RackId::new(0)]);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    devices: Vec<Device>,
    rack_owner: HashMap<RackId, DeviceId>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds the root device. Subsequent calls add additional roots (forests
    /// are allowed, e.g. several MSBs of a suite).
    pub fn root(&mut self, kind: DeviceKind, limit: Option<Watts>) -> DeviceId {
        self.push(kind, None, limit)
    }

    /// Adds a child device under `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownDevice`] if `parent` does not exist.
    pub fn child(
        &mut self,
        parent: DeviceId,
        kind: DeviceKind,
        limit: Option<Watts>,
    ) -> Result<DeviceId, TopologyError> {
        if self.get(parent).is_none() {
            return Err(TopologyError::UnknownDevice(parent));
        }
        let id = self.push(kind, Some(parent), limit);
        self.devices[parent.index() as usize].children.push(id);
        Ok(id)
    }

    /// Attaches a rack to `device`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownDevice`] if `device` does not exist or
    /// [`TopologyError::DuplicateRack`] if the rack is already attached.
    pub fn attach_rack(&mut self, device: DeviceId, rack: RackId) -> Result<(), TopologyError> {
        if self.get(device).is_none() {
            return Err(TopologyError::UnknownDevice(device));
        }
        if self.rack_owner.contains_key(&rack) {
            return Err(TopologyError::DuplicateRack(rack));
        }
        self.rack_owner.insert(rack, device);
        self.devices[device.index() as usize].racks.push(rack);
        Ok(())
    }

    /// Finalizes the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Empty`] if no devices were added.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.devices.is_empty() {
            return Err(TopologyError::Empty);
        }
        Ok(Topology {
            devices: self.devices,
            rack_owner: self.rack_owner,
        })
    }

    fn push(
        &mut self,
        kind: DeviceKind,
        parent: Option<DeviceId>,
        limit: Option<Watts>,
    ) -> DeviceId {
        let id = DeviceId::new(self.devices.len() as u32);
        self.devices.push(Device {
            id,
            kind,
            parent,
            breaker: limit.map(Breaker::new),
            children: Vec::new(),
            racks: Vec::new(),
        });
        id
    }

    fn get(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(id.index() as usize)
    }
}

/// An immutable-shape power-hierarchy tree (breaker state stays mutable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    devices: Vec<Device>,
    rack_owner: HashMap<RackId, DeviceId>,
}

impl Topology {
    /// The device with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownDevice`] for ids from other topologies.
    pub fn device(&self, id: DeviceId) -> Result<&Device, TopologyError> {
        self.devices
            .get(id.index() as usize)
            .ok_or(TopologyError::UnknownDevice(id))
    }

    /// Mutable access to a device (breaker state).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownDevice`] for ids from other topologies.
    pub fn device_mut(&mut self, id: DeviceId) -> Result<&mut Device, TopologyError> {
        self.devices
            .get_mut(id.index() as usize)
            .ok_or(TopologyError::UnknownDevice(id))
    }

    /// All devices, in arena order (parents before children).
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// Number of devices.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// All devices of a kind.
    pub fn devices_of_kind(&self, kind: DeviceKind) -> impl Iterator<Item = &Device> + '_ {
        self.devices.iter().filter(move |d| d.kind == kind)
    }

    /// The device a rack is attached to, if known.
    #[must_use]
    pub fn rack_owner(&self, rack: RackId) -> Option<DeviceId> {
        self.rack_owner.get(&rack).copied()
    }

    /// Every rack in the subtree rooted at `device`, in depth-first order.
    ///
    /// Unknown devices yield an empty list.
    #[must_use]
    pub fn racks_under(&self, device: DeviceId) -> Vec<RackId> {
        let mut racks = Vec::new();
        let mut stack = vec![device];
        while let Some(id) = stack.pop() {
            if let Ok(dev) = self.device(id) {
                racks.extend_from_slice(&dev.racks);
                stack.extend(dev.children.iter().rev());
            }
        }
        racks
    }

    /// The chain of devices from `device` up to its root (inclusive of both).
    #[must_use]
    pub fn ancestors(&self, device: DeviceId) -> Vec<DeviceId> {
        let mut chain = Vec::new();
        let mut cursor = Some(device);
        while let Some(id) = cursor {
            let Ok(dev) = self.device(id) else { break };
            chain.push(id);
            cursor = dev.parent;
        }
        chain
    }

    /// Aggregates per-rack power up the tree, returning the total draw seen at
    /// each device (indexable by [`DeviceId::index`]).
    ///
    /// `rack_power` is consulted once per attached rack.
    pub fn aggregate<F>(&self, mut rack_power: F) -> Vec<Watts>
    where
        F: FnMut(RackId) -> Watts,
    {
        let mut totals = vec![Watts::ZERO; self.devices.len()];
        // Children have larger arena indices than parents, so a reverse scan
        // accumulates bottom-up in one pass.
        for idx in (0..self.devices.len()).rev() {
            let direct: Watts = self.devices[idx].racks.iter().map(|&r| rack_power(r)).sum();
            totals[idx] += direct;
            if let Some(parent) = self.devices[idx].parent {
                let subtree = totals[idx];
                totals[parent.index() as usize] += subtree;
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Topology, DeviceId, DeviceId, DeviceId) {
        let mut b = TopologyBuilder::new();
        let msb = b.root(DeviceKind::Msb, Some(Watts::from_megawatts(2.5)));
        let sb1 = b
            .child(msb, DeviceKind::Sb, Some(Watts::from_megawatts(1.25)))
            .unwrap();
        let sb2 = b
            .child(msb, DeviceKind::Sb, Some(Watts::from_megawatts(1.25)))
            .unwrap();
        let rpp = b
            .child(sb1, DeviceKind::Rpp, Some(Watts::from_kilowatts(190.0)))
            .unwrap();
        for i in 0..4 {
            b.attach_rack(rpp, RackId::new(i)).unwrap();
        }
        b.attach_rack(sb2, RackId::new(100)).unwrap();
        (b.build().unwrap(), msb, sb1, rpp)
    }

    #[test]
    fn build_and_query() {
        let (t, msb, sb1, rpp) = small();
        assert_eq!(t.device_count(), 4);
        assert_eq!(t.device(msb).unwrap().kind(), DeviceKind::Msb);
        assert_eq!(t.device(sb1).unwrap().parent(), Some(msb));
        assert_eq!(t.device(rpp).unwrap().racks().len(), 4);
        assert_eq!(t.devices_of_kind(DeviceKind::Sb).count(), 2);
    }

    #[test]
    fn racks_under_covers_subtrees() {
        let (t, msb, sb1, rpp) = small();
        assert_eq!(t.racks_under(msb).len(), 5);
        assert_eq!(t.racks_under(sb1).len(), 4);
        assert_eq!(t.racks_under(rpp).len(), 4);
        assert_eq!(t.rack_owner(RackId::new(0)), Some(rpp));
        assert_eq!(t.rack_owner(RackId::new(999)), None);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let (t, msb, sb1, rpp) = small();
        assert_eq!(t.ancestors(rpp), vec![rpp, sb1, msb]);
        assert_eq!(t.ancestors(msb), vec![msb]);
    }

    #[test]
    fn aggregate_sums_bottom_up() {
        let (t, msb, sb1, rpp) = small();
        let totals = t.aggregate(|r| {
            if r == RackId::new(100) {
                Watts::from_kilowatts(10.0)
            } else {
                Watts::from_kilowatts(5.0)
            }
        });
        assert_eq!(totals[rpp.index() as usize], Watts::from_kilowatts(20.0));
        assert_eq!(totals[sb1.index() as usize], Watts::from_kilowatts(20.0));
        assert_eq!(totals[msb.index() as usize], Watts::from_kilowatts(30.0));
    }

    #[test]
    fn builder_rejects_bad_references() {
        let mut b = TopologyBuilder::new();
        let bogus = DeviceId::new(7);
        assert_eq!(
            b.child(bogus, DeviceKind::Sb, None).unwrap_err(),
            TopologyError::UnknownDevice(bogus)
        );
        assert_eq!(
            b.attach_rack(bogus, RackId::new(0)).unwrap_err(),
            TopologyError::UnknownDevice(bogus)
        );
        let root = b.root(DeviceKind::Msb, None);
        b.attach_rack(root, RackId::new(0)).unwrap();
        assert_eq!(
            b.attach_rack(root, RackId::new(0)).unwrap_err(),
            TopologyError::DuplicateRack(RackId::new(0))
        );
    }

    #[test]
    fn empty_builder_fails() {
        assert_eq!(
            TopologyBuilder::new().build().unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn unknown_device_queries_error() {
        let (t, ..) = small();
        assert!(t.device(DeviceId::new(99)).is_err());
        assert!(t.racks_under(DeviceId::new(99)).is_empty());
    }

    #[test]
    fn breaker_state_is_mutable_through_topology() {
        let (mut t, msb, ..) = small();
        let breaker = t.device_mut(msb).unwrap().breaker_mut().unwrap();
        breaker.observe(Watts::from_megawatts(4.0), recharge_units::SimTime::ZERO);
        assert!(!breaker.is_tripped());
    }
}
