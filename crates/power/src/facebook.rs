//! Constructors for the canonical Facebook/OCP power hierarchy of §II-A.

use recharge_units::{DeviceId, RackId, Watts};

use crate::device::DeviceKind;
use crate::topology::{Topology, TopologyBuilder};

/// Maximum IT load of one Open Rack V2 rack (12.6 kW).
#[must_use]
pub fn rack_limit() -> Watts {
    Watts::from_kilowatts(12.6)
}

/// A built single-MSB hierarchy and the handles the simulators need.
#[derive(Debug, Clone)]
pub struct MsbPlan {
    /// The device tree.
    pub topology: Topology,
    /// The MSB at the root.
    pub msb: DeviceId,
    /// The SBs under the MSB.
    pub sbs: Vec<DeviceId>,
    /// The RPPs under the SBs, in row order.
    pub rpps: Vec<DeviceId>,
    /// All rack ids, dense from zero, in RPP order.
    pub racks: Vec<RackId>,
}

/// Builds one 2.5 MW MSB feeding `rack_count` racks through four 1.25 MW SBs
/// and as many 190 kW RPPs (up to 14 racks per row) as needed.
///
/// This is the §V-B evaluation substrate: the paper's MSB carries 316 racks.
///
/// # Panics
///
/// Panics if `rack_count` is zero.
///
/// # Examples
///
/// ```
/// use recharge_power::facebook;
///
/// let plan = facebook::single_msb(316);
/// assert_eq!(plan.racks.len(), 316);
/// assert_eq!(plan.sbs.len(), 4);
/// assert!(plan.rpps.len() >= 316 / 14);
/// ```
#[must_use]
pub fn single_msb(rack_count: usize) -> MsbPlan {
    single_msb_with_row_size(rack_count, 14)
}

/// Like [`single_msb`] with a custom number of racks per RPP row.
///
/// # Panics
///
/// Panics if `rack_count` or `racks_per_rpp` is zero.
#[must_use]
pub fn single_msb_with_row_size(rack_count: usize, racks_per_rpp: usize) -> MsbPlan {
    assert!(rack_count > 0, "rack_count must be positive");
    assert!(racks_per_rpp > 0, "racks_per_rpp must be positive");

    let mut builder = TopologyBuilder::new();
    let msb = builder.root(DeviceKind::Msb, DeviceKind::Msb.nominal_limit());
    let sb_count = 4;
    let sbs: Vec<DeviceId> = (0..sb_count)
        .map(|_| {
            builder
                .child(msb, DeviceKind::Sb, DeviceKind::Sb.nominal_limit())
                .expect("msb exists")
        })
        .collect();

    let rpp_count = rack_count.div_ceil(racks_per_rpp);
    let mut rpps = Vec::with_capacity(rpp_count);
    let mut racks = Vec::with_capacity(rack_count);
    let mut next_rack = 0u32;
    for i in 0..rpp_count {
        let sb = sbs[i % sbs.len()];
        let rpp = builder
            .child(sb, DeviceKind::Rpp, DeviceKind::Rpp.nominal_limit())
            .expect("sb exists");
        rpps.push(rpp);
        for _ in 0..racks_per_rpp {
            if racks.len() == rack_count {
                break;
            }
            let rack = RackId::new(next_rack);
            next_rack += 1;
            builder
                .attach_rack(rpp, rack)
                .expect("rpp exists, rack fresh");
            racks.push(rack);
        }
    }

    let topology = builder.build().expect("non-empty");
    MsbPlan {
        topology,
        msb,
        sbs,
        rpps,
        racks,
    }
}

/// A built single-row hierarchy (one RPP), as used by the §V-A prototype
/// experiments (Figs 7, 10, 11).
#[derive(Debug, Clone)]
pub struct RowPlan {
    /// The device tree (a lone RPP root).
    pub topology: Topology,
    /// The RPP feeding the row.
    pub rpp: DeviceId,
    /// The racks of the row, dense from zero.
    pub racks: Vec<RackId>,
}

/// Builds one 190 kW RPP row with `rack_count` racks.
///
/// # Panics
///
/// Panics if `rack_count` is zero.
#[must_use]
pub fn single_row(rack_count: usize) -> RowPlan {
    assert!(rack_count > 0, "rack_count must be positive");
    let mut builder = TopologyBuilder::new();
    let rpp = builder.root(DeviceKind::Rpp, DeviceKind::Rpp.nominal_limit());
    let racks: Vec<RackId> = (0..rack_count as u32).map(RackId::new).collect();
    for &rack in &racks {
        builder
            .attach_rack(rpp, rack)
            .expect("rpp exists, rack fresh");
    }
    RowPlan {
        topology: builder.build().expect("non-empty"),
        rpp,
        racks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msb_plan_structure() {
        let plan = single_msb(316);
        assert_eq!(plan.topology.racks_under(plan.msb).len(), 316);
        assert_eq!(plan.sbs.len(), 4);
        // 316 racks at 14 per row → 23 RPPs.
        assert_eq!(plan.rpps.len(), 23);
        // Every rack is attached exactly once.
        let mut seen: Vec<_> = plan.topology.racks_under(plan.msb);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 316);
    }

    #[test]
    fn msb_limits_match_ocp() {
        let plan = single_msb(50);
        assert_eq!(
            plan.topology.device(plan.msb).unwrap().limit(),
            Some(Watts::from_megawatts(2.5))
        );
        for &sb in &plan.sbs {
            assert_eq!(
                plan.topology.device(sb).unwrap().limit(),
                Some(Watts::from_megawatts(1.25))
            );
        }
        for &rpp in &plan.rpps {
            assert_eq!(
                plan.topology.device(rpp).unwrap().limit(),
                Some(Watts::from_kilowatts(190.0))
            );
        }
    }

    #[test]
    fn rpps_are_spread_across_sbs() {
        let plan = single_msb(316);
        for &sb in &plan.sbs {
            let count = plan.topology.device(sb).unwrap().children().len();
            assert!((5..=6).contains(&count), "sb has {count} rpps");
        }
    }

    #[test]
    fn row_plan_structure() {
        let row = single_row(17);
        assert_eq!(row.racks.len(), 17);
        assert_eq!(row.topology.racks_under(row.rpp).len(), 17);
        assert_eq!(row.topology.device_count(), 1);
    }

    #[test]
    fn rpp_row_capacity_is_physical() {
        // 14 racks × 12.6 kW = 176.4 kW fits under a 190 kW RPP.
        let total = rack_limit() * 14.0;
        assert!(total < Watts::from_kilowatts(190.0));
    }

    #[test]
    fn custom_row_size() {
        let plan = single_msb_with_row_size(30, 10);
        assert_eq!(plan.rpps.len(), 3);
        assert_eq!(plan.racks.len(), 30);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_racks_panics() {
        let _ = single_msb(0);
    }
}
