//! Open transitions: brief de-energizations of a subtree (§II-C).

use serde::{Deserialize, Serialize};

use recharge_units::{DeviceId, Seconds, SimTime};

/// A brief power unavailability for the subtree under one device, caused by a
/// source transfer (maintenance switch-over, utility blip, generator start).
///
/// Open transitions generally last under a minute (the paper models them as
/// exponentially distributed with a 45-second mean); the racks below ride
/// through on battery and begin recharging the moment the transition ends.
///
/// # Examples
///
/// ```
/// use recharge_power::OpenTransition;
/// use recharge_units::{DeviceId, Seconds, SimTime};
///
/// let ot = OpenTransition::new(DeviceId::new(0), SimTime::from_secs(100.0), Seconds::new(45.0));
/// assert!(!ot.is_active(SimTime::from_secs(99.0)));
/// assert!(ot.is_active(SimTime::from_secs(100.0)));
/// assert!(ot.is_active(SimTime::from_secs(144.9)));
/// assert!(!ot.is_active(SimTime::from_secs(145.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenTransition {
    device: DeviceId,
    start: SimTime,
    duration: Seconds,
}

impl OpenTransition {
    /// Creates an open transition at `device` starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative.
    #[must_use]
    pub fn new(device: DeviceId, start: SimTime, duration: Seconds) -> Self {
        assert!(
            duration >= Seconds::ZERO,
            "open transition duration must be non-negative"
        );
        OpenTransition {
            device,
            start,
            duration,
        }
    }

    /// The device whose subtree loses input power.
    #[must_use]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// When the input power drops.
    #[must_use]
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// When the input power returns.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// How long the power is out.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.duration
    }

    /// Whether power is out at instant `now` (half-open interval
    /// `[start, end)`).
    #[must_use]
    pub fn is_active(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end()
    }

    /// Whether the transition has completed by `now`.
    #[must_use]
    pub fn is_finished(&self, now: SimTime) -> bool {
        now >= self.end()
    }
}

impl core::fmt::Display for OpenTransition {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "open transition at {} from {} for {}",
            self.device, self.start, self.duration
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_semantics() {
        let ot = OpenTransition::new(
            DeviceId::new(3),
            SimTime::from_secs(10.0),
            Seconds::new(5.0),
        );
        assert_eq!(ot.device(), DeviceId::new(3));
        assert_eq!(ot.start(), SimTime::from_secs(10.0));
        assert_eq!(ot.end(), SimTime::from_secs(15.0));
        assert_eq!(ot.duration(), Seconds::new(5.0));
        assert!(!ot.is_active(SimTime::from_secs(9.9)));
        assert!(ot.is_active(SimTime::from_secs(10.0)));
        assert!(!ot.is_active(SimTime::from_secs(15.0)));
        assert!(ot.is_finished(SimTime::from_secs(15.0)));
        assert!(!ot.is_finished(SimTime::from_secs(14.9)));
    }

    #[test]
    fn zero_length_transition_is_never_active() {
        let ot = OpenTransition::new(DeviceId::new(0), SimTime::ZERO, Seconds::ZERO);
        assert!(!ot.is_active(SimTime::ZERO));
        assert!(ot.is_finished(SimTime::ZERO));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = OpenTransition::new(DeviceId::new(0), SimTime::ZERO, Seconds::new(-1.0));
    }

    #[test]
    fn display_mentions_device() {
        let ot = OpenTransition::new(DeviceId::new(2), SimTime::ZERO, Seconds::new(45.0));
        assert!(ot.to_string().contains("dev-2"));
    }
}
