//! Suite-scale topology with N+1 reserve devices and the maintenance
//! switch-overs that make open transitions "the norm rather than an
//! exception" (§II-C).
//!
//! A 7.5 MW suite is fed by several MSBs plus a reserve MSB (MSB-R); each MSB
//! feeds SBs backed by a reserve SB (SB-R). Maintaining a primary device
//! means transferring its subtree to the reserve and back — each transfer is
//! a brief open transition for every rack below.

use serde::{Deserialize, Serialize};

use recharge_units::{DeviceId, RackId, Seconds, SimTime};

use crate::device::DeviceKind;
use crate::open_transition::OpenTransition;
use crate::topology::{Topology, TopologyBuilder};

/// A built suite: several MSBs of racks plus the reserve devices.
#[derive(Debug, Clone)]
pub struct SuitePlan {
    /// The device tree (roots: the MSBs and the reserve MSB).
    pub topology: Topology,
    /// Primary MSBs, each carrying IT load.
    pub msbs: Vec<DeviceId>,
    /// The reserve MSB (no load of its own).
    pub msb_reserve: DeviceId,
    /// Primary SBs per MSB, in MSB order.
    pub sbs: Vec<Vec<DeviceId>>,
    /// The reserve SB (shared, fed from the reserve MSB).
    pub sb_reserve: DeviceId,
    /// All rack ids, dense from zero.
    pub racks: Vec<RackId>,
}

impl SuitePlan {
    /// Racks that lose input power while `device` transfers to reserve.
    #[must_use]
    pub fn racks_affected_by(&self, device: DeviceId) -> Vec<RackId> {
        self.topology.racks_under(device)
    }
}

/// Builds a 7.5 MW-class suite: `msb_count` primary MSBs (2.5 MW each, four
/// SBs, rows of 14) each carrying `racks_per_msb` racks, plus N+1 reserve
/// MSB/SB devices.
///
/// # Panics
///
/// Panics if `msb_count` or `racks_per_msb` is zero.
///
/// # Examples
///
/// ```
/// use recharge_power::suite;
///
/// let plan = suite::build(3, 100);
/// assert_eq!(plan.msbs.len(), 3);
/// assert_eq!(plan.racks.len(), 300);
/// // The reserve MSB carries no racks until a transfer.
/// assert!(plan.racks_affected_by(plan.msb_reserve).is_empty());
/// ```
#[must_use]
pub fn build(msb_count: usize, racks_per_msb: usize) -> SuitePlan {
    assert!(msb_count > 0, "msb_count must be positive");
    assert!(racks_per_msb > 0, "racks_per_msb must be positive");

    let mut builder = TopologyBuilder::new();
    let mut msbs = Vec::with_capacity(msb_count);
    let mut sbs = Vec::with_capacity(msb_count);
    let mut racks = Vec::new();
    let mut next_rack = 0u32;

    for _ in 0..msb_count {
        let msb = builder.root(DeviceKind::Msb, DeviceKind::Msb.nominal_limit());
        msbs.push(msb);
        let mut msb_sbs = Vec::with_capacity(4);
        for _ in 0..4 {
            let sb = builder
                .child(msb, DeviceKind::Sb, DeviceKind::Sb.nominal_limit())
                .expect("msb exists");
            msb_sbs.push(sb);
        }
        let rpp_count = racks_per_msb.div_ceil(14);
        let mut placed = 0;
        for i in 0..rpp_count {
            let rpp = builder
                .child(
                    msb_sbs[i % 4],
                    DeviceKind::Rpp,
                    DeviceKind::Rpp.nominal_limit(),
                )
                .expect("sb exists");
            for _ in 0..14 {
                if placed == racks_per_msb {
                    break;
                }
                let rack = RackId::new(next_rack);
                next_rack += 1;
                builder.attach_rack(rpp, rack).expect("fresh rack");
                racks.push(rack);
                placed += 1;
            }
        }
        sbs.push(msb_sbs);
    }

    // N+1 reserves: a reserve MSB feeding a reserve SB, idle until a transfer.
    let msb_reserve = builder.root(DeviceKind::Msb, DeviceKind::Msb.nominal_limit());
    let sb_reserve = builder
        .child(msb_reserve, DeviceKind::Sb, DeviceKind::Sb.nominal_limit())
        .expect("reserve msb exists");

    SuitePlan {
        topology: builder.build().expect("non-empty"),
        msbs,
        msb_reserve,
        sbs,
        sb_reserve,
        racks,
    }
}

/// A planned maintenance of one primary device (§II-C): the subtree transfers
/// to the reserve at the start (one open transition) and back at the end
/// (a second open transition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceEvent {
    device: DeviceId,
    start: SimTime,
    duration: Seconds,
    transition: Seconds,
}

impl MaintenanceEvent {
    /// Schedules maintenance of `device` starting at `start` for `duration`,
    /// with each source transfer taking `transition`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` or `transition` is negative, or the transitions
    /// would overlap (`duration < transition`).
    #[must_use]
    pub fn new(device: DeviceId, start: SimTime, duration: Seconds, transition: Seconds) -> Self {
        assert!(
            transition >= Seconds::ZERO,
            "transition must be non-negative"
        );
        assert!(
            duration >= transition,
            "maintenance shorter than its own transition"
        );
        MaintenanceEvent {
            device,
            start,
            duration,
            transition,
        }
    }

    /// The device under maintenance.
    #[must_use]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// When the maintenance window ends (back on primary power).
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.start + self.duration + self.transition
    }

    /// The two open transitions this maintenance causes: the transfer to
    /// reserve at the start, and the transfer back at the end.
    #[must_use]
    pub fn open_transitions(&self) -> [OpenTransition; 2] {
        [
            OpenTransition::new(self.device, self.start, self.transition),
            OpenTransition::new(self.device, self.start + self.duration, self.transition),
        ]
    }

    /// Whether racks under the device are dark at `now` (inside either
    /// transition).
    #[must_use]
    pub fn is_dark(&self, now: SimTime) -> bool {
        self.open_transitions().iter().any(|ot| ot.is_active(now))
    }

    /// Whether the subtree is running on the reserve source at `now`.
    #[must_use]
    pub fn on_reserve(&self, now: SimTime) -> bool {
        let [to_reserve, back] = self.open_transitions();
        now >= to_reserve.end() && now < back.start()
    }
}

/// Expands a year's preventive-maintenance calendar for a suite: one
/// maintenance per primary MSB and SB, evenly spaced, with 45-second
/// transfers — the §II-C cadence where "an MSB level open transition takes
/// place almost every workday" at site scale.
#[must_use]
pub fn annual_maintenance_calendar(plan: &SuitePlan, mttr_hours: f64) -> Vec<MaintenanceEvent> {
    let mut devices: Vec<DeviceId> = plan.msbs.clone();
    for msb_sbs in &plan.sbs {
        devices.extend_from_slice(msb_sbs);
    }
    let year = Seconds::from_years(1.0);
    let spacing = year / devices.len() as f64;
    devices
        .iter()
        .enumerate()
        .map(|(i, &device)| {
            MaintenanceEvent::new(
                device,
                SimTime::ZERO + spacing * i as f64,
                Seconds::from_hours(mttr_hours),
                Seconds::new(45.0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_structure() {
        let plan = build(3, 100);
        assert_eq!(plan.msbs.len(), 3);
        assert_eq!(plan.racks.len(), 300);
        assert_eq!(plan.sbs.iter().map(Vec::len).sum::<usize>(), 12);
        for &msb in &plan.msbs {
            assert_eq!(plan.racks_affected_by(msb).len(), 100);
        }
        // Reserves are idle.
        assert!(plan.racks_affected_by(plan.msb_reserve).is_empty());
        assert_eq!(
            plan.topology.device(plan.sb_reserve).unwrap().parent(),
            Some(plan.msb_reserve)
        );
    }

    #[test]
    fn suite_capacity_is_physical() {
        // 3 × 2.5 MW = 7.5 MW of critical power per suite (§II-A).
        let plan = build(3, 100);
        let total: f64 = plan
            .msbs
            .iter()
            .map(|&m| {
                plan.topology
                    .device(m)
                    .unwrap()
                    .limit()
                    .unwrap()
                    .as_megawatts()
            })
            .sum();
        assert_eq!(total, 7.5);
    }

    #[test]
    fn maintenance_produces_two_transitions() {
        let plan = build(1, 28);
        let event = MaintenanceEvent::new(
            plan.msbs[0],
            SimTime::from_secs(1_000.0),
            Seconds::from_hours(8.0),
            Seconds::new(45.0),
        );
        let [out, back] = event.open_transitions();
        assert_eq!(out.start(), SimTime::from_secs(1_000.0));
        assert_eq!(out.duration(), Seconds::new(45.0));
        assert_eq!(back.start(), SimTime::from_secs(1_000.0 + 8.0 * 3_600.0));

        // Dark exactly inside the transfers; on reserve between them.
        assert!(event.is_dark(SimTime::from_secs(1_020.0)));
        assert!(!event.is_dark(SimTime::from_secs(2_000.0)));
        assert!(event.on_reserve(SimTime::from_secs(2_000.0)));
        assert!(!event.on_reserve(SimTime::from_secs(999.0)));
        assert_eq!(event.end(), back.end());

        // The affected racks are exactly the MSB's subtree.
        assert_eq!(plan.racks_affected_by(event.device()).len(), 28);
    }

    #[test]
    fn calendar_covers_every_primary_device() {
        let plan = build(2, 56);
        let calendar = annual_maintenance_calendar(&plan, 10.0);
        assert_eq!(calendar.len(), 2 + 8); // MSBs + SBs
                                           // Events are spread over the year and ordered.
        for pair in calendar.windows(2) {
            assert!(pair[1].open_transitions()[0].start() > pair[0].open_transitions()[0].start());
        }
        let last = calendar.last().unwrap();
        assert!(last.end().as_secs() < Seconds::from_years(1.0).as_secs() * 1.01);
    }

    #[test]
    #[should_panic(expected = "shorter than its own transition")]
    fn degenerate_maintenance_panics() {
        let _ = MaintenanceEvent::new(
            DeviceId::new(0),
            SimTime::ZERO,
            Seconds::new(10.0),
            Seconds::new(45.0),
        );
    }
}
