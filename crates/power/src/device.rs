//! Device kinds and per-device data in the power hierarchy.

use serde::{Deserialize, Serialize};

use recharge_units::{DeviceId, RackId, Watts};

use crate::breaker::Breaker;

/// Kind of device in the power-delivery hierarchy (§II-A, Fig 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// On-site substation (utility intake, high→medium voltage).
    Substation,
    /// Medium-voltage switch gear distributing to buildings.
    Msg,
    /// Main switch board (2.5 MW critical power) with generator backup.
    Msb,
    /// Switch board (1.25 MW critical power).
    Sb,
    /// Reactor power panel at the end of a row (190 kW).
    Rpp,
}

impl DeviceKind {
    /// The nominal critical-power rating of this device class in the OCP
    /// design, where one is defined.
    #[must_use]
    pub fn nominal_limit(self) -> Option<Watts> {
        match self {
            DeviceKind::Substation | DeviceKind::Msg => None,
            DeviceKind::Msb => Some(Watts::from_megawatts(2.5)),
            DeviceKind::Sb => Some(Watts::from_megawatts(1.25)),
            DeviceKind::Rpp => Some(Watts::from_kilowatts(190.0)),
        }
    }
}

impl core::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            DeviceKind::Substation => "substation",
            DeviceKind::Msg => "MSG",
            DeviceKind::Msb => "MSB",
            DeviceKind::Sb => "SB",
            DeviceKind::Rpp => "RPP",
        };
        f.write_str(name)
    }
}

/// One device node in the hierarchy: its kind, optional breaker, children, and
/// directly attached racks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    pub(crate) id: DeviceId,
    pub(crate) kind: DeviceKind,
    pub(crate) parent: Option<DeviceId>,
    pub(crate) breaker: Option<Breaker>,
    pub(crate) children: Vec<DeviceId>,
    pub(crate) racks: Vec<RackId>,
}

impl Device {
    /// This device's identifier.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device kind.
    #[must_use]
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The parent device, if this is not the root.
    #[must_use]
    pub fn parent(&self) -> Option<DeviceId> {
        self.parent
    }

    /// The breaker protecting this device, if it has a power limit.
    #[must_use]
    pub fn breaker(&self) -> Option<&Breaker> {
        self.breaker.as_ref()
    }

    /// Mutable access to the breaker.
    #[must_use]
    pub fn breaker_mut(&mut self) -> Option<&mut Breaker> {
        self.breaker.as_mut()
    }

    /// The breaker power limit, if any.
    #[must_use]
    pub fn limit(&self) -> Option<Watts> {
        self.breaker.as_ref().map(Breaker::limit)
    }

    /// Child devices fed from this device.
    #[must_use]
    pub fn children(&self) -> &[DeviceId] {
        &self.children
    }

    /// Racks attached directly to this device (normally only at RPPs).
    #[must_use]
    pub fn racks(&self) -> &[RackId] {
        &self.racks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_limits_match_ocp_ratings() {
        assert_eq!(
            DeviceKind::Msb.nominal_limit(),
            Some(Watts::from_megawatts(2.5))
        );
        assert_eq!(
            DeviceKind::Sb.nominal_limit(),
            Some(Watts::from_megawatts(1.25))
        );
        assert_eq!(
            DeviceKind::Rpp.nominal_limit(),
            Some(Watts::from_kilowatts(190.0))
        );
        assert_eq!(DeviceKind::Substation.nominal_limit(), None);
        assert_eq!(DeviceKind::Msg.nominal_limit(), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceKind::Msb.to_string(), "MSB");
        assert_eq!(DeviceKind::Rpp.to_string(), "RPP");
        assert_eq!(DeviceKind::Substation.to_string(), "substation");
    }
}
