//! The data-center power-delivery hierarchy of §II-A: a tree of circuit
//! breakers (MSB → SB → RPP) feeding racks, with breaker trip modelling and
//! open-transition injection.
//!
//! # Architecture
//!
//! * [`Breaker`] — a circuit breaker with a power limit and a
//!   sustained-overload trip integrator (a 30% overdraw sustained for 30 s
//!   trips the breaker, §I).
//! * [`Topology`] / [`TopologyBuilder`] — an arena-allocated device tree with
//!   per-device breakers and racks attached at the leaves.
//! * [`facebook`] — constructors for the canonical Facebook/OCP hierarchy
//!   (MSB 2.5 MW → SB 1.25 MW → RPP 190 kW → 12.6 kW racks).
//! * [`OpenTransition`] — a brief de-energization of the subtree under a
//!   device (maintenance switch-over or utility blip).
//!
//! # Examples
//!
//! ```
//! use recharge_power::{facebook, OpenTransition};
//! use recharge_units::{Seconds, SimTime, Watts};
//!
//! // One MSB with 316 racks, as in the paper's §V-B evaluation.
//! let plan = facebook::single_msb(316);
//! assert_eq!(plan.racks.len(), 316);
//! let msb = plan.msb;
//! assert_eq!(plan.topology.device(msb).unwrap().limit(), Some(Watts::from_megawatts(2.5)));
//!
//! // A 45-second open transition at the MSB affects every rack under it.
//! let ot = OpenTransition::new(msb, SimTime::ZERO, Seconds::new(45.0));
//! assert_eq!(plan.topology.racks_under(msb).len(), 316);
//! assert!(ot.is_active(SimTime::from_secs(10.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod device;
pub mod facebook;
mod open_transition;
pub mod suite;
mod topology;

pub use breaker::{Breaker, BreakerStatus, TripCurve};
pub use device::{Device, DeviceKind};
pub use open_transition::OpenTransition;
pub use topology::{Topology, TopologyBuilder, TopologyError};
