//! Circuit breakers with a sustained-overload trip model.

use serde::{Deserialize, Serialize};

use recharge_units::{Seconds, SimTime, Watts};

/// The trip characteristic of a breaker: how much sustained overdraw, for how
/// long, opens the breaker.
///
/// §I of the paper quotes the motivating example: *"a 30% power overdraw at a
/// circuit breaker for more than 30 seconds could trip it."*
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripCurve {
    /// Multiple of the limit at which the trip timer starts (1.3 = 30% over).
    pub trip_factor: f64,
    /// How long the overdraw must be sustained before the breaker opens.
    pub sustain: Seconds,
}

impl TripCurve {
    /// The paper's example characteristic: 30% overdraw for 30 seconds.
    #[must_use]
    pub fn standard() -> Self {
        TripCurve {
            trip_factor: 1.3,
            sustain: Seconds::new(30.0),
        }
    }
}

impl Default for TripCurve {
    fn default() -> Self {
        TripCurve::standard()
    }
}

/// Outcome of one breaker observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerStatus {
    /// Power draw within the limit.
    Nominal,
    /// Power draw above the limit but below (or not yet sustained at) the
    /// trip threshold — the regime Dynamo must react in.
    Overloaded,
    /// The breaker has opened; everything downstream is dark.
    Tripped,
}

/// A circuit breaker: a power limit plus a sustained-overload trip integrator.
///
/// The breaker is fed periodic power observations via [`Breaker::observe`];
/// once draw at or above `limit × trip_factor` has been sustained for the trip
/// curve's duration, the breaker latches [`BreakerStatus::Tripped`] until
/// [`Breaker::reset`] (a manual re-close after an outage).
///
/// # Examples
///
/// ```
/// use recharge_power::{Breaker, BreakerStatus};
/// use recharge_units::{SimTime, Seconds, Watts};
///
/// let mut breaker = Breaker::new(Watts::from_megawatts(2.5));
/// let t0 = SimTime::ZERO;
/// assert_eq!(breaker.observe(Watts::from_megawatts(2.4), t0), BreakerStatus::Nominal);
/// assert_eq!(breaker.observe(Watts::from_megawatts(2.6), t0), BreakerStatus::Overloaded);
///
/// // 30% over for more than 30 seconds → trip.
/// breaker.observe(Watts::from_megawatts(3.3), t0);
/// let later = t0 + Seconds::new(31.0);
/// assert_eq!(breaker.observe(Watts::from_megawatts(3.3), later), BreakerStatus::Tripped);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breaker {
    limit: Watts,
    curve: TripCurve,
    over_trip_since: Option<SimTime>,
    tripped: bool,
    /// Whether the previous observation was above the limit — tracked only
    /// to journal margin-crossing edges, never read by the trip logic.
    was_over: bool,
}

impl Breaker {
    /// Creates a breaker with the given limit and the standard trip curve.
    #[must_use]
    pub fn new(limit: Watts) -> Self {
        Breaker::with_curve(limit, TripCurve::standard())
    }

    /// Creates a breaker with a custom trip curve.
    #[must_use]
    pub fn with_curve(limit: Watts, curve: TripCurve) -> Self {
        Breaker {
            limit,
            curve,
            over_trip_since: None,
            tripped: false,
            was_over: false,
        }
    }

    /// The breaker's power limit.
    #[must_use]
    pub fn limit(&self) -> Watts {
        self.limit
    }

    /// The trip characteristic.
    #[must_use]
    pub fn trip_curve(&self) -> TripCurve {
        self.curve
    }

    /// Whether the breaker has tripped.
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Headroom left under the limit at the given draw (zero when overloaded).
    #[must_use]
    pub fn available_power(&self, draw: Watts) -> Watts {
        (self.limit - draw).max(Watts::ZERO)
    }

    /// A lower bound on the earliest time this breaker could possibly trip,
    /// assuming the draw never exceeds `worst_case_draw` from `now` on.
    ///
    /// `None` means "never": the worst-case draw stays below the trip
    /// threshold (`limit × trip_factor`), so the trip integrator cannot even
    /// start. Otherwise the bound is when a *continuously* sustained
    /// worst-case overdraw would satisfy the trip curve — measured from the
    /// running integrator if one is already open, else from `now`. Any dip
    /// below the threshold resets the integrator and pushes the real trip
    /// later, so the bound is conservative: no observation sequence bounded
    /// by `worst_case_draw` trips strictly before it. An already-tripped
    /// breaker reports `now`.
    ///
    /// Like the kernel's charge-event horizons, this is scheduling
    /// information only — the event-driven loop still feeds
    /// [`observe`](Self::observe) at every control tick, it just knows no
    /// trip can land inside the bound.
    #[must_use]
    pub fn next_possible_trip_time(&self, now: SimTime, worst_case_draw: Watts) -> Option<SimTime> {
        if self.tripped {
            return Some(now);
        }
        if worst_case_draw < self.limit * self.curve.trip_factor {
            return None;
        }
        let since = self.over_trip_since.unwrap_or(now);
        Some((since + self.curve.sustain).max(now))
    }

    /// Feeds one power observation at `now`, returning the resulting status.
    ///
    /// Observations must be fed in non-decreasing time order; the integrator
    /// measures how long draw has stayed at or above the trip threshold.
    pub fn observe(&mut self, draw: Watts, now: SimTime) -> BreakerStatus {
        if self.tripped {
            return BreakerStatus::Tripped;
        }
        self.journal_margin_edge(draw, now);
        let trip_threshold = self.limit * self.curve.trip_factor;
        if draw >= trip_threshold {
            let since = *self.over_trip_since.get_or_insert(now);
            if now.since(since) >= self.curve.sustain {
                self.tripped = true;
                // First trip only: the latch above makes re-entry impossible
                // until reset(), so the counter counts distinct trips.
                recharge_telemetry::tcounter!("power.breaker_trips").inc();
                recharge_telemetry::tevent!(
                    "breaker.trip",
                    "power",
                    "limit_w" => self.limit.as_watts(),
                    "draw_w" => draw.as_watts(),
                );
                recharge_telemetry::flight_at(
                    now.as_secs(),
                    recharge_telemetry::FlightKind::BreakerTrip,
                    recharge_telemetry::ReasonCode::Observed,
                    recharge_telemetry::NO_RACK,
                    0,
                    recharge_telemetry::NO_BUCKET,
                    draw.as_watts().to_bits(),
                    self.limit.as_watts().to_bits(),
                );
                return BreakerStatus::Tripped;
            }
            BreakerStatus::Overloaded
        } else {
            self.over_trip_since = None;
            if draw > self.limit {
                BreakerStatus::Overloaded
            } else {
                BreakerStatus::Nominal
            }
        }
    }

    /// Journals limit crossings (in either direction) to the flight
    /// recorder: `v0` is the observed draw, `v1` the limit, and the margin
    /// (`v1 − v0`) is negative exactly while overloaded.
    fn journal_margin_edge(&mut self, draw: Watts, now: SimTime) {
        let over = draw > self.limit;
        if over != self.was_over {
            self.was_over = over;
            recharge_telemetry::flight_at(
                now.as_secs(),
                recharge_telemetry::FlightKind::BreakerMargin,
                recharge_telemetry::ReasonCode::Observed,
                recharge_telemetry::NO_RACK,
                0,
                recharge_telemetry::NO_BUCKET,
                draw.as_watts().to_bits(),
                self.limit.as_watts().to_bits(),
            );
        }
    }

    /// Re-closes a tripped breaker and clears the trip integrator.
    pub fn reset(&mut self) {
        self.tripped = false;
        self.over_trip_since = None;
        self.was_over = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(Watts::from_kilowatts(100.0))
    }

    #[test]
    fn nominal_below_limit() {
        let mut b = breaker();
        assert_eq!(
            b.observe(Watts::from_kilowatts(99.0), SimTime::ZERO),
            BreakerStatus::Nominal
        );
        assert_eq!(
            b.observe(Watts::from_kilowatts(100.0), SimTime::ZERO),
            BreakerStatus::Nominal
        );
        assert!(!b.is_tripped());
    }

    #[test]
    fn overload_without_trip_threshold_never_trips() {
        let mut b = breaker();
        for s in 0..1_000 {
            let status = b.observe(
                Watts::from_kilowatts(120.0),
                SimTime::from_secs(f64::from(s)),
            );
            assert_eq!(status, BreakerStatus::Overloaded);
        }
        assert!(!b.is_tripped());
    }

    #[test]
    fn sustained_trip_threshold_trips_after_30s() {
        let mut b = breaker();
        assert_eq!(
            b.observe(Watts::from_kilowatts(130.0), SimTime::ZERO),
            BreakerStatus::Overloaded
        );
        assert_eq!(
            b.observe(Watts::from_kilowatts(130.0), SimTime::from_secs(29.0)),
            BreakerStatus::Overloaded
        );
        assert_eq!(
            b.observe(Watts::from_kilowatts(130.0), SimTime::from_secs(30.0)),
            BreakerStatus::Tripped
        );
        assert!(b.is_tripped());
        // Latched: stays tripped even at zero draw.
        assert_eq!(
            b.observe(Watts::ZERO, SimTime::from_secs(31.0)),
            BreakerStatus::Tripped
        );
    }

    #[test]
    fn dip_below_threshold_resets_integrator() {
        let mut b = breaker();
        b.observe(Watts::from_kilowatts(135.0), SimTime::ZERO);
        b.observe(Watts::from_kilowatts(120.0), SimTime::from_secs(20.0)); // dip
        b.observe(Watts::from_kilowatts(135.0), SimTime::from_secs(25.0));
        // 25 s + 29 s later: only 29 s of continuous overdraw — no trip.
        assert_eq!(
            b.observe(Watts::from_kilowatts(135.0), SimTime::from_secs(54.0)),
            BreakerStatus::Overloaded
        );
        assert_eq!(
            b.observe(Watts::from_kilowatts(135.0), SimTime::from_secs(55.0)),
            BreakerStatus::Tripped
        );
    }

    #[test]
    fn reset_restores_service() {
        let mut b = breaker();
        b.observe(Watts::from_kilowatts(200.0), SimTime::ZERO);
        b.observe(Watts::from_kilowatts(200.0), SimTime::from_secs(60.0));
        assert!(b.is_tripped());
        b.reset();
        assert!(!b.is_tripped());
        assert_eq!(
            b.observe(Watts::from_kilowatts(50.0), SimTime::from_secs(61.0)),
            BreakerStatus::Nominal
        );
    }

    #[test]
    fn available_power_saturates_at_zero() {
        let b = breaker();
        assert_eq!(
            b.available_power(Watts::from_kilowatts(40.0)),
            Watts::from_kilowatts(60.0)
        );
        assert_eq!(b.available_power(Watts::from_kilowatts(140.0)), Watts::ZERO);
    }

    #[test]
    fn trip_horizon_is_none_below_the_threshold() {
        let b = breaker();
        // 100 kW limit × 1.3 = 130 kW threshold: anything below can never trip.
        assert_eq!(
            b.next_possible_trip_time(SimTime::ZERO, Watts::from_kilowatts(129.0)),
            None
        );
        assert_eq!(b.next_possible_trip_time(SimTime::ZERO, Watts::ZERO), None);
    }

    #[test]
    fn trip_horizon_is_sustain_from_now_with_a_fresh_integrator() {
        let b = breaker();
        assert_eq!(
            b.next_possible_trip_time(SimTime::from_secs(10.0), Watts::from_kilowatts(200.0)),
            Some(SimTime::from_secs(40.0))
        );
    }

    #[test]
    fn trip_horizon_tracks_an_open_integrator() {
        let mut b = breaker();
        b.observe(Watts::from_kilowatts(135.0), SimTime::from_secs(5.0));
        // Overdraw since t=5: the earliest possible trip is 5 + 30 = 35 s.
        assert_eq!(
            b.next_possible_trip_time(SimTime::from_secs(20.0), Watts::from_kilowatts(135.0)),
            Some(SimTime::from_secs(35.0))
        );
        // The bound never lands in the past even if the integrator is stale.
        assert_eq!(
            b.next_possible_trip_time(SimTime::from_secs(50.0), Watts::from_kilowatts(135.0)),
            Some(SimTime::from_secs(50.0))
        );
        // A dip resets the integrator: the horizon pushes out again.
        b.observe(Watts::from_kilowatts(90.0), SimTime::from_secs(21.0));
        assert_eq!(
            b.next_possible_trip_time(SimTime::from_secs(22.0), Watts::from_kilowatts(135.0)),
            Some(SimTime::from_secs(52.0))
        );
    }

    #[test]
    fn trip_horizon_is_conservative_against_dense_observation() {
        // Feed a worst-case-bounded draw densely; the breaker must not trip
        // strictly before the horizon predicted at t=0.
        let mut b = breaker();
        let draw = Watts::from_kilowatts(140.0);
        let horizon = b.next_possible_trip_time(SimTime::ZERO, draw).unwrap();
        let mut t = 0.0;
        while !b.is_tripped() {
            b.observe(draw, SimTime::from_secs(t));
            if !b.is_tripped() {
                t += 1.0;
            }
            assert!(t < 1e4, "never tripped");
        }
        assert!(
            t >= horizon.as_secs() - 1e-9,
            "tripped at {t} before {horizon}"
        );
    }

    #[test]
    fn tripped_breaker_reports_now() {
        let mut b = breaker();
        b.observe(Watts::from_kilowatts(200.0), SimTime::ZERO);
        b.observe(Watts::from_kilowatts(200.0), SimTime::from_secs(60.0));
        assert!(b.is_tripped());
        assert_eq!(
            b.next_possible_trip_time(SimTime::from_secs(61.0), Watts::ZERO),
            Some(SimTime::from_secs(61.0))
        );
    }

    #[test]
    fn custom_trip_curve() {
        let curve = TripCurve {
            trip_factor: 1.1,
            sustain: Seconds::new(5.0),
        };
        let mut b = Breaker::with_curve(Watts::new(100.0), curve);
        b.observe(Watts::new(111.0), SimTime::ZERO);
        assert_eq!(
            b.observe(Watts::new(111.0), SimTime::from_secs(5.0)),
            BreakerStatus::Tripped
        );
        assert_eq!(b.trip_curve(), curve);
    }
}
