//! Property tests for the power-hierarchy tree and breaker model.

use proptest::prelude::*;

use recharge_power::{facebook, Breaker, BreakerStatus, TripCurve};
use recharge_units::{RackId, Seconds, SimTime, Watts};

proptest! {
    #[test]
    fn aggregation_conserves_power(
        rack_count in 1usize..200,
        row_size in 1usize..20,
        unit_power in 1.0f64..20_000.0,
    ) {
        let plan = facebook::single_msb_with_row_size(rack_count, row_size);
        let totals = plan.topology.aggregate(|_| Watts::new(unit_power));
        // The MSB sees exactly the sum of all racks.
        let msb_total = totals[plan.msb.index() as usize];
        prop_assert!(
            (msb_total.as_watts() - unit_power * rack_count as f64).abs() < 1e-6
        );
        // SB totals sum to the MSB total.
        let sb_sum: f64 =
            plan.sbs.iter().map(|sb| totals[sb.index() as usize].as_watts()).sum();
        prop_assert!((sb_sum - msb_total.as_watts()).abs() < 1e-6);
        // RPP totals also sum to the MSB total.
        let rpp_sum: f64 =
            plan.rpps.iter().map(|rpp| totals[rpp.index() as usize].as_watts()).sum();
        prop_assert!((rpp_sum - msb_total.as_watts()).abs() < 1e-6);
    }

    #[test]
    fn racks_under_partitions_by_sb(rack_count in 1usize..150, row_size in 1usize..15) {
        let plan = facebook::single_msb_with_row_size(rack_count, row_size);
        let mut from_sbs: Vec<RackId> = plan
            .sbs
            .iter()
            .flat_map(|&sb| plan.topology.racks_under(sb))
            .collect();
        from_sbs.sort();
        let mut all = plan.topology.racks_under(plan.msb);
        all.sort();
        prop_assert_eq!(from_sbs, all);
        prop_assert_eq!(plan.racks.len(), rack_count);
    }

    #[test]
    fn ancestors_always_end_at_the_msb(rack_count in 1usize..100) {
        let plan = facebook::single_msb(rack_count);
        for &rpp in &plan.rpps {
            let chain = plan.topology.ancestors(rpp);
            prop_assert_eq!(*chain.last().unwrap(), plan.msb);
            prop_assert_eq!(chain.len(), 3); // RPP → SB → MSB
        }
    }

    #[test]
    fn breaker_never_trips_below_threshold(
        limit in 1_000.0f64..1e6,
        factor in 1.05f64..2.0,
        steps in 1usize..200,
    ) {
        let curve = TripCurve { trip_factor: factor, sustain: Seconds::new(30.0) };
        let mut breaker = Breaker::with_curve(Watts::new(limit), curve);
        // Draw just below the trip threshold forever: never trips.
        let draw = Watts::new(limit * factor * 0.999);
        for s in 0..steps {
            let status = breaker.observe(draw, SimTime::from_secs(s as f64));
            prop_assert_ne!(status, BreakerStatus::Tripped);
        }
    }

    #[test]
    fn breaker_trips_exactly_after_sustain(
        limit in 1_000.0f64..1e6,
        sustain in 1.0f64..120.0,
    ) {
        let curve = TripCurve { trip_factor: 1.3, sustain: Seconds::new(sustain) };
        let mut breaker = Breaker::with_curve(Watts::new(limit), curve);
        let draw = Watts::new(limit * 1.5);
        prop_assert_ne!(breaker.observe(draw, SimTime::ZERO), BreakerStatus::Tripped);
        prop_assert_ne!(
            breaker.observe(draw, SimTime::from_secs(sustain * 0.99)),
            BreakerStatus::Tripped
        );
        prop_assert_eq!(
            breaker.observe(draw, SimTime::from_secs(sustain)),
            BreakerStatus::Tripped
        );
    }
}
