//! Property test for the HA snapshot/restore contract: at a *randomized*
//! snapshot point, serializing the leader's brain to bytes, restoring it
//! into a fresh standby, and continuing must be bit-identical to the
//! uninterrupted controller — for any snapshot tick, discharge depth, and
//! fleet load proptest can shrink to.

use proptest::prelude::*;
use recharge_dynamo::{
    Controller, ControllerConfig, ControllerSnapshot, InMemoryBus, SimRackAgent, Strategy,
};
use recharge_units::{DeviceId, Priority, RackId, Seconds, SimTime, Watts};

fn fleet(n_per_priority: usize, load_kw: f64) -> InMemoryBus<SimRackAgent> {
    let mut agents = Vec::new();
    let mut id = 0;
    for priority in Priority::ALL {
        for _ in 0..n_per_priority {
            agents.push(
                SimRackAgent::builder(RackId::new(id), priority)
                    .offered_load(Watts::from_kilowatts(load_kw))
                    .build(),
            );
            id += 1;
        }
    }
    InMemoryBus::new(agents)
}

fn open_transition(bus: &mut InMemoryBus<SimRackAgent>, secs: f64) {
    for a in bus.agents_mut() {
        a.set_input_power(false);
    }
    for a in bus.agents_mut() {
        a.step(Seconds::new(secs));
    }
    for a in bus.agents_mut() {
        a.set_input_power(true);
    }
    for a in bus.agents_mut() {
        a.step(Seconds::new(1.0));
    }
}

fn step(bus: &mut InMemoryBus<SimRackAgent>, secs: f64) {
    for a in bus.agents_mut() {
        a.step(Seconds::new(secs));
    }
}

fn controller(limit_kw: f64) -> Controller {
    Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(limit_kw)),
        Strategy::PriorityAware,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any snapshot tick `k`, world B (snapshot at `k` → wire bytes →
    /// fresh standby → continue) matches world A (never interrupted) bit for
    /// bit in every report and in the final command stream.
    #[test]
    fn snapshot_restore_continue_is_bit_identical(
        k in 1u64..90,
        discharge_secs in 20.0f64..120.0,
        load_kw in 4.0f64..8.0,
        limit_kw in 19.0f64..40.0,
    ) {
        let mut bus_a = fleet(2, load_kw);
        let mut bus_b = fleet(2, load_kw);
        open_transition(&mut bus_a, discharge_secs);
        open_transition(&mut bus_b, discharge_secs);
        let mut live = controller(limit_kw);
        let mut original = controller(limit_kw);

        for t in 0..k {
            let now = SimTime::from_secs(t as f64);
            prop_assert_eq!(live.tick(now, &mut bus_a), original.tick(now, &mut bus_b));
            step(&mut bus_a, 1.0);
            step(&mut bus_b, 1.0);
        }

        // Snapshot through the real wire encoding, not just the in-memory
        // struct: to_bytes → from_bytes must round-trip the exact brain.
        let bytes = original.snapshot().to_bytes();
        let decoded = ControllerSnapshot::from_bytes(&bytes)
            .expect("snapshot bytes must decode");
        let mut standby = controller(limit_kw);
        standby.restore(&decoded);
        drop(original);

        for t in k..k + 60 {
            let now = SimTime::from_secs(t as f64);
            prop_assert_eq!(live.tick(now, &mut bus_a), standby.tick(now, &mut bus_b));
            step(&mut bus_a, 1.0);
            step(&mut bus_b, 1.0);
        }
        prop_assert_eq!(live.commanded_currents(), standby.commanded_currents());
    }
}
