//! `recharge-ha`: controller high availability for the Dynamo upper layer.
//!
//! The paper's upper controller (§IV-B) is a single process protecting a
//! campus-scale breaker; if it dies, every rack below it falls back to the
//! §III-B standalone variable charger and coordination quality degrades.
//! This crate removes that single point of failure with a hot-standby set:
//!
//! - [`ControllerSet`] runs N redundant [`Controller`] replicas over one
//!   agent bus. Exactly one — the **leader** — issues commands; the rest are
//!   hot standbys that hold a replicated snapshot of the leader's brain.
//! - **Lease-based leader election.** The leader implicitly renews its lease
//!   on every successful control tick. When it stops responding (crash or
//!   freeze, injected via [`ProcessFault`]), standbys wait out the lease
//!   width — nobody may act while a possibly-alive leader could still be
//!   commanding — then campaign. Candidates draw seeded `splitmix64` jitter
//!   (the same generator as the RPC retry backoff) and the lowest
//!   `(draw, id)` pair wins, so elections are deterministic per seed and
//!   never split.
//! - **Monotonic terms as fencing tokens.** Every election increments
//!   `term`. Commands carry the term on the wire
//!   (`Request::ApplyFencedBatch` in `recharge-net`), and agents reject
//!   anything below the highest term they have seen — a frozen ex-leader
//!   that thaws mid-failover cannot double-override a rack.
//! - **Deterministic snapshot replication.** On a configurable cadence the
//!   leader serializes its brain ([`Controller::snapshot`] — `ChargeIndex`
//!   plus parked-charge map, `f64`s as exact bit patterns) and replicates it
//!   to the standbys ([`StoredSnapshot`]). On takeover the new leader
//!   restores the latest snapshot and replays the delta since from live
//!   agent readings: the first post-takeover tick re-reads every rack, so
//!   battery state drifted during the gap is reconciled against ground
//!   truth rather than a stale log.
//!
//! The headline property, pinned by `crates/sim/tests/ha_soak.rs`: with no
//! faults injected, a full simulation over a [`ControllerSet`] produces
//! **bit-identical** `RunMetrics` to the single-controller run — election
//! and snapshotting never touch the bus — and under kill-the-leader chaos a
//! standby takes over within one lease width with zero breaker trips.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::splitmix64;
use recharge_dynamo::{
    AgentBus, Controller, ControllerConfig, ControllerReport, ControllerSnapshot, Strategy,
};
use recharge_net::{ProcessFault, StoredSnapshot};
use recharge_telemetry::{flight_at, tcounter, tgauge, FlightKind, ReasonCode, NO_BUCKET, NO_RACK};
use recharge_units::SimTime;

/// Default replica count (one leader, two hot standbys).
pub const DEFAULT_REPLICAS: u32 = 3;

/// Default leadership lease width in simulation ticks; mirrors the
/// agent-side [`recharge_net::DEFAULT_LEASE_TICKS`] so the controller set
/// never believes a leader the agents have already given up on.
pub const DEFAULT_LEASE_TICKS: u64 = recharge_net::DEFAULT_LEASE_TICKS;

/// Default brain-snapshot replication cadence in simulation ticks: one
/// lease width. A takeover can begin at most one lease after the leader
/// vanished and always reconciles that window from live agent readings, so
/// replicating more often than the lease buys no freshness a takeover could
/// use — it only costs serialization time (`BENCH_ha.json` gates that cost
/// at ≤ 2 % of a tick).
pub const DEFAULT_SNAPSHOT_EVERY: u64 = DEFAULT_LEASE_TICKS;

/// Configuration of a [`ControllerSet`].
#[derive(Debug, Clone)]
pub struct HaConfig {
    /// Number of redundant controllers (leader + standbys), at least 1.
    pub replicas: u32,
    /// Lease width in simulation ticks: how long after the leader's last
    /// successful tick standbys must wait before campaigning.
    pub lease_ticks: u64,
    /// Brain-snapshot replication cadence in simulation ticks; `0` disables
    /// snapshotting (takeover then starts from a cold brain).
    pub snapshot_every: u64,
    /// Seed for the deterministic election jitter.
    pub seed: u64,
    /// Process faults to inject on the shared deterministic tick clock.
    pub faults: Vec<ProcessFault>,
}

impl Default for HaConfig {
    fn default() -> Self {
        HaConfig {
            replicas: DEFAULT_REPLICAS,
            lease_ticks: DEFAULT_LEASE_TICKS,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            seed: 0xD1A5_0C4A_11E5,
            faults: Vec::new(),
        }
    }
}

impl HaConfig {
    /// Sets the replica count.
    #[must_use]
    pub fn replicas(mut self, n: u32) -> Self {
        self.replicas = n;
        self
    }

    /// Sets the lease width in ticks.
    #[must_use]
    pub fn lease_ticks(mut self, ticks: u64) -> Self {
        self.lease_ticks = ticks;
        self
    }

    /// Sets the snapshot replication cadence in ticks.
    #[must_use]
    pub fn snapshot_every(mut self, ticks: u64) -> Self {
        self.snapshot_every = ticks;
        self
    }

    /// Sets the election jitter seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds one process fault to the injection schedule.
    #[must_use]
    pub fn fault(mut self, fault: ProcessFault) -> Self {
        self.faults.push(fault);
        self
    }
}

/// One redundant controller: the brain plus its process-fault state.
struct Replica {
    controller: Controller,
    crashed: bool,
    frozen: bool,
    /// The last term this replica led, if any — cleared (with a
    /// [`FlightKind::StaleLeaderFenced`] journal entry) when the replica
    /// comes back under a newer term.
    led_term: Option<u64>,
}

/// A hot-standby set of upper controllers behind a single logical breaker.
///
/// Drive it once per control interval with [`ControllerSet::tick`], passing
/// the deterministic simulation tick (the same clock `FaultClock` and the
/// agent-side lease run on) and the agent bus. Returns the leader's
/// [`ControllerReport`], or `None` while the set is leaderless (lease
/// running out, or every replica faulted).
pub struct ControllerSet {
    replicas: Vec<Replica>,
    ha: HaConfig,
    term: u64,
    leader: Option<u32>,
    /// Tick of the leader's last successful control tick (its lease renewal).
    leader_contact: u64,
    rng: u64,
    snapshot: Option<StoredSnapshot>,
    failovers: u64,
    pending_takeover: bool,
}

impl ControllerSet {
    /// Builds `ha.replicas` identical controllers from one configuration.
    #[must_use]
    pub fn new(config: ControllerConfig, strategy: Strategy, ha: HaConfig) -> Self {
        let n = ha.replicas.max(1) as usize;
        let replicas = (0..n)
            .map(|_| Replica {
                controller: Controller::new(config.clone(), strategy),
                crashed: false,
                frozen: false,
                led_term: None,
            })
            .collect();
        let rng = ha.seed ^ 0x9E37_79B9_7F4A_7C15;
        ControllerSet {
            replicas,
            ha,
            term: 0,
            leader: None,
            leader_contact: 0,
            rng,
            snapshot: None,
            failovers: 0,
            pending_takeover: false,
        }
    }

    /// The current leader's replica id, if any.
    #[must_use]
    pub fn leader(&self) -> Option<u32> {
        self.leader
    }

    /// The current fencing term (0 before the first election).
    #[must_use]
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Completed failovers (elections after the first).
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Number of replicas in the set.
    #[must_use]
    pub fn replica_count(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// Whether replica `id` is currently neither crashed nor frozen.
    #[must_use]
    pub fn is_available(&self, id: u32) -> bool {
        self.replicas
            .get(id as usize)
            .is_some_and(|r| !r.crashed && !r.frozen)
    }

    /// The latest replicated brain snapshot, if one has been taken.
    #[must_use]
    pub fn replicated_snapshot(&self) -> Option<&StoredSnapshot> {
        self.snapshot.as_ref()
    }

    /// Read access to the current leader's controller (for inspection).
    #[must_use]
    pub fn leader_controller(&self) -> Option<&Controller> {
        self.leader.map(|l| &self.replicas[l as usize].controller)
    }

    /// Runs one control interval at deterministic simulation tick `tick_now`
    /// (the `FaultClock` tick) and logical instant `now`.
    ///
    /// Returns `None` while the set is leaderless: an unresponsive leader
    /// may still hold its lease (standbys must not act until it expires), or
    /// every replica is faulted. Callers should fall back to monitoring-only
    /// aggregation for that interval, exactly as for an unmitigated run.
    pub fn tick(
        &mut self,
        tick_now: u64,
        now: SimTime,
        bus: &mut dyn AgentBus,
    ) -> Option<ControllerReport> {
        self.apply_faults(tick_now, now);
        self.fence_stale_ex_leaders(now);

        if let Some(l) = self.leader {
            if !self.is_available(l) {
                if tick_now.saturating_sub(self.leader_contact) >= self.ha.lease_ticks {
                    flight_at(
                        now.as_secs(),
                        FlightKind::LeaderLost,
                        ReasonCode::HaLeaseExpired,
                        NO_RACK,
                        0,
                        NO_BUCKET,
                        u64::from(l),
                        self.term,
                    );
                    self.leader = None;
                } else {
                    // The lease may still be honoured by agents: nobody acts.
                    self.publish_gauges(tick_now);
                    return None;
                }
            }
        }
        if self.leader.is_none() {
            self.campaign(tick_now, now);
        }
        let Some(l) = self.leader else {
            self.publish_gauges(tick_now);
            return None; // every replica is down
        };

        let report = self.replicas[l as usize].controller.tick(now, bus);
        self.leader_contact = tick_now;
        if self.pending_takeover {
            self.pending_takeover = false;
            flight_at(
                now.as_secs(),
                FlightKind::TakeoverComplete,
                ReasonCode::HaTakeover,
                NO_RACK,
                0,
                NO_BUCKET,
                u64::from(l),
                self.term,
            );
        }
        self.maybe_snapshot(tick_now, now, l);
        self.publish_gauges(tick_now);
        Some(report)
    }

    /// Refreshes per-replica fault state from the injection schedule and
    /// journals the moment the leader first becomes unresponsive.
    fn apply_faults(&mut self, tick_now: u64, now: SimTime) {
        let leader = self.leader;
        let term = self.term;
        for (i, r) in self.replicas.iter_mut().enumerate() {
            let id = i as u32;
            let crashed = crashed_at(&self.ha.faults, id, tick_now);
            let frozen = frozen_at(&self.ha.faults, id, tick_now);
            let was_ok = !r.crashed && !r.frozen;
            if leader == Some(id) && was_ok && (crashed || frozen) {
                let reason = if crashed {
                    ReasonCode::HaCrashed
                } else {
                    ReasonCode::HaFrozen
                };
                flight_at(
                    now.as_secs(),
                    FlightKind::LeaderLost,
                    reason,
                    NO_RACK,
                    0,
                    NO_BUCKET,
                    u64::from(id),
                    term,
                );
            }
            r.crashed = crashed;
            r.frozen = frozen;
        }
    }

    /// Journals (once) any thawed ex-leader whose term has been superseded:
    /// the in-process analogue of the agent-side stale-term rejection.
    fn fence_stale_ex_leaders(&mut self, now: SimTime) {
        let current = self.term;
        let leader = self.leader;
        for (i, r) in self.replicas.iter_mut().enumerate() {
            if r.crashed || r.frozen || leader == Some(i as u32) {
                continue;
            }
            if let Some(t) = r.led_term {
                if t < current {
                    flight_at(
                        now.as_secs(),
                        FlightKind::StaleLeaderFenced,
                        ReasonCode::HaStaleTerm,
                        NO_RACK,
                        0,
                        NO_BUCKET,
                        t,
                        current,
                    );
                    tcounter!("ha.stale_leaders_fenced").inc();
                    r.led_term = None;
                }
            }
        }
    }

    /// Elects a leader among available replicas: every replica draws seeded
    /// jitter (draw count is fixed per election, so the stream stays aligned
    /// whatever the fault pattern) and the lowest `(draw, id)` wins.
    fn campaign(&mut self, tick_now: u64, now: SimTime) {
        let n = self.replicas.len();
        let draws: Vec<f64> = (0..n).map(|_| uniform(&mut self.rng)).collect();
        let winner = (0..n)
            .filter(|&i| self.is_available(i as u32))
            .map(|i| (draws[i], i as u32))
            .min_by(|a, b| a.partial_cmp(b).expect("jitter draws are never NaN"));
        let Some((_, id)) = winner else {
            return;
        };
        self.term += 1;
        let failover = self.term > 1;
        self.leader = Some(id);
        self.leader_contact = tick_now;
        self.replicas[id as usize].led_term = Some(self.term);
        flight_at(
            now.as_secs(),
            FlightKind::LeaderElected,
            ReasonCode::HaCampaignWon,
            NO_RACK,
            0,
            NO_BUCKET,
            u64::from(id),
            self.term,
        );
        tcounter!("ha.elections_total").inc();
        if failover {
            self.failovers += 1;
            tcounter!("ha.failovers_total").inc();
            if let Some(snap) = &self.snapshot {
                if let Ok(decoded) = ControllerSnapshot::from_bytes(&snap.bytes) {
                    self.replicas[id as usize].controller.restore(&decoded);
                    flight_at(
                        now.as_secs(),
                        FlightKind::SnapshotRestored,
                        ReasonCode::HaTakeover,
                        NO_RACK,
                        0,
                        NO_BUCKET,
                        snap.term,
                        snap.bytes.len() as u64,
                    );
                }
            }
            self.pending_takeover = true;
        }
    }

    /// Serializes and replicates the leader's brain when the cadence is due.
    fn maybe_snapshot(&mut self, tick_now: u64, now: SimTime, leader: u32) {
        if self.ha.snapshot_every == 0 {
            return;
        }
        let due = match &self.snapshot {
            None => true,
            Some(s) => tick_now.saturating_sub(s.tick) >= self.ha.snapshot_every,
        };
        if !due {
            return;
        }
        let bytes = self.replicas[leader as usize]
            .controller
            .snapshot()
            .to_bytes();
        flight_at(
            now.as_secs(),
            FlightKind::SnapshotTaken,
            ReasonCode::HaSnapshotCadence,
            NO_RACK,
            0,
            NO_BUCKET,
            self.term,
            bytes.len() as u64,
        );
        tcounter!("ha.snapshots_taken").inc();
        self.snapshot = Some(StoredSnapshot {
            term: self.term,
            leader,
            tick: tick_now,
            bytes,
        });
    }

    fn publish_gauges(&self, tick_now: u64) {
        tgauge!("ha.leader_id").set(self.leader.map_or(-1.0, f64::from));
        tgauge!("ha.term").set(self.term as f64);
        tgauge!("ha.snapshot_age_ticks").set(
            self.snapshot
                .as_ref()
                .map_or(-1.0, |s| tick_now.saturating_sub(s.tick) as f64),
        );
    }
}

/// Whether `controller` has a crash fault in effect at `tick` (permanent).
fn crashed_at(faults: &[ProcessFault], controller: u32, tick: u64) -> bool {
    faults.iter().any(|f| {
        matches!(f, ProcessFault::CrashController { controller: c, at_tick }
            if *c == controller && *at_tick <= tick)
    })
}

/// Whether `controller` is inside a freeze window (`from <= tick < to`).
fn frozen_at(faults: &[ProcessFault], controller: u32, tick: u64) -> bool {
    faults.iter().any(|f| {
        matches!(f, ProcessFault::FreezeController { controller: c, from_tick, to_tick }
            if *c == controller && *from_tick <= tick && tick < *to_tick)
    })
}

/// Uniform draw in `[0, 1)` from a `splitmix64` stream — the same generator
/// the RPC retry backoff uses, so chaos runs stay reproducible end to end.
fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    use recharge_dynamo::{InMemoryBus, SimRackAgent};
    use recharge_telemetry::{set_recorder_enabled, take_flight_events};
    use recharge_units::{DeviceId, Priority, RackId, Seconds, Watts};

    use super::*;

    /// Serializes tests that drain the global flight recorder.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fleet(n_per_priority: usize, load_kw: f64) -> InMemoryBus<SimRackAgent> {
        let mut agents = Vec::new();
        let mut id = 0;
        for priority in Priority::ALL {
            for _ in 0..n_per_priority {
                agents.push(
                    SimRackAgent::builder(RackId::new(id), priority)
                        .offered_load(Watts::from_kilowatts(load_kw))
                        .build(),
                );
                id += 1;
            }
        }
        InMemoryBus::new(agents)
    }

    /// Runs an open transition of `secs` over the whole bus so batteries
    /// discharge and the controllers have charging to coordinate.
    fn open_transition(bus: &mut InMemoryBus<SimRackAgent>, secs: f64) {
        for a in bus.agents_mut() {
            a.set_input_power(false);
        }
        for a in bus.agents_mut() {
            a.step(Seconds::new(secs));
        }
        for a in bus.agents_mut() {
            a.set_input_power(true);
        }
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
    }

    fn step(bus: &mut InMemoryBus<SimRackAgent>, secs: f64) {
        for a in bus.agents_mut() {
            a.step(Seconds::new(secs));
        }
    }

    fn config(limit_kw: f64) -> ControllerConfig {
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(limit_kw))
    }

    /// The tick-0 election winner for a given HA configuration, probed on a
    /// throwaway bus so tests can aim faults at the actual leader.
    fn probe_winner(ha: &HaConfig) -> u32 {
        let mut probe = ControllerSet::new(
            config(190.0),
            Strategy::PriorityAware,
            HaConfig {
                faults: Vec::new(),
                ..ha.clone()
            },
        );
        let mut bus = fleet(1, 6.0);
        probe.tick(0, SimTime::ZERO, &mut bus);
        probe.leader().expect("probe election must succeed")
    }

    #[test]
    fn fault_free_set_is_bit_identical_to_a_single_controller() {
        let _g = lock();
        set_recorder_enabled(false);
        let mut bus_single = fleet(2, 6.0);
        let mut bus_ha = fleet(2, 6.0);
        open_transition(&mut bus_single, 45.0);
        open_transition(&mut bus_ha, 45.0);

        let mut single = Controller::new(config(190.0), Strategy::PriorityAware);
        let mut set = ControllerSet::new(
            config(190.0),
            Strategy::PriorityAware,
            HaConfig::default().seed(7),
        );
        for t in 0..120u64 {
            let now = SimTime::from_secs(t as f64);
            let want = single.tick(now, &mut bus_single);
            let got = set.tick(t, now, &mut bus_ha).expect("leader never lost");
            assert_eq!(want, got, "reports diverged at tick {t}");
            step(&mut bus_single, 1.0);
            step(&mut bus_ha, 1.0);
        }
        assert_eq!(set.term(), 1, "fault-free runs elect exactly once");
        assert_eq!(set.failovers(), 0);
        let single_cmds = single.commanded_currents();
        let set_cmds = set
            .leader_controller()
            .expect("leader present")
            .commanded_currents();
        assert_eq!(single_cmds, set_cmds);
    }

    #[test]
    fn crashed_leader_fails_over_within_one_lease_width() {
        let _g = lock();
        set_recorder_enabled(false);
        let ha = HaConfig::default().seed(11).lease_ticks(30);
        let first = probe_winner(&ha);
        let crash_at = 40u64;
        let ha = ha.fault(ProcessFault::CrashController {
            controller: first,
            at_tick: crash_at,
        });

        let mut bus = fleet(2, 6.0);
        open_transition(&mut bus, 45.0);
        let mut set = ControllerSet::new(config(190.0), Strategy::PriorityAware, ha.clone());
        let mut gap = 0u64;
        let mut recovered_at = None;
        for t in 0..120u64 {
            let report = set.tick(t, SimTime::from_secs(t as f64), &mut bus);
            if t >= crash_at && recovered_at.is_none() {
                match report {
                    None => gap += 1,
                    Some(_) => recovered_at = Some(t),
                }
            }
            step(&mut bus, 1.0);
        }
        let recovered_at = recovered_at.expect("a standby must take over");
        assert!(
            recovered_at - crash_at <= ha.lease_ticks,
            "takeover took {} ticks, lease width is {}",
            recovered_at - crash_at,
            ha.lease_ticks
        );
        assert_eq!(gap, recovered_at - crash_at);
        assert_ne!(set.leader(), Some(first), "a different replica must lead");
        assert_eq!(set.term(), 2);
        assert_eq!(set.failovers(), 1);
    }

    #[test]
    fn frozen_leader_is_fenced_after_thaw() {
        let _g = lock();
        set_recorder_enabled(true);
        let _ = take_flight_events();
        let ha = HaConfig::default().seed(13).lease_ticks(20);
        let first = probe_winner(&ha);
        let _ = take_flight_events(); // drop the probe's election events
        let ha = ha.fault(ProcessFault::FreezeController {
            controller: first,
            from_tick: 30,
            to_tick: 70,
        });

        let mut bus = fleet(1, 6.0);
        let mut set = ControllerSet::new(config(190.0), Strategy::PriorityAware, ha);
        for t in 0..100u64 {
            set.tick(t, SimTime::from_secs(t as f64), &mut bus);
            step(&mut bus, 1.0);
        }
        set_recorder_enabled(false);
        let events = take_flight_events();

        assert_ne!(set.leader(), Some(first));
        assert_eq!(set.term(), 2);
        let lost = events
            .iter()
            .find(|e| e.kind == FlightKind::LeaderLost && e.reason == ReasonCode::HaFrozen)
            .expect("freeze must journal LeaderLost");
        assert_eq!(lost.v0, u64::from(first));
        let fenced = events
            .iter()
            .find(|e| e.kind == FlightKind::StaleLeaderFenced)
            .expect("thawed ex-leader must be fenced");
        assert_eq!(fenced.v0, 1, "stale term");
        assert_eq!(fenced.v1, 2, "current term");
        assert!(
            events
                .iter()
                .any(|e| e.kind == FlightKind::TakeoverComplete),
            "takeover must complete while the old leader is frozen"
        );
    }

    #[test]
    fn snapshots_replicate_on_cadence_and_restore_on_takeover() {
        let _g = lock();
        set_recorder_enabled(true);
        let _ = take_flight_events();
        let ha = HaConfig::default()
            .seed(17)
            .lease_ticks(15)
            .snapshot_every(10);
        let first = probe_winner(&ha);
        let _ = take_flight_events();
        let ha = ha.fault(ProcessFault::CrashController {
            controller: first,
            at_tick: 35,
        });

        let mut bus = fleet(2, 6.0);
        open_transition(&mut bus, 45.0);
        let mut set = ControllerSet::new(config(190.0), Strategy::PriorityAware, ha);
        for t in 0..80u64 {
            set.tick(t, SimTime::from_secs(t as f64), &mut bus);
            step(&mut bus, 1.0);
        }
        set_recorder_enabled(false);
        let events = take_flight_events();

        let snap = set.replicated_snapshot().expect("cadence must snapshot");
        assert_eq!(snap.term, 2, "post-takeover leader keeps replicating");
        assert!(
            events.iter().any(|e| e.kind == FlightKind::SnapshotTaken),
            "cadence snapshots must be journaled"
        );
        let restored = events
            .iter()
            .find(|e| e.kind == FlightKind::SnapshotRestored)
            .expect("takeover must restore the replicated snapshot");
        assert_eq!(restored.v0, 1, "restored snapshot carries the old term");
        assert_eq!(set.failovers(), 1);
    }

    #[test]
    fn all_replicas_down_returns_none_until_one_returns() {
        let _g = lock();
        set_recorder_enabled(false);
        let mut ha = HaConfig::default().replicas(2).lease_ticks(5);
        for id in 0..2 {
            ha = ha.fault(ProcessFault::FreezeController {
                controller: id,
                from_tick: 10,
                to_tick: 40,
            });
        }
        let mut bus = fleet(1, 6.0);
        let mut set = ControllerSet::new(config(190.0), Strategy::PriorityAware, ha);
        let mut none_ticks = 0;
        for t in 0..60u64 {
            if set
                .tick(t, SimTime::from_secs(t as f64), &mut bus)
                .is_none()
            {
                none_ticks += 1;
            }
            step(&mut bus, 1.0);
        }
        assert!(none_ticks >= 25, "whole-set outage must be visible");
        assert!(set.leader().is_some(), "leadership resumes after the thaw");
    }

    #[test]
    fn elections_are_deterministic_per_seed() {
        let _g = lock();
        set_recorder_enabled(false);
        for seed in [1u64, 2, 3, 42, 0xDEAD_BEEF] {
            let ha = HaConfig::default().seed(seed);
            assert_eq!(probe_winner(&ha), probe_winner(&ha));
        }
    }
}
