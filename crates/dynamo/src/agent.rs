//! Rack agents: the per-rack request handlers running on TOR switches.

use serde::{Deserialize, Serialize};

use recharge_battery::{BbuParams, ChargePolicy, RackBatterySystem};
use recharge_units::{Amperes, Priority, RackId, Seconds, Watts};

use crate::messages::PowerReading;

/// The agent interface controllers drive (§IV-B): pure request handling, no
/// autonomous behaviour.
pub trait RackAgent {
    /// The rack this agent serves.
    fn rack(&self) -> RackId;

    /// Reads the current telemetry.
    fn read(&self) -> PowerReading;

    /// Forces the BBU charging current (clamped to the 1–5 A hardware range
    /// by the charger).
    fn set_charge_override(&mut self, current: Amperes);

    /// Returns the BBU charger to automatic current selection.
    fn clear_charge_override(&mut self);

    /// Suspends (`true`) or resumes (`false`) battery charging entirely —
    /// the postponing extension (§IV-A future work); requires charger
    /// hardware that can hold at zero.
    fn set_charge_postponed(&mut self, postponed: bool);

    /// Caps the rack's server power to `limit` (Dynamo power capping).
    fn cap_servers(&mut self, limit: Watts);

    /// Removes any server power cap.
    fn uncap_servers(&mut self);
}

/// Builder for a [`SimRackAgent`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct SimRackAgentBuilder {
    rack: RackId,
    priority: Priority,
    params: BbuParams,
    charge_policy: ChargePolicy,
    offered_load: Watts,
}

impl SimRackAgentBuilder {
    /// Sets the battery parameters (default: production).
    #[must_use]
    pub fn params(mut self, params: BbuParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the automatic charger policy (default: the variable charger).
    #[must_use]
    pub fn charge_policy(mut self, policy: ChargePolicy) -> Self {
        self.charge_policy = policy;
        self
    }

    /// Sets the initial offered IT load (default: 6 kW).
    #[must_use]
    pub fn offered_load(mut self, load: Watts) -> Self {
        self.offered_load = load;
        self
    }

    /// Builds the agent.
    #[must_use]
    pub fn build(self) -> SimRackAgent {
        SimRackAgent {
            rack: self.rack,
            priority: self.priority,
            battery: RackBatterySystem::new(self.params, self.charge_policy),
            offered_load: self.offered_load,
            cap_limit: None,
            input_power: true,
            recharge_power: Watts::ZERO,
        }
    }
}

/// A simulated rack behind an agent: battery shelf, offered IT load, and the
/// cap/override hooks the controller drives.
///
/// This is the physical substrate used by both the control-plane tests and
/// the fleet simulator: the simulator feeds the offered load from a trace and
/// drives input-power events from open transitions.
///
/// # Examples
///
/// ```
/// use recharge_dynamo::{RackAgent, SimRackAgent};
/// use recharge_units::{Priority, RackId, Seconds, Watts};
///
/// let mut agent = SimRackAgent::builder(RackId::new(3), Priority::P2)
///     .offered_load(Watts::from_kilowatts(7.0))
///     .build();
///
/// // A 45-second open transition.
/// agent.set_input_power(false);
/// agent.step(Seconds::new(45.0));
/// agent.set_input_power(true);
/// agent.step(Seconds::new(1.0));
/// assert!(agent.read().is_charging());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimRackAgent {
    rack: RackId,
    priority: Priority,
    battery: RackBatterySystem,
    offered_load: Watts,
    cap_limit: Option<Watts>,
    input_power: bool,
    recharge_power: Watts,
}

impl SimRackAgent {
    /// Starts building an agent for `rack` with the given priority.
    #[must_use]
    pub fn builder(rack: RackId, priority: Priority) -> SimRackAgentBuilder {
        SimRackAgentBuilder {
            rack,
            priority,
            params: BbuParams::production(),
            charge_policy: ChargePolicy::Variable,
            offered_load: Watts::from_kilowatts(6.0),
        }
    }

    /// The rack's priority.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Sets the IT load the servers want to draw (from a trace).
    pub fn set_offered_load(&mut self, load: Watts) {
        self.offered_load = load.max(Watts::ZERO);
    }

    /// The IT load the servers want to draw, before capping.
    #[must_use]
    pub fn offered_load(&self) -> Watts {
        self.offered_load
    }

    /// The active server power cap, if any.
    #[must_use]
    pub fn cap_limit(&self) -> Option<Watts> {
        self.cap_limit
    }

    /// The IT load actually drawn after capping.
    #[must_use]
    pub fn effective_load(&self) -> Watts {
        match self.cap_limit {
            Some(limit) => self.offered_load.min(limit),
            None => self.offered_load,
        }
    }

    /// Applies or removes rack input power (open-transition edges).
    pub fn set_input_power(&mut self, present: bool) {
        if present == self.input_power {
            return;
        }
        self.input_power = present;
        if present {
            self.battery.input_power_restored();
        } else {
            self.battery.input_power_lost();
        }
    }

    /// Whether rack input power is present.
    #[must_use]
    pub fn has_input_power(&self) -> bool {
        self.input_power
    }

    /// The battery shelf (telemetry detail inspection).
    #[must_use]
    pub fn battery(&self) -> &RackBatterySystem {
        &self.battery
    }

    /// Advances the rack by `dt`: batteries discharge while input power is
    /// out, recharge while it is present.
    pub fn step(&mut self, dt: Seconds) {
        let report = self.battery.step(self.effective_load(), dt);
        self.recharge_power = report.recharge_power;
    }
}

impl RackAgent for SimRackAgent {
    fn rack(&self) -> RackId {
        self.rack
    }

    fn read(&self) -> PowerReading {
        PowerReading {
            rack: self.rack,
            priority: self.priority,
            input_power_present: self.input_power,
            it_load: self.effective_load(),
            recharge_power: if self.input_power {
                self.recharge_power
            } else {
                Watts::ZERO
            },
            bbu_state: self.battery.state(),
            event_dod: self.battery.event_dod(),
            dod: self.battery.dod(),
            capped_power: (self.offered_load - self.effective_load()).max(Watts::ZERO),
        }
    }

    fn set_charge_override(&mut self, current: Amperes) {
        self.battery.set_override(current);
    }

    fn clear_charge_override(&mut self) {
        self.battery.clear_override();
    }

    fn set_charge_postponed(&mut self, postponed: bool) {
        self.battery.set_postponed(postponed);
    }

    fn cap_servers(&mut self, limit: Watts) {
        self.cap_limit = Some(limit.max(Watts::ZERO));
    }

    fn uncap_servers(&mut self) {
        self.cap_limit = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_battery::BbuState;

    fn agent() -> SimRackAgent {
        SimRackAgent::builder(RackId::new(1), Priority::P1)
            .offered_load(Watts::from_kilowatts(6.0))
            .build()
    }

    #[test]
    fn reading_reflects_steady_state() {
        let a = agent();
        let r = a.read();
        assert_eq!(r.rack, RackId::new(1));
        assert_eq!(r.priority, Priority::P1);
        assert!(r.input_power_present);
        assert_eq!(r.it_load, Watts::from_kilowatts(6.0));
        assert_eq!(r.recharge_power, Watts::ZERO);
        assert_eq!(r.bbu_state, BbuState::FullyCharged);
        assert_eq!(r.input_draw(), Watts::from_kilowatts(6.0));
    }

    #[test]
    fn open_transition_cycle() {
        let mut a = agent();
        a.set_input_power(false);
        a.step(Seconds::new(60.0));
        let riding = a.read();
        assert!(!riding.input_power_present);
        assert_eq!(riding.input_draw(), Watts::ZERO);
        assert_eq!(riding.bbu_state, BbuState::Discharging);

        a.set_input_power(true);
        a.step(Seconds::new(1.0));
        let charging = a.read();
        assert!(charging.is_charging());
        assert!(charging.recharge_power > Watts::ZERO);
        assert!(charging.event_dod.value() > 0.15);
        assert_eq!(
            charging.input_draw(),
            charging.it_load + charging.recharge_power
        );
    }

    #[test]
    fn override_and_clear() {
        let mut a = agent();
        a.set_input_power(false);
        a.step(Seconds::new(60.0));
        a.set_input_power(true);
        a.step(Seconds::new(1.0));
        let auto_power = a.read().recharge_power;

        a.set_charge_override(Amperes::MIN_CHARGE);
        a.step(Seconds::new(1.0));
        let throttled = a.read().recharge_power;
        assert!(throttled < auto_power);

        a.clear_charge_override();
        a.step(Seconds::new(1.0));
        assert!(a.read().recharge_power > throttled);
    }

    #[test]
    fn capping_reduces_effective_load() {
        let mut a = agent();
        a.cap_servers(Watts::from_kilowatts(4.0));
        let r = a.read();
        assert_eq!(r.it_load, Watts::from_kilowatts(4.0));
        assert_eq!(r.capped_power, Watts::from_kilowatts(2.0));
        a.uncap_servers();
        assert_eq!(a.read().capped_power, Watts::ZERO);
    }

    #[test]
    fn cap_above_offered_load_is_harmless() {
        let mut a = agent();
        a.cap_servers(Watts::from_kilowatts(10.0));
        assert_eq!(a.read().it_load, Watts::from_kilowatts(6.0));
        assert_eq!(a.read().capped_power, Watts::ZERO);
    }

    #[test]
    fn redundant_power_edges_are_ignored() {
        let mut a = agent();
        a.set_input_power(true); // already on
        assert_eq!(a.battery().state(), BbuState::FullyCharged);
        a.set_input_power(false);
        a.set_input_power(false);
        assert_eq!(a.battery().state(), BbuState::Discharging);
    }
}
