//! Telemetry records exchanged between agents and controllers.

use serde::{Deserialize, Serialize};

use recharge_battery::BbuState;
use recharge_units::{Dod, Priority, RackId, Watts};

/// One telemetry sample from a rack agent: everything the controller needs to
/// coordinate charging (§IV-B, "Dynamo agent" / "Dynamo controller").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReading {
    /// The reporting rack.
    pub rack: RackId,
    /// The rack's service priority (controllers "keep track of the priority
    /// of racks under the circuit breaker").
    pub priority: Priority,
    /// Whether the rack currently has input power.
    pub input_power_present: bool,
    /// IT load the rack is drawing (after any server capping).
    pub it_load: Watts,
    /// Wall power currently spent recharging the rack's BBUs.
    pub recharge_power: Watts,
    /// State of the rack's BBUs.
    pub bbu_state: BbuState,
    /// Battery depth of discharge latched when the current charge sequence
    /// began (the controller's SLA-current input).
    pub event_dod: Dod,
    /// Instantaneous battery depth of discharge — used by the controller to
    /// pre-plan overrides while the rack is still riding the open transition.
    pub dod: Dod,
    /// Power currently shed by server capping on this rack.
    pub capped_power: Watts,
}

impl PowerReading {
    /// Power this rack presents to the upstream breaker: IT load plus
    /// recharge power while input power is present, nothing while riding on
    /// batteries.
    #[must_use]
    pub fn input_draw(&self) -> Watts {
        if self.input_power_present {
            self.it_load + self.recharge_power
        } else {
            Watts::ZERO
        }
    }

    /// Whether the BBUs are in their charging state.
    #[must_use]
    pub fn is_charging(&self) -> bool {
        self.bbu_state == BbuState::Charging
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(present: bool, it: f64, recharge: f64) -> PowerReading {
        PowerReading {
            rack: RackId::new(0),
            priority: Priority::P2,
            input_power_present: present,
            it_load: Watts::new(it),
            recharge_power: Watts::new(recharge),
            bbu_state: BbuState::Charging,
            event_dod: Dod::new(0.3),
            dod: Dod::new(0.3),
            capped_power: Watts::ZERO,
        }
    }

    #[test]
    fn input_draw_includes_recharge_when_powered() {
        assert_eq!(
            reading(true, 6_000.0, 700.0).input_draw(),
            Watts::new(6_700.0)
        );
    }

    #[test]
    fn input_draw_is_zero_on_battery() {
        assert_eq!(reading(false, 6_000.0, 0.0).input_draw(), Watts::ZERO);
    }

    #[test]
    fn charging_flag_tracks_bbu_state() {
        let mut r = reading(true, 1.0, 1.0);
        assert!(r.is_charging());
        r.bbu_state = BbuState::FullyCharged;
        assert!(!r.is_charging());
    }
}
