//! The controller → agent request path.

use std::collections::HashSet;

use recharge_units::{Amperes, RackId, Watts};

use crate::agent::RackAgent;
use crate::messages::PowerReading;

/// How a controller reaches the agents under its breaker.
///
/// The production system is an RPC mesh; the simulator uses the in-memory
/// implementation. Both present the same read/override/cap surface, so the
/// [`Controller`](crate::Controller) is transport-agnostic.
pub trait AgentBus {
    /// The racks reachable on this bus, in stable order.
    fn racks(&self) -> Vec<RackId>;

    /// Reads a rack's telemetry, or `None` if the agent is unreachable — a
    /// real possibility in production that controllers must tolerate.
    fn read(&self, rack: RackId) -> Option<PowerReading>;

    /// Sends a charging-current override.
    fn set_charge_override(&mut self, rack: RackId, current: Amperes);

    /// Clears a charging-current override.
    fn clear_charge_override(&mut self, rack: RackId);

    /// Suspends or resumes a rack's battery charging (postponing extension).
    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool);

    /// Caps a rack's server power.
    fn cap_servers(&mut self, rack: RackId, limit: Watts);

    /// Removes a rack's server power cap.
    fn uncap_servers(&mut self, rack: RackId);
}

/// A direct in-process bus over a vector of agents.
pub struct InMemoryBus<A> {
    agents: Vec<A>,
    /// Racks that stop answering reads (failure injection). A set, not a
    /// list: `read` consults it on every controller tick for every rack, so
    /// membership must not cost O(disconnected).
    unreachable: HashSet<RackId>,
}

impl<A: RackAgent> InMemoryBus<A> {
    /// Creates a bus over the given agents.
    #[must_use]
    pub fn new(agents: Vec<A>) -> Self {
        InMemoryBus {
            agents,
            unreachable: HashSet::new(),
        }
    }

    /// Marks a rack's agent as unreachable (reads return `None`); used for
    /// failure-injection tests. Idempotent.
    pub fn disconnect(&mut self, rack: RackId) {
        self.unreachable.insert(rack);
    }

    /// Restores a previously disconnected agent. Idempotent.
    pub fn reconnect(&mut self, rack: RackId) {
        self.unreachable.remove(&rack);
    }

    /// Iterates over the agents.
    pub fn agents(&self) -> impl Iterator<Item = &A> {
        self.agents.iter()
    }

    /// Iterates mutably over the agents (the simulator steps them directly).
    pub fn agents_mut(&mut self) -> impl Iterator<Item = &mut A> {
        self.agents.iter_mut()
    }

    /// The agent for a rack, if present.
    #[must_use]
    pub fn agent(&self, rack: RackId) -> Option<&A> {
        // Fast path: fleets built from dense rack ids index directly.
        if let Some(agent) = self.agents.get(rack.index() as usize) {
            if agent.rack() == rack {
                return Some(agent);
            }
        }
        self.agents.iter().find(|a| a.rack() == rack)
    }

    /// Mutable access to the agent for a rack, if present.
    #[must_use]
    pub fn agent_mut(&mut self, rack: RackId) -> Option<&mut A> {
        let direct = self
            .agents
            .get(rack.index() as usize)
            .is_some_and(|a| a.rack() == rack);
        if direct {
            return self.agents.get_mut(rack.index() as usize);
        }
        self.agents.iter_mut().find(|a| a.rack() == rack)
    }
}

impl<A: RackAgent> AgentBus for InMemoryBus<A> {
    fn racks(&self) -> Vec<RackId> {
        self.agents.iter().map(RackAgent::rack).collect()
    }

    fn read(&self, rack: RackId) -> Option<PowerReading> {
        if self.unreachable.contains(&rack) {
            return None;
        }
        self.agent(rack).map(RackAgent::read)
    }

    fn set_charge_override(&mut self, rack: RackId, current: Amperes) {
        if let Some(agent) = self.agent_mut(rack) {
            agent.set_charge_override(current);
        }
    }

    fn clear_charge_override(&mut self, rack: RackId) {
        if let Some(agent) = self.agent_mut(rack) {
            agent.clear_charge_override();
        }
    }

    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool) {
        if let Some(agent) = self.agent_mut(rack) {
            agent.set_charge_postponed(postponed);
        }
    }

    fn cap_servers(&mut self, rack: RackId, limit: Watts) {
        if let Some(agent) = self.agent_mut(rack) {
            agent.cap_servers(limit);
        }
    }

    fn uncap_servers(&mut self, rack: RackId) {
        if let Some(agent) = self.agent_mut(rack) {
            agent.uncap_servers();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::SimRackAgent;
    use recharge_units::Priority;

    fn bus() -> InMemoryBus<SimRackAgent> {
        InMemoryBus::new(vec![
            SimRackAgent::builder(RackId::new(0), Priority::P1).build(),
            SimRackAgent::builder(RackId::new(1), Priority::P3).build(),
        ])
    }

    #[test]
    fn reads_and_commands_route_by_rack() {
        let mut b = bus();
        assert_eq!(b.racks(), vec![RackId::new(0), RackId::new(1)]);
        assert!(b.read(RackId::new(0)).is_some());
        assert!(b.read(RackId::new(9)).is_none());
        b.cap_servers(RackId::new(1), Watts::from_kilowatts(1.0));
        assert_eq!(
            b.read(RackId::new(1)).unwrap().it_load,
            Watts::from_kilowatts(1.0)
        );
        assert_eq!(b.read(RackId::new(0)).unwrap().capped_power, Watts::ZERO);
        b.uncap_servers(RackId::new(1));
        assert_eq!(b.read(RackId::new(1)).unwrap().capped_power, Watts::ZERO);
    }

    #[test]
    fn disconnect_makes_reads_fail_but_not_others() {
        let mut b = bus();
        b.disconnect(RackId::new(0));
        b.disconnect(RackId::new(0));
        assert!(b.read(RackId::new(0)).is_none());
        assert!(b.read(RackId::new(1)).is_some());
        b.reconnect(RackId::new(0));
        assert!(b.read(RackId::new(0)).is_some());
    }

    #[test]
    fn commands_to_unknown_racks_are_ignored() {
        let mut b = bus();
        b.set_charge_override(RackId::new(42), Amperes::new(2.0));
        b.clear_charge_override(RackId::new(42));
        b.cap_servers(RackId::new(42), Watts::ZERO);
        b.uncap_servers(RackId::new(42));
    }
}
