//! Sharded event-driven stepping: per-shard schedulers, a merged wake queue.
//!
//! [`EventDrivenBackend`](crate::EventDrivenBackend) (DESIGN.md §16) skips
//! the sub-steps that provably do nothing, but walks every shard's active
//! list on one thread. [`EventShardedBackend`] keeps the exact same skip
//! authority and sleep/wake rules — it reuses the same [`Lane`] — and fans
//! the shards out to persistent worker threads with the
//! frame-plus-countdown-latch batch protocol of
//! [`ThreadedFleet::step_batch`](crate::ThreadedFleet::step_batch), so the
//! quiescence win and multi-core scaling compose.
//!
//! # The merged wake queue
//!
//! Wake sources are global (power edges affect every rack; controller
//! commands target one), but sleep state is per shard. The coordinator owns
//! one merged [`EventScheduler`] that every wake source feeds:
//!
//! * **Power edges** found in the batch's schedule are broadcast to every
//!   shard's local scheduler at the same integer sub-step.
//! * **Bus commands** route a `Wake` to the owning shard only (the command
//!   itself is applied to the coordinator-resident arrays immediately, just
//!   like the single-threaded backend).
//!
//! Draining the merged queue in `(time, seq)` order and dispatching each
//! event to its target shard hands every shard the *projection* of one
//! global total order — so each shard's local FIFO tie-break matches the
//! single-threaded scheduler's, and cross-shard ordering is immaterial
//! because no event touches another shard's state (rules 4–5 of the
//! equivalence argument in `event.rs`).
//!
//! # Ownership ping-pong, not caches
//!
//! Between batches the coordinator owns every [`ShardState`] (arrays, lane,
//! local scheduler), so bus reads and commands see exactly what
//! [`SoaBackend`] would show — no snapshot staleness to reason about.
//! `step_schedule` moves each state to its worker inside a `Step` request
//! together with an `Arc<EventFrame>`; the worker steps its shard, sends the
//! state back, drops its frame handle, and arrives at the shared
//! [`CountdownLatch`]. After the barrier the coordinator reclaims the
//! frame's buffers for the next batch (allocation-free steady state) and
//! journals the workers' recorded sleep→wake transitions as
//! `FlightKind::FastForward` events from its own thread, which keeps the
//! flight-recorder content identical to the single-threaded backend's.
//!
//! Frames carry offered loads only for the slots that can possibly execute
//! (`active ∪ woken`, or the whole shard when a power edge lands in the
//! batch), plus one final-sub-step load per slot for the sleeping-replay —
//! the same load-evaluation economy as the single-threaded event backend,
//! which is most of the win when the trace closure is expensive.
//!
//! `sim.rack_substeps`, `sim.ticks_skipped`, and `sim.offered_replays` are
//! summed over shards by the coordinator and stay exactly equal to the
//! single-threaded event backend's. `sim.events_fired` counts per-shard
//! deliveries, so a broadcast power edge adds one count *per shard* here
//! (the merged queue genuinely fires it once per shard).

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use recharge_telemetry::{flight, tcounter, tspan, FlightKind, ReasonCode, NO_BUCKET};
use recharge_units::{Amperes, RackId, Seconds, Watts};

use crate::agent::SimRackAgent;
use crate::backend::FleetBackend;
use crate::bus::AgentBus;
use crate::event::{Lane, EDGE_HEADROOM};
use crate::messages::PowerReading;
use crate::scheduler::EventScheduler;
use crate::soa::{SoaBackend, SoaShard};
use crate::threaded::CountdownLatch;

/// What the coordinator's merged wake queue carries.
enum FleetEvent {
    /// Input power flips to the carried value at the event's sub-step.
    PowerEdge(bool),
    /// A bus command touched a sleeping rack; it must step again.
    Wake { shard: usize, slot: usize },
}

/// A shard-local event: the projection of [`FleetEvent`] onto one shard.
enum ShardEvent {
    /// Input power flips to the carried value at the event's sub-step.
    PowerEdge(bool),
    /// The slot must step again.
    Wake { slot: usize },
}

/// A sleep→wake transition recorded by a worker during a batch. The
/// coordinator journals these after the barrier so every flight-recorder
/// write happens on the simulation thread (same ambient clock, same content
/// as the single-threaded backend).
struct WakeRecord {
    slot: usize,
    skipped: u64,
    now: u64,
}

/// One shard's complete stepping state. Ownership ping-pongs between the
/// coordinator (between batches: commands, readings) and its worker thread
/// (during a batch: stepping).
struct ShardState {
    shard: SoaShard,
    lane: Lane,
    scheduler: EventScheduler<ShardEvent>,
    /// The shard's view of fleet-wide input power, tracked via edge events.
    power: bool,
    /// Rack sub-steps executed by this shard since construction.
    executed_total: u64,
    /// Rack sub-steps executed during the last batch.
    executed_batch: u64,
    /// Events popped from the local scheduler during the last batch.
    fired_batch: u64,
    /// Sleeping-slot offered replays written during the last batch.
    replays_batch: u64,
    /// Sleep→wake transitions recorded during the last batch.
    wakes: Vec<WakeRecord>,
}

impl ShardState {
    /// Steps the shard through one batch frame: pop due local events, step
    /// the active list, retire quiescent slots, replay the final offered
    /// load into sleepers — the same loop as the single-threaded backend,
    /// restricted to this shard.
    fn run_batch(&mut self, frame: &EventFrame, me: usize) {
        let sf = &frame.shards[me];
        let width = sf.awake.len();
        let mut executed: u64 = 0;
        let mut fired: u64 = 0;
        let ShardState {
            shard,
            lane,
            scheduler,
            power,
            wakes,
            ..
        } = self;
        for (i, &scheduled_power) in frame.input_power.iter().enumerate() {
            let now = frame.base + i as u64;
            while let Some((_, event)) = scheduler.pop_due(now) {
                fired += 1;
                match event {
                    ShardEvent::PowerEdge(p) => {
                        *power = p;
                        lane.wake_all(now, |slot, skipped| {
                            wakes.push(WakeRecord { slot, skipped, now });
                        });
                    }
                    ShardEvent::Wake { slot } => {
                        if let Some(skipped) = lane.wake_one(slot, now) {
                            wakes.push(WakeRecord { slot, skipped, now });
                        }
                    }
                }
            }
            debug_assert_eq!(
                *power, scheduled_power,
                "edge events must track the schedule"
            );
            let row = &sf.loads[i * width..(i + 1) * width];
            executed += lane.step_active(shard, now, *power, frame.dt, |slot, _| {
                let s32 = u32::try_from(slot).expect("slot fits u32");
                let col = sf
                    .awake
                    .binary_search(&s32)
                    .expect("active slot must be in the frame's awake set");
                row[col]
            });
        }
        let replays = lane.replay_offered(shard, |slot, _| sf.final_loads[slot]);
        self.executed_batch = executed;
        self.executed_total += executed;
        self.fired_batch = fired;
        self.replays_batch = replays;
    }
}

/// One batch of sub-steps, shared read-only with every worker and reclaimed
/// by the coordinator after the barrier (buffers reused across batches).
struct EventFrame {
    /// Duration of each sub-step.
    dt: Seconds,
    /// Global sub-step index of the batch's first sub-step.
    base: u64,
    /// Fleet-wide input-power state per sub-step.
    input_power: Vec<bool>,
    /// Per-shard load material.
    shards: Vec<ShardFrame>,
}

impl Default for EventFrame {
    fn default() -> Self {
        EventFrame {
            dt: Seconds::ZERO,
            base: 0,
            input_power: Vec::new(),
            shards: Vec::new(),
        }
    }
}

/// One shard's slice of a frame.
#[derive(Default)]
struct ShardFrame {
    /// Sorted slots that can execute this batch: `active ∪ woken`, or every
    /// slot when a power edge lands in the batch (edges wake the world).
    awake: Vec<u32>,
    /// Offered loads, sub-step-major over the `awake` columns
    /// (`loads[substep * awake.len() + column]`).
    loads: Vec<Watts>,
    /// The schedule's final offered load per slot, for the sleeping replay.
    final_loads: Vec<Watts>,
}

impl ShardFrame {
    fn clear(&mut self) {
        self.awake.clear();
        self.loads.clear();
        self.final_loads.clear();
    }
}

/// A request processed by a shard worker.
enum Request {
    /// Step the carried state through the frame, send it back, arrive.
    Step {
        state: Box<ShardState>,
        frame: Arc<EventFrame>,
    },
    Shutdown,
}

struct Worker {
    tx: Sender<Request>,
    join: Option<JoinHandle<()>>,
}

fn worker_main(
    me: usize,
    rx: &Receiver<Request>,
    done: &Sender<(usize, Box<ShardState>)>,
    latch: &CountdownLatch,
) {
    while let Ok(request) = rx.recv() {
        match request {
            Request::Step { mut state, frame } => {
                {
                    let _span = tspan!("shard.event_step", "fleet");
                    state.run_batch(&frame, me);
                }
                let _ = done.send((me, state));
                // Drop the frame handle *before* arriving so the
                // coordinator's buffer reclaim never contends.
                drop(frame);
                latch.arrive();
            }
            Request::Shutdown => break,
        }
    }
}

/// The sharded event-driven backend: one [`Lane`] + scheduler per SoA shard
/// on persistent worker threads, fed by a coordinator-side merged wake
/// queue.
///
/// Readings, bus behavior, and downstream `RunMetrics` are bit-identical to
/// every dense backend *and* to the single-threaded
/// [`EventDrivenBackend`](crate::EventDrivenBackend); only who executes the
/// sub-steps changes.
///
/// # Examples
///
/// ```
/// use recharge_dynamo::{EventShardedBackend, FleetBackend, SimRackAgent};
/// use recharge_units::{Priority, RackId, Seconds, Watts};
///
/// let agents = (0..8)
///     .map(|i| SimRackAgent::builder(RackId::new(i), Priority::P2).build())
///     .collect();
/// let mut fleet = EventShardedBackend::new(agents, 4);
/// // A 30-second open transition, then a long quiet stretch of wall power.
/// let schedule = [&[false][..], &[true; 600][..]].concat();
/// fleet.step_schedule(Seconds::new(30.0), &schedule, &|_, _| {
///     Watts::from_kilowatts(6.0)
/// });
/// assert!(fleet.substeps_skipped() > 0);
/// ```
pub struct EventShardedBackend {
    workers: Vec<Worker>,
    /// Shard states; `Some` whenever the coordinator owns them (always,
    /// outside `step_schedule`'s fan-out window).
    states: Vec<Option<Box<ShardState>>>,
    done_rx: Receiver<(usize, Box<ShardState>)>,
    latch: Arc<CountdownLatch>,
    /// The merged wake queue: every power edge and command wake flows
    /// through here in one global `(time, seq)` order before being
    /// dispatched to the owning shard's local scheduler.
    queue: EventScheduler<FleetEvent>,
    /// Fleet order → (shard, slot), replayed by readings and rack listings.
    order: Vec<(usize, usize)>,
    /// rack → (shard, slot); commands and reads route through here.
    index: HashMap<RackId, (usize, usize)>,
    /// Fleet-wide input power as of the last scheduled edge.
    power: bool,
    /// Global sub-step counter across schedules.
    clock: u64,
    /// Rack sub-steps actually executed, summed over shards.
    executed: u64,
    /// End-of-batch offered-load replay writes, summed over shards.
    replayed: u64,
    /// Fleet size, cached for the skip arithmetic.
    total_racks: u64,
    /// The previous frame's buffers, reclaimed after the barrier for reuse.
    spare: Option<EventFrame>,
    /// Per-shard scratch: slots woken by command this batch (sorted,
    /// deduplicated), for the awake-set computation.
    woken_scratch: Vec<Vec<u32>>,
}

impl EventShardedBackend {
    /// Creates a sharded event-driven backend over the given agents,
    /// spawning one worker thread per SoA shard. `shards` clamps to
    /// `[1, agents.len()]`; a heterogeneous fleet may produce more shards
    /// than requested (at least one per homogeneous group), exactly like
    /// [`SoaBackend::sharded`].
    #[must_use]
    pub fn new(agents: Vec<SimRackAgent>, shards: usize) -> Self {
        let (soa_shards, order, index) = SoaBackend::sharded(agents, shards).into_parts();
        let total_racks: u64 = soa_shards.iter().map(|s| s.len() as u64).sum();
        let latch = Arc::new(CountdownLatch::new());
        let (done_tx, done_rx) = unbounded::<(usize, Box<ShardState>)>();

        let mut workers = Vec::with_capacity(soa_shards.len());
        let mut states = Vec::with_capacity(soa_shards.len());
        let mut woken_scratch = Vec::with_capacity(soa_shards.len());
        for (me, shard) in soa_shards.into_iter().enumerate() {
            let len = shard.len();
            let state = Box::new(ShardState {
                lane: Lane::new(len),
                scheduler: EventScheduler::with_capacity(len + EDGE_HEADROOM),
                shard,
                power: true,
                executed_total: 0,
                executed_batch: 0,
                fired_batch: 0,
                replays_batch: 0,
                wakes: Vec::new(),
            });
            let (tx, rx) = unbounded::<Request>();
            let done = done_tx.clone();
            let worker_latch = Arc::clone(&latch);
            let join = std::thread::spawn(move || worker_main(me, &rx, &done, &worker_latch));
            workers.push(Worker {
                tx,
                join: Some(join),
            });
            states.push(Some(state));
            woken_scratch.push(Vec::new());
        }

        let queue_capacity =
            usize::try_from(total_racks).expect("fleet fits usize") + EDGE_HEADROOM;
        EventShardedBackend {
            workers,
            states,
            done_rx,
            latch,
            queue: EventScheduler::with_capacity(queue_capacity),
            order,
            index,
            power: true,
            clock: 0,
            executed: 0,
            replayed: 0,
            total_racks,
            spare: None,
            woken_scratch,
        }
    }

    /// Rack sub-steps actually executed since construction, over all shards.
    #[must_use]
    pub fn substeps_executed(&self) -> u64 {
        self.executed
    }

    /// Rack sub-steps fast-forwarded (what a dense backend would have run
    /// minus what this one did).
    #[must_use]
    pub fn substeps_skipped(&self) -> u64 {
        self.clock * self.total_racks - self.executed
    }

    /// End-of-batch offered-load replay writes since construction, summed
    /// over shards: exactly one write per sleeping rack per schedule.
    #[must_use]
    pub fn offered_replays(&self) -> u64 {
        self.replayed
    }

    /// Per-shard `(executed, skipped)` sub-step accounting. Each pair
    /// satisfies `executed + skipped == substeps × shard_len` exactly.
    #[must_use]
    pub fn per_shard_substeps(&self) -> Vec<(u64, u64)> {
        self.states
            .iter()
            .map(|state| {
                let state = state.as_ref().expect("states home between batches");
                let dense = self.clock * state.shard.len() as u64;
                (state.executed_total, dense - state.executed_total)
            })
            .collect()
    }

    /// Number of shards (and worker threads) the fleet is split into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.states.len()
    }

    fn state(&self, shard: usize) -> &ShardState {
        self.states[shard]
            .as_deref()
            .expect("states home between batches")
    }

    /// Applies a command to the owning shard's arrays and, if the target is
    /// sleeping, schedules its wake through the merged queue — the same
    /// "apply now, step densely next sub-step" contract as the
    /// single-threaded backend.
    fn command(&mut self, rack: RackId, apply: impl FnOnce(&mut SoaShard, usize)) {
        if let Some(&(shard, slot)) = self.index.get(&rack) {
            let state = self.states[shard]
                .as_deref_mut()
                .expect("states home between batches");
            apply(&mut state.shard, slot);
            if state.lane.is_sleeping(slot) {
                self.queue
                    .schedule(self.clock, FleetEvent::Wake { shard, slot });
            }
        }
    }
}

impl FleetBackend for EventShardedBackend {
    fn name(&self) -> &'static str {
        "event-sharded"
    }

    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    ) {
        let _span = tspan!("fleet.event_sharded_step", "fleet");
        let n = input_power.len();
        if n == 0 || self.workers.is_empty() {
            return;
        }

        // Power edges enter the merged queue after any pending command
        // wakes, so within a sub-step wakes keep their lower sequence
        // numbers — the same relative order the single-threaded scheduler
        // produces.
        let mut prev = self.power;
        let mut has_edge = false;
        for (i, &p) in input_power.iter().enumerate() {
            if p != prev {
                self.queue
                    .schedule(self.clock + i as u64, FleetEvent::PowerEdge(p));
                has_edge = true;
                prev = p;
            }
        }
        self.power = prev;

        // Drain the merged queue in global (time, seq) order, dispatching
        // each event to its target shard's local scheduler: every shard
        // receives its projection of one total order.
        for woken in &mut self.woken_scratch {
            woken.clear();
        }
        while let Some((at, event)) = self.queue.pop_next() {
            match event {
                FleetEvent::PowerEdge(p) => {
                    for state in &mut self.states {
                        let state = state.as_deref_mut().expect("states home between batches");
                        state.scheduler.schedule(at, ShardEvent::PowerEdge(p));
                    }
                }
                FleetEvent::Wake { shard, slot } => {
                    let state = self.states[shard]
                        .as_deref_mut()
                        .expect("states home between batches");
                    state.scheduler.schedule(at, ShardEvent::Wake { slot });
                    let s32 = u32::try_from(slot).expect("slot fits u32");
                    let woken = &mut self.woken_scratch[shard];
                    if let Err(pos) = woken.binary_search(&s32) {
                        woken.insert(pos, s32);
                    }
                }
            }
        }

        // Materialize the frame: `load_of` is not Sync, so the coordinator
        // evaluates loads — but only for the slots that can execute
        // (active ∪ woken, or everyone once an edge lands), plus the final
        // sub-step for the sleeping replay. Same evaluation economy as the
        // single-threaded event backend.
        let mut frame = self.spare.take().unwrap_or_default();
        frame.dt = dt;
        frame.base = self.clock;
        frame.input_power.clear();
        frame.input_power.extend_from_slice(input_power);
        if frame.shards.len() != self.states.len() {
            frame
                .shards
                .resize_with(self.states.len(), ShardFrame::default);
        }
        for (s, state) in self.states.iter().enumerate() {
            let state = state.as_deref().expect("states home between batches");
            let sf = &mut frame.shards[s];
            sf.clear();
            let len = state.shard.len();
            if has_edge {
                sf.awake
                    .extend(0..u32::try_from(len).expect("shard fits u32"));
            } else {
                sf.awake.extend_from_slice(state.lane.active_slots());
                for &w in &self.woken_scratch[s] {
                    if let Err(pos) = sf.awake.binary_search(&w) {
                        sf.awake.insert(pos, w);
                    }
                }
            }
            sf.loads.reserve(sf.awake.len() * n);
            for i in 0..n {
                for &slot in &sf.awake {
                    sf.loads
                        .push(load_of(state.shard.rack_at(slot as usize), i));
                }
            }
            sf.final_loads.reserve(len);
            for slot in 0..len {
                sf.final_loads
                    .push(load_of(state.shard.rack_at(slot), n - 1));
            }
        }
        let frame = Arc::new(frame);

        // Fan out: each worker gets its state and a frame handle, steps,
        // sends the state back, and arrives at the latch.
        for (s, worker) in self.workers.iter().enumerate() {
            let state = self.states[s].take().expect("states home between batches");
            worker
                .tx
                .send(Request::Step {
                    state,
                    frame: Arc::clone(&frame),
                })
                .expect("worker thread alive");
        }
        {
            let _wait = tspan!("fleet.barrier_wait", "fleet");
            self.latch.wait(self.workers.len());
        }
        // All workers dropped their handles before arriving, so the reclaim
        // succeeds in the steady state; `.ok()` tolerates a stressed drop.
        self.spare = Arc::try_unwrap(frame).ok();
        for _ in 0..self.workers.len() {
            let (s, state) = self.done_rx.recv().expect("worker returns its state");
            self.states[s] = Some(state);
        }

        // Post-batch accounting and journaling, on the coordinator thread:
        // counters sum to exactly the single-threaded backend's values, and
        // the flight-recorder writes carry the same ambient clock.
        self.clock += n as u64;
        let mut executed_now: u64 = 0;
        let mut fired: u64 = 0;
        let mut replays: u64 = 0;
        for state in &mut self.states {
            let state = state.as_deref_mut().expect("states home between batches");
            executed_now += state.executed_batch;
            fired += state.fired_batch;
            replays += state.replays_batch;
            let ShardState { shard, wakes, .. } = state;
            for record in wakes.drain(..) {
                flight(
                    FlightKind::FastForward,
                    ReasonCode::Observed,
                    shard.rack_at(record.slot).index(),
                    shard.priority_at(record.slot).rank(),
                    NO_BUCKET,
                    record.skipped,
                    record.now,
                );
            }
        }
        self.executed += executed_now;
        self.replayed += replays;
        tcounter!("sim.rack_substeps").add(executed_now);
        tcounter!("sim.ticks_skipped").add(n as u64 * self.total_racks - executed_now);
        tcounter!("sim.events_fired").add(fired);
        tcounter!("sim.offered_replays").add(replays);
    }

    fn readings(&self) -> Vec<PowerReading> {
        self.order
            .iter()
            .map(|&(s, slot)| self.state(s).shard.read(slot))
            .collect()
    }

    fn bus_mut(&mut self) -> &mut dyn AgentBus {
        self
    }
}

impl AgentBus for EventShardedBackend {
    fn racks(&self) -> Vec<RackId> {
        self.order
            .iter()
            .map(|&(s, slot)| self.state(s).shard.rack_at(slot))
            .collect()
    }

    fn read(&self, rack: RackId) -> Option<PowerReading> {
        let &(s, slot) = self.index.get(&rack)?;
        Some(self.state(s).shard.read(slot))
    }

    fn set_charge_override(&mut self, rack: RackId, current: Amperes) {
        self.command(rack, |shard, slot| shard.set_override_slot(slot, current));
    }

    fn clear_charge_override(&mut self, rack: RackId) {
        self.command(rack, SoaShard::clear_override_slot);
    }

    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool) {
        self.command(rack, |shard, slot| {
            shard.set_postponed_slot(slot, postponed);
        });
    }

    fn cap_servers(&mut self, rack: RackId, limit: Watts) {
        self.command(rack, |shard, slot| shard.cap_slot(slot, limit));
    }

    fn uncap_servers(&mut self, rack: RackId) {
        self.command(rack, SoaShard::uncap_slot);
    }
}

impl Drop for EventShardedBackend {
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.tx.send(Request::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FleetBackendKind, SerialBackend};
    use crate::event::EventDrivenBackend;
    use recharge_units::Priority;

    fn agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect()
    }

    /// The event-backend lockstep harness, three-way: serial reference,
    /// single-threaded event, sharded event — bit-identical readings at
    /// every boundary, commands landing on different shards mid-run.
    fn assert_lockstep(fleet: impl Fn() -> Vec<SimRackAgent>, shards: usize, rounds: usize) {
        let mut reference = SerialBackend::new(fleet());
        let mut event = EventDrivenBackend::new(fleet());
        let mut sharded = EventShardedBackend::new(fleet(), shards);
        for round in 0..rounds {
            for backend in [
                &mut reference as &mut dyn FleetBackend,
                &mut event,
                &mut sharded,
            ] {
                let bus = backend.bus_mut();
                match round % 5 {
                    0 => bus.set_charge_override(RackId::new(2), Amperes::new(1.5)),
                    1 => {
                        bus.clear_charge_override(RackId::new(2));
                        bus.set_charge_postponed(RackId::new(3), true);
                    }
                    2 => {
                        bus.set_charge_postponed(RackId::new(3), false);
                        bus.cap_servers(RackId::new(4), Watts::from_kilowatts(4.0));
                    }
                    3 => bus.uncap_servers(RackId::new(4)),
                    _ => bus.set_charge_override(RackId::new(6), Amperes::new(9.0)),
                }
            }
            let schedule: Vec<bool> = (0..6).map(|i| (i + round) % 7 != 3).collect();
            let load = |rack: RackId, i: usize| {
                Watts::from_kilowatts(5.0 + 0.3 * f64::from(rack.index()) + 0.1 * i as f64)
            };
            reference.step_schedule(Seconds::new(1.0), &schedule, &load);
            event.step_schedule(Seconds::new(1.0), &schedule, &load);
            sharded.step_schedule(Seconds::new(1.0), &schedule, &load);
            assert_eq!(
                reference.readings(),
                FleetBackend::readings(&sharded),
                "round {round} diverged from serial"
            );
            assert_eq!(
                FleetBackend::readings(&event),
                FleetBackend::readings(&sharded),
                "round {round} diverged from single-threaded event"
            );
            for rack in reference.bus_mut().racks() {
                assert_eq!(
                    reference.bus_mut().read(rack),
                    AgentBus::read(&sharded, rack),
                    "round {round} rack {rack:?}"
                );
            }
            assert_eq!(
                event.substeps_executed(),
                sharded.substeps_executed(),
                "round {round}: same skip decisions, same executed count"
            );
        }
    }

    #[test]
    fn sharded_event_backend_matches_bit_for_bit() {
        for shards in [1, 2, 4] {
            assert_lockstep(|| agents(7), shards, 12);
        }
    }

    #[test]
    fn per_shard_accounting_is_exact() {
        let mut fleet = EventShardedBackend::new(agents(9), 3);
        // One outage sub-step, then a long quiet charge-and-settle stretch.
        let schedule = [&[false][..], &[true; 2_000][..]].concat();
        fleet.step_schedule(Seconds::new(30.0), &schedule, &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        assert!(fleet.substeps_skipped() > 0, "settled racks fast-forward");
        let per_shard = fleet.per_shard_substeps();
        assert_eq!(per_shard.len(), fleet.shard_count());
        let summed: u64 = per_shard.iter().map(|&(e, _)| e).sum();
        assert_eq!(summed, fleet.substeps_executed());
        for (s, &(executed, skipped)) in per_shard.iter().enumerate() {
            assert_eq!(
                executed + skipped,
                2_001 * 3,
                "shard {s}: executed + skipped must cover the dense schedule"
            );
        }
    }

    #[test]
    fn commands_wake_only_their_shard() {
        let mut fleet = EventShardedBackend::new(agents(4), 2);
        // Everyone settles asleep after a full recharge.
        fleet.step_schedule(Seconds::new(30.0), &[true; 2_000], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        let before = fleet.substeps_executed();
        fleet.step_schedule(Seconds::new(30.0), &[true; 5], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        assert_eq!(fleet.substeps_executed(), before, "everyone sleeps");
        // Postpone one rack: only its shard executes on the next batch.
        (&mut fleet as &mut dyn AgentBus).set_charge_postponed(RackId::new(0), true);
        let per_before = fleet.per_shard_substeps();
        fleet.step_schedule(Seconds::new(30.0), &[true; 3], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        let per_after = fleet.per_shard_substeps();
        let touched: Vec<usize> = per_before
            .iter()
            .zip(&per_after)
            .enumerate()
            .filter_map(|(s, (b, a))| (a.0 > b.0).then_some(s))
            .collect();
        assert_eq!(touched.len(), 1, "exactly one shard wakes: {touched:?}");
    }

    #[test]
    fn empty_fleet_is_a_no_op() {
        let mut fleet = EventShardedBackend::new(Vec::new(), 4);
        fleet.step_schedule(Seconds::new(1.0), &[true; 3], &|_, _| Watts::ZERO);
        assert!(FleetBackend::readings(&fleet).is_empty());
        assert_eq!(fleet.substeps_executed(), 0);
        assert!(AgentBus::racks(&fleet).is_empty());
    }

    #[test]
    fn kind_builds_the_sharded_event_backend() {
        assert_eq!(
            FleetBackendKind::EventSharded { shards: 2 }
                .build(agents(3))
                .name(),
            "event-sharded"
        );
    }
}
