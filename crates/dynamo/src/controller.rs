//! The Dynamo controller protecting one circuit breaker.

use std::collections::HashMap;

use recharge_core::{
    assign_global, assign_priority_aware_indexed, throttle_on_overload_indexed, ChargeAssignment,
    ChargeIndex, RechargePowerModel, SlaCurrentPolicy,
};
use recharge_telemetry::{flight, tcounter, tspan, FlightKind, ReasonCode, NO_BUCKET};
use recharge_units::{Amperes, DeviceId, Dod, Priority, RackId, SimTime, Watts};

use crate::bus::AgentBus;
use crate::capping::{plan_caps, plan_uncaps};
use crate::messages::PowerReading;

/// How the controller coordinates battery charging (§V-B2/3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// No charging coordination: chargers act on their local (original or
    /// variable) policy; the controller only caps servers to protect the
    /// breaker. This models the pre-coordination deployments of Fig 13.
    Uncoordinated,
    /// The global baseline: every charging rack gets the same current, the
    /// largest hardware-legal rate that fits the instantaneous available
    /// power. Priority- and DOD-oblivious.
    Global,
    /// The paper's contribution: Algorithm 1 at charge start, reverse-order
    /// battery throttling on overload, server capping only as a last resort.
    #[default]
    PriorityAware,
}

impl core::fmt::Display for Strategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Strategy::Uncoordinated => "uncoordinated",
            Strategy::Global => "global",
            Strategy::PriorityAware => "priority-aware",
        };
        f.write_str(name)
    }
}

/// Configuration of a [`Controller`].
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    device: DeviceId,
    limit: Watts,
    max_cap_fraction: f64,
    planning_margin: f64,
    allow_postponing: bool,
    scope: Option<Vec<RackId>>,
    policy: SlaCurrentPolicy,
    model: RechargePowerModel,
}

impl ControllerConfig {
    /// Creates a configuration for the breaker at `device` with power `limit`
    /// and production policy/model defaults.
    #[must_use]
    pub fn new(device: DeviceId, limit: Watts) -> Self {
        ControllerConfig {
            device,
            limit,
            max_cap_fraction: 0.4,
            planning_margin: 0.015,
            allow_postponing: false,
            scope: None,
            policy: SlaCurrentPolicy::production(),
            model: RechargePowerModel::production(),
        }
    }

    /// Overrides the SLA-current policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SlaCurrentPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the recharge power model.
    #[must_use]
    pub fn with_model(mut self, model: RechargePowerModel) -> Self {
        self.model = model;
        self
    }

    /// Overrides the maximum fraction of a rack's load that capping may shed.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn with_max_cap_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "cap fraction must be a fraction"
        );
        self.max_cap_fraction = fraction;
        self
    }

    /// Overrides the planning guard band: charging assignments are planned
    /// against `limit × (1 − margin)` so that trace noise after assignment
    /// cannot push the total over the physical limit.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is outside `[0, 0.5]`.
    #[must_use]
    pub fn with_planning_margin(mut self, margin: f64) -> Self {
        assert!(
            (0.0..=0.5).contains(&margin),
            "planning margin must be in [0, 0.5]"
        );
        self.planning_margin = margin;
        self
    }

    /// Restricts the controller to a subset of the bus's racks — a leaf
    /// controller sees only the racks under its own RPP even when the bus
    /// spans the whole suite.
    #[must_use]
    pub fn with_scope(mut self, racks: Vec<RackId>) -> Self {
        self.scope = Some(racks);
        self
    }

    /// Enables the charge-postponing extension (§IV-A future work): under
    /// extreme constraint the controller defers whole racks instead of
    /// capping servers. Requires charger hardware that can hold at zero.
    #[must_use]
    pub fn with_postponing(mut self) -> Self {
        self.allow_postponing = true;
        self
    }

    /// Whether the postponing extension is enabled.
    #[must_use]
    pub fn postponing_enabled(&self) -> bool {
        self.allow_postponing
    }

    /// The protected breaker's power limit.
    #[must_use]
    pub fn limit(&self) -> Watts {
        self.limit
    }

    /// Re-targets the power limit — an upper tier re-budgeting a leaf
    /// controller between ticks.
    pub fn set_limit(&mut self, limit: Watts) {
        self.limit = limit;
    }

    /// The limit the planner budgets against (guard band applied).
    #[must_use]
    pub fn planning_limit(&self) -> Watts {
        self.limit * (1.0 - self.planning_margin)
    }

    /// The protected device.
    #[must_use]
    pub fn device(&self) -> DeviceId {
        self.device
    }
}

/// What one controller tick observed and did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerReport {
    /// Tick instant.
    pub now: SimTime,
    /// Total draw at the breaker (IT + recharge of powered racks).
    pub total_draw: Watts,
    /// IT-load component of the draw.
    pub it_load: Watts,
    /// Recharge-power component of the draw.
    pub recharge_power: Watts,
    /// Whether the draw exceeded the limit this tick.
    pub overloaded: bool,
    /// Charging racks that received a (new or updated) current override.
    pub overrides_sent: usize,
    /// Racks throttled to the minimum by the overload response.
    pub racks_throttled: usize,
    /// Server power shed by caps currently in force.
    pub capped_power: Watts,
    /// Additional capping requested this tick (zero when batteries absorbed
    /// the whole overload).
    pub cap_requested: Watts,
    /// Racks whose charging is deferred by the postponing extension.
    pub racks_postponed: usize,
}

/// A record of a rack whose charging is deferred by the postponing extension:
/// parked outside the [`ChargeIndex`] (it takes no part in assignment or
/// throttling — its commanded current is held at zero) with its state frozen
/// at park time for the resume ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ParkedCharge {
    priority: Priority,
    dod: Dod,
}

/// A Dynamo controller protecting one breaker (§IV-B): monitors the racks
/// below it, coordinates their battery charging according to its
/// [`Strategy`], and caps servers when charging throttles cannot prevent an
/// overload.
///
/// The plannable charging population lives in a [`ChargeIndex`] — an
/// incrementally maintained (priority, DOD-bucket) ordering fed by per-tick
/// battery-state deltas — so Algorithm 1 and the reverse throttling pass read
/// their iteration order straight off the index instead of re-sorting the
/// fleet every tick.
///
/// Call [`Controller::tick`] once per control interval with the agent bus;
/// the controller is transport-agnostic and holds no references between
/// ticks.
pub struct Controller {
    config: ControllerConfig,
    strategy: Strategy,
    index: ChargeIndex,
    parked: HashMap<RackId, ParkedCharge>,
}

impl Controller {
    /// Creates a controller.
    #[must_use]
    pub fn new(config: ControllerConfig, strategy: Strategy) -> Self {
        Controller {
            config,
            strategy,
            index: ChargeIndex::new(),
            parked: HashMap::new(),
        }
    }

    /// Racks whose charging is currently postponed.
    #[must_use]
    pub fn postponed_racks(&self) -> Vec<RackId> {
        let mut v: Vec<RackId> = self.parked.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Re-targets the power limit for subsequent ticks — the hook an upper
    /// tier uses to push fresh budgets into a hosted leaf controller.
    pub fn set_limit(&mut self, limit: Watts) {
        self.config.set_limit(limit);
    }

    /// The coordination strategy.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Currents currently commanded for in-progress charge sequences
    /// (postponed racks are held at zero).
    #[must_use]
    pub fn commanded_currents(&self) -> HashMap<RackId, Amperes> {
        let mut currents: HashMap<RackId, Amperes> = self
            .index
            .charge_order()
            .map(|(r, e)| (r, e.current))
            .collect();
        for &rack in self.parked.keys() {
            currents.insert(rack, Amperes::ZERO);
        }
        currents
    }

    /// Runs one control interval: read, coordinate, protect.
    ///
    /// When telemetry is enabled the tick's phases are traced as spans
    /// (`controller.gather`, `controller.assign`, `controller.throttle`,
    /// `controller.postpone`, `controller.recover`) under the parent
    /// `controller.tick`; the instrumentation reads clocks only and cannot
    /// change any control decision.
    pub fn tick<B: AgentBus + ?Sized>(&mut self, now: SimTime, bus: &mut B) -> ControllerReport {
        let _tick_span = tspan!("controller.tick", "controller");
        tcounter!("controller.ticks").inc();
        // Anchor ambient flight-recorder time to the control interval so every
        // decision journaled below lands at this tick's simulated instant.
        recharge_telemetry::set_flight_now(now.as_secs());
        let gather_span = tspan!("controller.gather", "controller");
        let scoped_racks = match &self.config.scope {
            Some(scope) => scope.clone(),
            None => bus.racks(),
        };
        let readings: Vec<PowerReading> = scoped_racks
            .into_iter()
            .filter_map(|r| bus.read(r))
            .collect();

        let it_load: Watts = readings
            .iter()
            .filter(|r| r.input_power_present)
            .map(|r| r.it_load)
            .sum();
        let recharge: Watts = readings
            .iter()
            .filter(|r| r.input_power_present)
            .map(|r| r.recharge_power)
            .sum();
        let total = it_load + recharge;
        let capped_now: Watts = readings.iter().map(|r| r.capped_power).sum();

        // Track the charging population, plus racks still riding the open
        // transition: the controller estimates their DOD while the power is
        // out (§IV-B) and pre-plans their override so the charger never
        // starts at its automatic current.
        let charging: Vec<&PowerReading> = readings.iter().filter(|r| r.is_charging()).collect();
        let discharging: Vec<&PowerReading> = readings
            .iter()
            .filter(|r| r.bbu_state == recharge_battery::BbuState::Discharging)
            .collect();
        let fresh: Vec<&PowerReading> = charging
            .iter()
            .chain(discharging.iter())
            .copied()
            .filter(|r| !self.index.contains(r.rack) && !self.parked.contains_key(&r.rack))
            .collect();
        let finished: Vec<RackId> = self
            .index
            .charge_order()
            .map(|(r, _)| r)
            .chain(self.parked.keys().copied())
            .filter(|r| {
                !charging.iter().any(|c| c.rack == *r) && !discharging.iter().any(|d| d.rack == *r)
            })
            .collect();
        for rack in finished {
            self.index.remove(rack);
            self.parked.remove(&rack);
            bus.clear_charge_override(rack);
        }

        // Available power is planned against the fleet's full IT load — racks
        // on battery bring their load back the moment the transition ends.
        let planning_it: Watts = readings.iter().map(|r| r.it_load).sum();
        drop(gather_span);

        let assign_span = tspan!("controller.assign", "controller");
        let mut overrides_sent = 0;
        match self.strategy {
            Strategy::Uncoordinated => {
                // Chargers run their local policy; just remember who charges.
                self.admit(&fresh);
            }
            Strategy::Global => {
                self.admit(&fresh);
                Self::unpostpone_fresh(&fresh, bus);
                self.refresh_dods(&charging, &discharging);
                // Re-derive the uniform rate from instantaneous headroom.
                if !self.index.is_empty() {
                    let available = (self.config.planning_limit() - planning_it).max(Watts::ZERO);
                    let planning = self.index.states();
                    let outcome = assign_global(
                        &planning,
                        available,
                        &self.config.policy,
                        &self.config.model,
                    );
                    overrides_sent += self.apply_assignments(&outcome.assignments, bus);
                }
            }
            Strategy::PriorityAware => {
                // Algorithm 1 runs while racks are discharging (pre-planning
                // with the live DOD estimate) and whenever new racks appear;
                // settled assignments persist otherwise. The iteration order
                // comes straight off the incrementally maintained index.
                if !fresh.is_empty() || !discharging.is_empty() {
                    self.admit(&fresh);
                    Self::unpostpone_fresh(&fresh, bus);
                    self.refresh_dods(&charging, &discharging);
                    let available = (self.config.planning_limit() - planning_it).max(Watts::ZERO);
                    let outcome = assign_priority_aware_indexed(
                        &self.index,
                        available,
                        &self.config.policy,
                        &self.config.model,
                    );
                    overrides_sent += self.apply_assignments(&outcome.assignments, bus);
                }
            }
        }
        drop(assign_span);

        // Overload protection. The physical layer needs a control interval to
        // settle after an override (Fig 11: ~20 s in production), so the
        // response is driven by the *effective* draw: for racks with a
        // commanded current, the smaller of the command's model power and the
        // measurement (the min lets the CV taper release headroom); for
        // uncommanded racks, the measurement.
        let effective_recharge: Watts = charging
            .iter()
            .map(|r| match self.index.current(r.rack) {
                Some(c) if c > Amperes::ZERO => {
                    self.config.model.rack_power(c).min(r.recharge_power)
                }
                _ => r.recharge_power,
            })
            .sum();
        let effective_total = it_load + effective_recharge;
        let overloaded = total > self.config.limit;
        let mut racks_throttled = 0;
        let mut cap_requested = Watts::ZERO;
        let mut racks_postponed_now = 0;
        let _ = &mut racks_postponed_now;
        if effective_total > self.config.limit {
            let _throttle_span = tspan!("controller.throttle", "controller");
            let overload = effective_total - self.config.limit;
            let residual = match self.strategy {
                Strategy::PriorityAware => {
                    let outcome = throttle_on_overload_indexed(
                        &self.index,
                        overload,
                        &self.config.policy,
                        &self.config.model,
                    );
                    racks_throttled = outcome
                        .assignments
                        .iter()
                        .filter(|after| {
                            self.index
                                .current(after.rack)
                                .is_some_and(|before| after.current < before)
                        })
                        .count();
                    overrides_sent += self.apply_assignments(&outcome.assignments, bus);
                    outcome.residual_overload
                }
                Strategy::Global => {
                    // The per-tick recompute above already pushed the uniform
                    // rate down to fit; what cannot fit even at 1 A remains.
                    let min_draw =
                        self.config.model.rack_power(Amperes::MIN_CHARGE) * charging.len() as f64;
                    let available = (self.config.limit - it_load).max(Watts::ZERO);
                    (min_draw - available).max(Watts::ZERO).min(overload)
                }
                Strategy::Uncoordinated => overload,
            };
            let mut residual = residual;
            if residual > Watts::ZERO
                && self.config.allow_postponing
                && self.strategy == Strategy::PriorityAware
            {
                let _postpone_span = tspan!("controller.postpone", "controller");
                let assignments = self.index_assignments();
                let outcome =
                    recharge_core::postpone_on_deficit(&assignments, residual, &self.config.model);
                for &rack in &outcome.postponed {
                    bus.set_charge_postponed(rack, true);
                    // Park the rack outside the index: it no longer takes
                    // part in assignment or throttling, and its commanded
                    // current is implicitly zero until resumed.
                    if let Some(entry) = self.index.remove(rack) {
                        flight(
                            FlightKind::Postpone,
                            ReasonCode::PostponeDeficit,
                            rack.index(),
                            entry.priority.rank(),
                            ChargeIndex::dod_bucket(entry.dod),
                            entry.current.as_amps().to_bits(),
                            residual.as_watts().to_bits(),
                        );
                        flight(
                            FlightKind::Park,
                            ReasonCode::PostponeDeficit,
                            rack.index(),
                            entry.priority.rank(),
                            ChargeIndex::dod_bucket(entry.dod),
                            entry.dod.value().to_bits(),
                            0,
                        );
                        self.parked.insert(
                            rack,
                            ParkedCharge {
                                priority: entry.priority,
                                dod: entry.dod,
                            },
                        );
                    }
                }
                racks_postponed_now += outcome.postponed.len();
                residual = outcome.residual_deficit;
            }
            if residual > Watts::ZERO {
                let (caps, _uncovered) =
                    plan_caps(&readings, residual, self.config.max_cap_fraction);
                for cap in &caps {
                    bus.cap_servers(cap.rack, cap.limit);
                    flight(
                        FlightKind::Cap,
                        ReasonCode::CapLastResort,
                        cap.rack.index(),
                        0,
                        NO_BUCKET,
                        cap.limit.as_watts().to_bits(),
                        cap.shed.as_watts().to_bits(),
                    );
                }
                cap_requested = caps.iter().map(|c| c.shed).sum();
            }
        } else {
            let _recover_span = tspan!("controller.recover", "controller");
            // Resume postponed racks whose hardware-floor draw now fits; the
            // rack is dropped from the parked set so that the next tick's
            // Algorithm 1 pass re-admits and re-plans it from scratch.
            if !self.parked.is_empty() {
                let mut headroom =
                    (self.config.planning_limit() - effective_total).max(Watts::ZERO);
                // Hysteresis: reserve twice the hardware-floor draw per
                // resumed rack so a marginal headroom blip cannot start a
                // resume → deficit → re-postpone oscillation that caps
                // servers in the gap.
                let reserve = self.config.model.rack_power(Amperes::MIN_CHARGE) * 2.0;
                let mut resumable: Vec<(RackId, Priority, Dod)> = self
                    .parked
                    .iter()
                    .map(|(&rack, p)| (rack, p.priority, p.dod))
                    .collect();
                // The rack-id tail keeps the order deterministic when parked
                // racks tie on (priority, DOD).
                resumable.sort_by(|a, b| {
                    a.1.cmp(&b.1)
                        .then(a.2.value().total_cmp(&b.2.value()))
                        .then(a.0.cmp(&b.0))
                });
                for (rack, priority, dod) in resumable {
                    if reserve > headroom {
                        break;
                    }
                    flight(
                        FlightKind::Resume,
                        ReasonCode::ResumeHeadroom,
                        rack.index(),
                        priority.rank(),
                        ChargeIndex::dod_bucket(dod),
                        headroom.as_watts().to_bits(),
                        reserve.as_watts().to_bits(),
                    );
                    headroom -= reserve;
                    bus.set_charge_postponed(rack, false);
                    self.parked.remove(&rack);
                }
            }
            // Recovery: release caps that fit comfortably in the headroom.
            let headroom = (self.config.limit - effective_total.max(total)) * 0.9;
            for rack in plan_uncaps(&readings, headroom) {
                bus.uncap_servers(rack);
                flight(
                    FlightKind::Uncap,
                    ReasonCode::UncapHeadroom,
                    rack.index(),
                    0,
                    NO_BUCKET,
                    headroom.as_watts().to_bits(),
                    0,
                );
            }
        }

        tcounter!("controller.overrides_sent").add(overrides_sent as u64);
        tcounter!("controller.racks_throttled").add(racks_throttled as u64);
        if cap_requested > Watts::ZERO {
            tcounter!("controller.cap_requests").inc();
        }

        ControllerReport {
            now,
            total_draw: total,
            it_load,
            recharge_power: recharge,
            overloaded,
            overrides_sent,
            racks_throttled,
            capped_power: capped_now,
            cap_requested,
            racks_postponed: self.parked.len().max(racks_postponed_now),
        }
    }

    /// Registers newly seen charging/discharging racks in the index with an
    /// uncommanded (zero) current so the first applied assignment always
    /// sends a real override.
    fn admit(&mut self, fresh: &[&PowerReading]) {
        for r in fresh {
            self.index
                .upsert(r.rack, r.priority, r.event_dod, Amperes::ZERO);
        }
    }

    /// Refreshes the DOD of indexed racks from the latest readings: charging
    /// racks keep their latched event DOD, discharging racks track the live
    /// estimate (it grows while the rack is still riding the open
    /// transition). Each refresh is a state delta into the index — the
    /// ordering only moves when a quantization-bucket boundary is crossed.
    fn refresh_dods(&mut self, charging: &[&PowerReading], discharging: &[&PowerReading]) {
        for r in charging {
            self.index.set_dod(r.rack, r.event_dod);
        }
        for r in discharging {
            self.index.set_dod(r.rack, r.dod);
        }
    }

    /// The indexed population as assignments (charge order), for passes that
    /// take a plain slice.
    fn index_assignments(&self) -> Vec<ChargeAssignment> {
        self.index
            .charge_order()
            .map(|(rack, e)| ChargeAssignment {
                rack,
                priority: e.priority,
                dod: e.dod,
                current: e.current,
                sla_met: false,
            })
            .collect()
    }

    /// Sends overrides for assignments that differ from the commanded state;
    /// returns how many were sent.
    /// Clears any stale postpone flag on newly admitted racks.
    ///
    /// A rack re-appearing after a partition or an agent flap may still
    /// carry a postpone flag from an earlier plan that nobody could clear
    /// while it was unreachable (the mesh lease clears it on standalone
    /// fallback, but an in-memory flap has no lease). Admission means the
    /// rack is planned to charge, so make that true on the agent as well —
    /// a no-op for racks that were never postponed.
    fn unpostpone_fresh<B: AgentBus + ?Sized>(fresh: &[&PowerReading], bus: &mut B) {
        for r in fresh {
            bus.set_charge_postponed(r.rack, false);
        }
    }

    fn apply_assignments<B: AgentBus + ?Sized>(
        &mut self,
        assignments: &[ChargeAssignment],
        bus: &mut B,
    ) -> usize {
        let mut sent = 0;
        for a in assignments {
            let Some(current) = self.index.current(a.rack) else {
                continue;
            };
            if (current - a.current).abs() > Amperes::new(0.01) {
                self.index.set_current(a.rack, a.current);
                bus.set_charge_override(a.rack, a.current);
                flight(
                    FlightKind::Override,
                    ReasonCode::OverrideDelta,
                    a.rack.index(),
                    a.priority.rank(),
                    ChargeIndex::dod_bucket(a.dod),
                    a.current.as_amps().to_bits(),
                    current.as_amps().to_bits(),
                );
                sent += 1;
            }
        }
        sent
    }

    /// Captures the controller's brain — the [`ChargeIndex`] population and
    /// the parked (postponed) set — as a deterministic snapshot.
    ///
    /// Entries are emitted in charge order (the index's own deterministic
    /// `BTreeSet` iteration) and parked racks in ascending rack order, so two
    /// controllers with identical state produce byte-identical snapshots.
    /// The configuration and strategy are deliberately *not* captured: every
    /// replica of an HA set is constructed with the same config, and leases
    /// live on the agent side where they survive a controller loss anyway.
    #[must_use]
    pub fn snapshot(&self) -> ControllerSnapshot {
        let entries = self
            .index
            .charge_order()
            .map(|(rack, e)| SnapshotEntry {
                rack,
                priority: e.priority,
                dod: e.dod,
                current: e.current,
            })
            .collect();
        let mut parked: Vec<SnapshotParked> = self
            .parked
            .iter()
            .map(|(&rack, p)| SnapshotParked {
                rack,
                priority: p.priority,
                dod: p.dod,
            })
            .collect();
        parked.sort_unstable_by_key(|p| p.rack);
        ControllerSnapshot { entries, parked }
    }

    /// Replaces the controller's brain with `snapshot`'s state.
    ///
    /// After a restore the next [`tick`](Self::tick) replays the delta since
    /// the snapshot from live agent readings: finished racks are evicted,
    /// newly charging racks admitted, and DOD estimates refreshed — the
    /// standard gather phase is the delta replay.
    pub fn restore(&mut self, snapshot: &ControllerSnapshot) {
        self.index.clear();
        self.parked.clear();
        for e in &snapshot.entries {
            self.index.upsert(e.rack, e.priority, e.dod, e.current);
        }
        for p in &snapshot.parked {
            self.parked.insert(
                p.rack,
                ParkedCharge {
                    priority: p.priority,
                    dod: p.dod,
                },
            );
        }
    }
}

/// One indexed rack inside a [`ControllerSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct SnapshotEntry {
    rack: RackId,
    priority: Priority,
    dod: Dod,
    current: Amperes,
}

/// One parked (postponed) rack inside a [`ControllerSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct SnapshotParked {
    rack: RackId,
    priority: Priority,
    dod: Dod,
}

/// Snapshot codec version byte; decoders reject mismatches.
const SNAPSHOT_VERSION: u8 = 1;

/// A deterministic, bit-exact capture of a [`Controller`]'s mutable state:
/// the charge-index population (charge order) and the parked set (rack
/// order). Produced by [`Controller::snapshot`], consumed by
/// [`Controller::restore`], and wire-portable through
/// [`to_bytes`](Self::to_bytes) / [`from_bytes`](Self::from_bytes) — every
/// `f64` travels as its exact IEEE-754 bit pattern, like the mesh codec, so
/// a restored brain is indistinguishable from the original.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControllerSnapshot {
    entries: Vec<SnapshotEntry>,
    parked: Vec<SnapshotParked>,
}

/// A malformed snapshot byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the snapshot did.
    Truncated,
    /// Unknown snapshot codec version.
    BadVersion(u8),
    /// A priority rank outside 1..=3.
    BadPriority(u8),
    /// Trailing bytes after a complete snapshot.
    TrailingBytes,
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadVersion(v) => {
                write!(f, "snapshot version {v} (expected {SNAPSHOT_VERSION})")
            }
            SnapshotError::BadPriority(v) => write!(f, "illegal priority rank {v}"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encoded size of one indexed entry: rack u32, priority u8, two f64s.
const SNAPSHOT_ENTRY_BYTES: usize = 4 + 1 + 8 + 8;
/// Encoded size of one parked entry: rack u32, priority u8, one f64.
const SNAPSHOT_PARKED_BYTES: usize = 4 + 1 + 8;

impl ControllerSnapshot {
    /// Number of indexed racks captured.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// Number of parked racks captured.
    #[must_use]
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Whether the snapshot captures no state at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.parked.is_empty()
    }

    /// Serializes the snapshot. Layout (all little-endian):
    ///
    /// ```text
    /// [ version u8 ]
    /// [ tracked u32 ] n × [ rack u32 | priority u8 | dod bits u64 | current bits u64 ]
    /// [ parked  u32 ] m × [ rack u32 | priority u8 | dod bits u64 ]
    /// ```
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            1 + 8
                + self.entries.len() * SNAPSHOT_ENTRY_BYTES
                + self.parked.len() * SNAPSHOT_PARKED_BYTES,
        );
        out.push(SNAPSHOT_VERSION);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.rack.index().to_le_bytes());
            out.push(e.priority.rank());
            out.extend_from_slice(&e.dod.value().to_bits().to_le_bytes());
            out.extend_from_slice(&e.current.as_amps().to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.parked.len() as u32).to_le_bytes());
        for p in &self.parked {
            out.extend_from_slice(&p.rack.index().to_le_bytes());
            out.push(p.priority.rank());
            out.extend_from_slice(&p.dod.value().to_bits().to_le_bytes());
        }
        out
    }

    /// Decodes a snapshot serialized by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the buffer is truncated, carries an
    /// unknown version, an illegal priority rank, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut cursor = SnapshotReader(bytes);
        let version = cursor.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let tracked = cursor.u32()? as usize;
        if tracked > cursor.remaining() / SNAPSHOT_ENTRY_BYTES {
            return Err(SnapshotError::Truncated);
        }
        let mut entries = Vec::with_capacity(tracked);
        for _ in 0..tracked {
            entries.push(SnapshotEntry {
                rack: RackId::new(cursor.u32()?),
                priority: cursor.priority()?,
                dod: Dod::new(f64::from_bits(cursor.u64()?)),
                current: Amperes::new(f64::from_bits(cursor.u64()?)),
            });
        }
        let parked_count = cursor.u32()? as usize;
        if parked_count > cursor.remaining() / SNAPSHOT_PARKED_BYTES {
            return Err(SnapshotError::Truncated);
        }
        let mut parked = Vec::with_capacity(parked_count);
        for _ in 0..parked_count {
            parked.push(SnapshotParked {
                rack: RackId::new(cursor.u32()?),
                priority: cursor.priority()?,
                dod: Dod::new(f64::from_bits(cursor.u64()?)),
            });
        }
        if cursor.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes);
        }
        Ok(ControllerSnapshot { entries, parked })
    }
}

/// Minimal little-endian cursor for the snapshot codec.
struct SnapshotReader<'a>(&'a [u8]);

impl SnapshotReader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.0.len() < n {
            return Err(SnapshotError::Truncated);
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn priority(&mut self) -> Result<Priority, SnapshotError> {
        match self.u8()? {
            1 => Ok(Priority::P1),
            2 => Ok(Priority::P2),
            3 => Ok(Priority::P3),
            v => Err(SnapshotError::BadPriority(v)),
        }
    }

    fn remaining(&self) -> usize {
        self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{RackAgent, SimRackAgent};
    use crate::bus::InMemoryBus;
    use recharge_units::Seconds;

    fn fleet(n_per_priority: usize, load_kw: f64) -> InMemoryBus<SimRackAgent> {
        let mut agents = Vec::new();
        let mut id = 0;
        for priority in Priority::ALL {
            for _ in 0..n_per_priority {
                agents.push(
                    SimRackAgent::builder(RackId::new(id), priority)
                        .offered_load(Watts::from_kilowatts(load_kw))
                        .build(),
                );
                id += 1;
            }
        }
        InMemoryBus::new(agents)
    }

    /// Runs an open transition of `secs` over the whole bus.
    fn open_transition(bus: &mut InMemoryBus<SimRackAgent>, secs: f64) {
        for a in bus.agents_mut() {
            a.set_input_power(false);
        }
        for a in bus.agents_mut() {
            a.step(Seconds::new(secs));
        }
        for a in bus.agents_mut() {
            a.set_input_power(true);
        }
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
    }

    fn controller(limit_kw: f64, strategy: Strategy) -> Controller {
        Controller::new(
            ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(limit_kw)),
            strategy,
        )
    }

    #[test]
    fn steady_state_reports_pure_it_load() {
        let mut bus = fleet(2, 6.0);
        let mut c = controller(190.0, Strategy::PriorityAware);
        let report = c.tick(SimTime::ZERO, &mut bus);
        assert!(!report.overloaded);
        assert_eq!(report.it_load, Watts::from_kilowatts(36.0));
        assert_eq!(report.recharge_power, Watts::ZERO);
        assert_eq!(report.overrides_sent, 0);
    }

    #[test]
    fn priority_aware_assigns_on_charge_start() {
        let mut bus = fleet(2, 6.0);
        let mut c = controller(190.0, Strategy::PriorityAware);
        open_transition(&mut bus, 45.0);
        let report = c.tick(SimTime::from_secs(46.0), &mut bus);
        assert!(report.overrides_sent > 0, "SLA overrides should be issued");
        let currents = c.commanded_currents();
        assert_eq!(currents.len(), 6);
        // Ample headroom: every rack gets its Fig 9(b) SLA current; P1 racks
        // (2 A floor) charge no slower than P3 racks.
        let p1 = currents[&RackId::new(0)];
        let p3 = currents[&RackId::new(4)];
        assert!(p1 >= p3, "P1 {p1} vs P3 {p3}");
    }

    #[test]
    fn overrides_reach_the_chargers() {
        let mut bus = fleet(1, 6.0);
        let mut c = controller(190.0, Strategy::PriorityAware);
        open_transition(&mut bus, 30.0);
        c.tick(SimTime::from_secs(31.0), &mut bus);
        for agent in bus.agents() {
            let expected = c.commanded_currents()[&agent.rack()];
            assert_eq!(agent.battery().setpoint(), expected);
        }
    }

    #[test]
    fn load_rise_mid_charge_throttles_before_capping() {
        // 3 racks × 6 kW = 18 kW of IT load under a 21 kW limit: the initial
        // assignment fits comfortably. A subsequent IT-load rise overloads
        // the breaker; batteries must be throttled, servers spared.
        let mut bus = fleet(1, 6.0);
        let mut c = controller(21.0, Strategy::PriorityAware);
        open_transition(&mut bus, 60.0);
        c.tick(SimTime::from_secs(61.0), &mut bus);

        // Diurnal rise: +600 W per rack.
        for a in bus.agents_mut() {
            a.set_offered_load(Watts::from_kilowatts(6.6));
        }
        let mut saw_throttle = false;
        let mut saw_cap = false;
        for s in 0..120 {
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
            let report = c.tick(SimTime::from_secs(62.0 + f64::from(s)), &mut bus);
            saw_throttle |= report.racks_throttled > 0;
            saw_cap |= report.cap_requested > Watts::ZERO;
        }
        assert!(saw_throttle, "overload should throttle charging");
        assert!(!saw_cap, "battery throttling should cover this overload");
    }

    #[test]
    fn extreme_limit_falls_back_to_server_capping() {
        let mut bus = fleet(1, 6.0);
        // Limit below IT load + minimum recharge draw: capping is inevitable.
        let mut c = controller(18.5, Strategy::PriorityAware);
        open_transition(&mut bus, 60.0);
        let mut total_cap = Watts::ZERO;
        for s in 0..120 {
            let report = c.tick(SimTime::from_secs(61.0 + f64::from(s)), &mut bus);
            total_cap = total_cap.max(report.capped_power + report.cap_requested);
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        assert!(
            total_cap > Watts::ZERO,
            "capping must engage below the floor"
        );
        // The P3 rack must be capped before the P1 rack.
        let p3_cap = bus.read(RackId::new(2)).unwrap().capped_power;
        let p1_cap = bus.read(RackId::new(0)).unwrap().capped_power;
        assert!(p3_cap >= p1_cap, "P3 cap {p3_cap} vs P1 cap {p1_cap}");
    }

    #[test]
    fn caps_are_released_after_recovery() {
        let mut bus = fleet(1, 6.0);
        let mut c = controller(18.5, Strategy::PriorityAware);
        open_transition(&mut bus, 60.0);
        for s in 0..4_000 {
            c.tick(SimTime::from_secs(61.0 + f64::from(s)), &mut bus);
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        // Charging long done; caps should have been lifted.
        let still_capped: Vec<_> = bus
            .racks()
            .into_iter()
            .filter(|&r| bus.read(r).unwrap().capped_power > Watts::ZERO)
            .collect();
        assert!(
            still_capped.is_empty(),
            "caps not released: {still_capped:?}"
        );
    }

    #[test]
    fn global_strategy_is_uniform() {
        let mut bus = fleet(2, 6.0);
        let mut c = controller(40.0, Strategy::Global);
        open_transition(&mut bus, 60.0);
        c.tick(SimTime::from_secs(61.0), &mut bus);
        let currents = c.commanded_currents();
        let values: Vec<Amperes> = currents.values().copied().collect();
        assert!(values
            .windows(2)
            .all(|w| (w[0] - w[1]).abs() < Amperes::new(1e-9)));
    }

    #[test]
    fn uncoordinated_strategy_never_overrides() {
        let mut bus = fleet(2, 6.0);
        let mut c = controller(25.0, Strategy::Uncoordinated);
        open_transition(&mut bus, 60.0);
        for s in 0..60 {
            let report = c.tick(SimTime::from_secs(61.0 + f64::from(s)), &mut bus);
            assert_eq!(report.overrides_sent, 0);
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        // Overload under the tight limit must have been met with capping.
        let capped: Watts = bus
            .racks()
            .iter()
            .map(|&r| bus.read(r).unwrap().capped_power)
            .sum();
        assert!(capped > Watts::ZERO);
    }

    #[test]
    fn unreachable_agents_do_not_poison_the_tick() {
        let mut bus = fleet(1, 6.0);
        bus.disconnect(RackId::new(1));
        let mut c = controller(190.0, Strategy::PriorityAware);
        open_transition(&mut bus, 45.0);
        let report = c.tick(SimTime::from_secs(46.0), &mut bus);
        // Two of three racks are visible; coordination proceeds for them.
        assert_eq!(report.it_load, Watts::from_kilowatts(12.0));
        assert_eq!(c.commanded_currents().len(), 2);
    }

    #[test]
    fn overrides_cleared_when_charge_completes() {
        let mut bus = fleet(1, 6.0);
        let mut c = controller(190.0, Strategy::PriorityAware);
        open_transition(&mut bus, 10.0);
        c.tick(SimTime::from_secs(11.0), &mut bus);
        assert!(!c.commanded_currents().is_empty());
        // Run to completion.
        for s in 0..4_000 {
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
            c.tick(SimTime::from_secs(12.0 + f64::from(s)), &mut bus);
        }
        assert!(c.commanded_currents().is_empty());
        for a in bus.agents() {
            assert_eq!(a.battery().bbu().charger().override_current(), None);
        }
    }

    #[test]
    fn postponing_replaces_server_capping_under_extreme_limits() {
        // A limit below IT + the 1 A fleet floor: without the extension the
        // controller must cap servers; with it, it defers P3/P2 racks.
        let build = |postpone: bool| {
            let config = ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(18.5));
            let config = if postpone {
                config.with_postponing()
            } else {
                config
            };
            Controller::new(config, Strategy::PriorityAware)
        };

        for postpone in [false, true] {
            let mut bus = fleet(1, 6.0);
            let mut c = build(postpone);
            open_transition(&mut bus, 60.0);
            let mut total_cap = Watts::ZERO;
            let mut saw_postponed = 0;
            for s in 0..240 {
                let report = c.tick(SimTime::from_secs(61.0 + f64::from(s)), &mut bus);
                total_cap = total_cap.max(report.capped_power + report.cap_requested);
                saw_postponed = saw_postponed.max(report.racks_postponed);
                for a in bus.agents_mut() {
                    a.step(Seconds::new(1.0));
                }
            }
            if postpone {
                assert_eq!(
                    total_cap,
                    Watts::ZERO,
                    "postponing should spare the servers"
                );
                assert!(saw_postponed > 0, "some rack must have been deferred");
                // The deferred rack is the P3 one.
                assert!(c
                    .postponed_racks()
                    .iter()
                    .all(|&r| bus.agent(r).unwrap().priority() != Priority::P1));
            } else {
                assert!(
                    total_cap > Watts::ZERO,
                    "without postponing, capping engages"
                );
            }
        }
    }

    #[test]
    fn postponed_racks_resume_when_headroom_returns() {
        let mut bus = fleet(1, 6.0);
        let config =
            ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(18.5)).with_postponing();
        let mut c = Controller::new(config, Strategy::PriorityAware);
        open_transition(&mut bus, 60.0);
        for s in 0..60 {
            c.tick(SimTime::from_secs(61.0 + f64::from(s)), &mut bus);
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        assert!(!c.postponed_racks().is_empty());

        // The diurnal load drops: headroom returns and the deferral lifts.
        for a in bus.agents_mut() {
            a.set_offered_load(Watts::from_kilowatts(5.0));
        }
        for s in 60..2_400 {
            c.tick(SimTime::from_secs(61.0 + f64::from(s)), &mut bus);
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        assert!(
            c.postponed_racks().is_empty(),
            "deferral should lift with headroom"
        );
        for a in bus.agents() {
            assert!(!a.battery().is_postponed());
        }
    }

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::PriorityAware.to_string(), "priority-aware");
        assert_eq!(Strategy::Global.to_string(), "global");
        assert_eq!(Strategy::Uncoordinated.to_string(), "uncoordinated");
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let mut bus = fleet(1, 6.0);
        let config =
            ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(18.5)).with_postponing();
        let mut c = Controller::new(config, Strategy::PriorityAware);
        open_transition(&mut bus, 60.0);
        // Tick long enough that racks are admitted and at least one parks.
        for s in 0..60 {
            c.tick(SimTime::from_secs(61.0 + f64::from(s)), &mut bus);
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        assert!(!c.postponed_racks().is_empty(), "setup: nothing parked");

        let snap = c.snapshot();
        assert!(snap.tracked() > 0);
        assert_eq!(snap.parked(), c.postponed_racks().len());
        let bytes = snap.to_bytes();
        let decoded = ControllerSnapshot::from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded, snap);
        // Deterministic: re-snapshotting unchanged state is byte-identical.
        assert_eq!(c.snapshot().to_bytes(), bytes);

        // Restoring into a fresh controller reproduces the brain exactly.
        let mut standby = controller(18.5, Strategy::PriorityAware);
        standby.restore(&decoded);
        assert_eq!(standby.commanded_currents(), c.commanded_currents());
        assert_eq!(standby.postponed_racks(), c.postponed_racks());
        assert_eq!(standby.snapshot().to_bytes(), bytes);
    }

    #[test]
    fn snapshot_rejects_corrupt_bytes() {
        let empty = ControllerSnapshot::default();
        assert!(empty.is_empty());
        let bytes = empty.to_bytes();
        assert_eq!(ControllerSnapshot::from_bytes(&bytes), Ok(empty));
        assert_eq!(
            ControllerSnapshot::from_bytes(&[]),
            Err(SnapshotError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert_eq!(
            ControllerSnapshot::from_bytes(&bad),
            Err(SnapshotError::BadVersion(9))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            ControllerSnapshot::from_bytes(&trailing),
            Err(SnapshotError::TrailingBytes)
        );
        // A tracked count the remaining bytes cannot possibly hold.
        let mut huge = bytes;
        huge[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            ControllerSnapshot::from_bytes(&huge),
            Err(SnapshotError::Truncated)
        );
        // An illegal priority rank inside an entry.
        let mut c = Controller::new(
            ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
            Strategy::PriorityAware,
        );
        c.index
            .upsert(RackId::new(3), Priority::P2, Dod::new(0.4), Amperes::ZERO);
        let mut bytes = c.snapshot().to_bytes();
        bytes[9] = 7; // entry priority byte: version(1) + count(4) + rack(4)
        assert_eq!(
            ControllerSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadPriority(7))
        );
    }

    #[test]
    fn restore_then_continue_matches_uninterrupted() {
        // Two identical worlds; world B's controller is replaced mid-flight
        // by a standby restored from a snapshot. Every subsequent report and
        // command stream must match world A bit for bit.
        let mut bus_a = fleet(2, 6.0);
        let mut bus_b = fleet(2, 6.0);
        let mut live = controller(21.0, Strategy::PriorityAware);
        let mut original = controller(21.0, Strategy::PriorityAware);
        open_transition(&mut bus_a, 60.0);
        open_transition(&mut bus_b, 60.0);
        for s in 0..30 {
            let now = SimTime::from_secs(61.0 + f64::from(s));
            assert_eq!(live.tick(now, &mut bus_a), original.tick(now, &mut bus_b));
            for a in bus_a.agents_mut() {
                a.step(Seconds::new(1.0));
            }
            for a in bus_b.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        // Failover in world B: a fresh standby restores the snapshot.
        let mut standby = controller(21.0, Strategy::PriorityAware);
        standby.restore(&original.snapshot());
        drop(original);
        for s in 30..120 {
            let now = SimTime::from_secs(61.0 + f64::from(s));
            assert_eq!(live.tick(now, &mut bus_a), standby.tick(now, &mut bus_b));
            for a in bus_a.agents_mut() {
                a.step(Seconds::new(1.0));
            }
            for a in bus_b.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        assert_eq!(standby.commanded_currents(), live.commanded_currents());
    }
}
