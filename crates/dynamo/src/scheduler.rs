//! A minimal binary-heap next-event scheduler.
//!
//! The event-driven backend and the simulation loop both need the same
//! primitive: "give me the earliest pending event at or before `now`,
//! breaking ties in the order they were scheduled". A [`std::collections::BinaryHeap`]
//! of `Reverse`-ordered entries keyed on `(time, sequence)` provides exactly
//! that with `O(log n)` scheduling and popping. Times are integer sub-step
//! indices (or control-tick indices), never floats, so ordering is exact and
//! replay-stable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One pending event: fires at integer time `at`, FIFO among equal times.
struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic min-heap of timed events.
///
/// Events scheduled for the same time pop in insertion order (FIFO), which
/// keeps wake-up processing independent of heap internals and therefore
/// bit-identical across runs.
pub struct EventScheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventScheduler<E> {
    /// An empty scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty scheduler whose heap can hold `capacity` pending events
    /// without reallocating.
    ///
    /// The event backends size their queues for the steady state (at most one
    /// pending wake per rack plus a batch's worth of power edges) so the hot
    /// loop never grows the heap mid-run; a burst beyond the capacity still
    /// works, it just reallocates like any `Vec`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// How many pending events the heap can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Enqueue `event` to fire at integer time `at`.
    pub fn schedule(&mut self, at: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// The time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_next(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pop the earliest pending event regardless of time.
    pub fn pop_next(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Pop the earliest event whose time is `<= now`, or `None` if the head
    /// of the queue is still in the future (or the queue is empty).
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, E)> {
        if self.peek_next()? <= now {
            self.pop_next()
        } else {
            None
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut s = EventScheduler::new();
        s.schedule(30, "c");
        s.schedule(10, "a");
        s.schedule(20, "b");
        assert_eq!(s.peek_next(), Some(10));
        assert_eq!(s.pop_next(), Some((10, "a")));
        assert_eq!(s.pop_next(), Some((20, "b")));
        assert_eq!(s.pop_next(), Some((30, "c")));
        assert_eq!(s.pop_next(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut s = EventScheduler::new();
        for i in 0..16 {
            s.schedule(7, i);
        }
        for i in 0..16 {
            assert_eq!(s.pop_next(), Some((7, i)));
        }
    }

    #[test]
    fn pop_due_gates_on_the_clock() {
        let mut s = EventScheduler::new();
        s.schedule(5, "later");
        s.schedule(2, "soon");
        assert_eq!(s.pop_due(1), None);
        assert_eq!(s.pop_due(2), Some((2, "soon")));
        assert_eq!(s.pop_due(4), None);
        assert_eq!(s.pop_due(9), Some((5, "later")));
        assert!(s.is_empty());
        assert_eq!(s.pop_due(100), None);
    }

    #[test]
    fn with_capacity_retains_its_allocation_across_churn() {
        let mut s: EventScheduler<u32> = EventScheduler::with_capacity(64);
        let cap = s.capacity();
        assert!(cap >= 64);
        // Many schedule/drain cycles that never exceed the requested
        // capacity must never grow the heap: the steady-state loop of the
        // event backends is allocation-free.
        for round in 0..200u64 {
            for i in 0..64u32 {
                s.schedule(round, i);
            }
            while s.pop_due(round).is_some() {}
            assert!(s.is_empty());
            assert_eq!(s.capacity(), cap, "round {round} reallocated");
        }
    }

    #[test]
    fn len_tracks_the_queue() {
        let mut s: EventScheduler<u8> = EventScheduler::new();
        assert!(s.is_empty());
        s.schedule(1, 0);
        s.schedule(1, 1);
        assert_eq!(s.len(), 2);
        s.pop_next();
        assert_eq!(s.len(), 1);
    }
}
