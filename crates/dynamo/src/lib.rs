//! A Dynamo-style power monitoring and control plane (§IV-B).
//!
//! The paper extends Facebook's Dynamo system — per-server agents plus a tree
//! of controllers mirroring the power hierarchy — with battery-charging
//! coordination. This crate implements that control plane at the fidelity the
//! paper describes:
//!
//! * [`RackAgent`] / [`SimRackAgent`] — the new agent type that runs on each
//!   rack's TOR switch: reads rack input power, IT load, and BBU
//!   charge/discharge power, and forwards charging-current overrides and
//!   server power caps to the rack.
//! * [`AgentBus`] / [`InMemoryBus`] — the controller ↔ agent request path.
//! * [`FleetBackend`] / [`FleetBackendKind`] — pluggable fleet execution:
//!   serial in-process, sharded worker threads (per-tick or batched
//!   submission), the struct-of-arrays kernel ([`SoaBackend`]) for
//!   campus-scale fleets, or event-driven stepping
//!   ([`EventDrivenBackend`], sharded over worker threads as
//!   [`EventShardedBackend`]) that fast-forwards quiescent racks — all
//!   bit-identical.
//! * [`Controller`] — a leaf/upper controller protecting one breaker: detects
//!   charge sequences, runs Algorithm 1 (or the global baseline), monitors
//!   for overload, throttles battery charging in reverse priority order, and
//!   caps servers only as a last resort.
//! * [`capping`] — priority-aware server power capping (the Dynamo safety
//!   net), used identically by all strategies.
//!
//! # Examples
//!
//! ```
//! use recharge_dynamo::{Controller, ControllerConfig, InMemoryBus, SimRackAgent, Strategy};
//! use recharge_units::{DeviceId, Priority, RackId, SimTime, Seconds, Watts};
//!
//! // One rack under a 190 kW RPP, coordinated priority-aware.
//! let agent = SimRackAgent::builder(RackId::new(0), Priority::P1).build();
//! let mut bus = InMemoryBus::new(vec![agent]);
//! let config = ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0));
//! let mut controller = Controller::new(config, Strategy::PriorityAware);
//! let report = controller.tick(SimTime::ZERO, &mut bus);
//! assert!(!report.overloaded);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod backend;
mod bus;
pub mod capping;
mod controller;
mod event;
mod event_sharded;
mod hierarchy;
mod messages;
mod scheduler;
mod soa;
mod threaded;

pub use agent::{RackAgent, SimRackAgent, SimRackAgentBuilder};
pub use backend::{
    FleetBackend, FleetBackendKind, HostedControlReport, ParseBackendKindError, SerialBackend,
    ShardedBackend,
};
pub use bus::{AgentBus, InMemoryBus};
pub use controller::{
    Controller, ControllerConfig, ControllerReport, ControllerSnapshot, SnapshotError, Strategy,
};
pub use event::EventDrivenBackend;
pub use event_sharded::EventShardedBackend;
pub use hierarchy::{HierarchicalControl, UpperMonitor};
pub use messages::PowerReading;
pub use scheduler::EventScheduler;
pub use soa::SoaBackend;
pub use threaded::ThreadedFleet;
