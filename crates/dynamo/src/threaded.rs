//! A threaded agent fleet: the distributed shape of the production system.
//!
//! Production Dynamo is a mesh of per-rack agents polled by controllers over
//! RPC; telemetry lands in a monitoring store the controllers read. This
//! module gives the simulator the same shape in-process: agents live on
//! sharded worker threads, **commands** travel over channels, and **reads**
//! come from a shared telemetry snapshot updated after every physical step —
//! so a controller never blocks on an agent round-trip.
//!
//! The [`ThreadedFleet`] implements [`AgentBus`], so the same
//! [`Controller`](crate::Controller) drives it unchanged.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use recharge_telemetry::tspan;
use recharge_units::{Amperes, RackId, Seconds, Watts};

use crate::agent::{RackAgent, SimRackAgent};
use crate::bus::AgentBus;
use crate::messages::PowerReading;

/// A command routed to the shard owning a rack.
enum Command {
    SetOverride(RackId, Amperes),
    ClearOverride(RackId),
    SetPostponed(RackId, bool),
    Cap(RackId, Watts),
    Uncap(RackId),
}

/// A request processed by a shard worker.
enum Request {
    Command(Command),
    /// Advance every agent of the shard by `dt` with the given offered loads
    /// and input-power state, refresh the telemetry cache, then ack.
    Step {
        dt: Seconds,
        loads: Vec<(RackId, Watts)>,
        input_power: bool,
        done: Sender<()>,
    },
    Shutdown,
}

struct Shard {
    tx: Sender<Request>,
    join: Option<JoinHandle<Vec<SimRackAgent>>>,
}

/// A fleet of [`SimRackAgent`]s running on worker threads behind a telemetry
/// snapshot.
///
/// # Examples
///
/// ```
/// use recharge_dynamo::{AgentBus, SimRackAgent, ThreadedFleet};
/// use recharge_units::{Priority, RackId, Seconds, Watts};
///
/// let agents = (0..8)
///     .map(|i| SimRackAgent::builder(RackId::new(i), Priority::P2).build())
///     .collect();
/// let mut fleet = ThreadedFleet::spawn(agents, 4);
/// fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.0), true);
/// assert!(fleet.read(RackId::new(3)).is_some());
/// let agents = fleet.into_agents(); // clean shutdown
/// assert_eq!(agents.len(), 8);
/// ```
pub struct ThreadedFleet {
    shards: Vec<Shard>,
    rack_to_shard: HashMap<RackId, usize>,
    racks: Vec<RackId>,
    cache: Arc<RwLock<HashMap<RackId, PowerReading>>>,
}

impl ThreadedFleet {
    /// Spawns `shard_count` worker threads owning the given agents
    /// round-robin. The telemetry cache is primed so reads work before the
    /// first step.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    #[must_use]
    pub fn spawn(agents: Vec<SimRackAgent>, shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        let cache: Arc<RwLock<HashMap<RackId, PowerReading>>> = Arc::new(RwLock::new(
            agents.iter().map(|a| (a.rack(), a.read())).collect(),
        ));
        let racks: Vec<RackId> = agents.iter().map(RackAgent::rack).collect();

        // Distribute agents round-robin across shards.
        let mut buckets: Vec<Vec<SimRackAgent>> = (0..shard_count).map(|_| Vec::new()).collect();
        let mut rack_to_shard = HashMap::new();
        for (i, agent) in agents.into_iter().enumerate() {
            let shard = i % shard_count;
            rack_to_shard.insert(agent.rack(), shard);
            buckets[shard].push(agent);
        }

        let shards = buckets
            .into_iter()
            .map(|bucket| {
                let (tx, rx) = unbounded::<Request>();
                let cache = Arc::clone(&cache);
                let join = std::thread::spawn(move || shard_main(bucket, &rx, &cache));
                Shard {
                    tx,
                    join: Some(join),
                }
            })
            .collect();

        ThreadedFleet {
            shards,
            rack_to_shard,
            racks,
            cache,
        }
    }

    /// Advances every agent by `dt`: offered loads come from `load_of`,
    /// `input_power` applies fleet-wide (an MSB-level open transition).
    /// Blocks until all shards have stepped and refreshed the cache.
    pub fn step_all<F>(&mut self, dt: Seconds, load_of: F, input_power: bool)
    where
        F: Fn(RackId) -> Watts,
    {
        // The coordinator-side span brackets fan-out + join; each worker
        // separately records `shard.step` and `shard.cache_refresh`, so the
        // gap between this span and the workers' busy time is the per-tick
        // channel/wakeup overhead.
        let _step_span = tspan!("fleet.step_all", "fleet");
        let mut per_shard: Vec<Vec<(RackId, Watts)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for &rack in &self.racks {
            per_shard[self.rack_to_shard[&rack]].push((rack, load_of(rack)));
        }
        let (done_tx, done_rx) = unbounded::<()>();
        let mut expected = 0;
        for (shard, loads) in self.shards.iter().zip(per_shard) {
            if shard
                .tx
                .send(Request::Step {
                    dt,
                    loads,
                    input_power,
                    done: done_tx.clone(),
                })
                .is_ok()
            {
                expected += 1;
            }
        }
        drop(done_tx);
        for _ in 0..expected {
            let _ = done_rx.recv();
        }
    }

    /// Stops the workers and returns the agents (for inspection).
    #[must_use]
    pub fn into_agents(mut self) -> Vec<SimRackAgent> {
        self.collect_agents()
    }

    fn collect_agents(&mut self) -> Vec<SimRackAgent> {
        let mut all = Vec::new();
        for shard in &mut self.shards {
            let _ = shard.tx.send(Request::Shutdown);
            if let Some(join) = shard.join.take() {
                if let Ok(agents) = join.join() {
                    all.extend(agents);
                }
            }
        }
        all.sort_by_key(RackAgent::rack);
        all
    }

    fn send(&self, rack: RackId, command: Command) {
        if let Some(&shard) = self.rack_to_shard.get(&rack) {
            let _ = self.shards[shard].tx.send(Request::Command(command));
        }
    }
}

impl Drop for ThreadedFleet {
    fn drop(&mut self) {
        // Join workers so no thread outlives the fleet (C-DTOR-BLOCK: prefer
        // into_agents() for explicit teardown; this is the fallback).
        let _ = self.collect_agents();
    }
}

impl AgentBus for ThreadedFleet {
    fn racks(&self) -> Vec<RackId> {
        self.racks.clone()
    }

    fn read(&self, rack: RackId) -> Option<PowerReading> {
        self.cache.read().get(&rack).copied()
    }

    fn set_charge_override(&mut self, rack: RackId, current: Amperes) {
        self.send(rack, Command::SetOverride(rack, current));
    }

    fn clear_charge_override(&mut self, rack: RackId) {
        self.send(rack, Command::ClearOverride(rack));
    }

    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool) {
        self.send(rack, Command::SetPostponed(rack, postponed));
    }

    fn cap_servers(&mut self, rack: RackId, limit: Watts) {
        self.send(rack, Command::Cap(rack, limit));
    }

    fn uncap_servers(&mut self, rack: RackId) {
        self.send(rack, Command::Uncap(rack));
    }
}

/// Worker body: apply commands and step requests until shutdown.
fn shard_main(
    mut agents: Vec<SimRackAgent>,
    rx: &Receiver<Request>,
    cache: &RwLock<HashMap<RackId, PowerReading>>,
) -> Vec<SimRackAgent> {
    fn find(agents: &mut [SimRackAgent], rack: RackId) -> Option<&mut SimRackAgent> {
        agents.iter_mut().find(|a| a.rack() == rack)
    }
    while let Ok(request) = rx.recv() {
        match request {
            Request::Command(command) => match command {
                Command::SetOverride(rack, current) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.set_charge_override(current);
                    }
                }
                Command::ClearOverride(rack) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.clear_charge_override();
                    }
                }
                Command::SetPostponed(rack, postponed) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.set_charge_postponed(postponed);
                    }
                }
                Command::Cap(rack, limit) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.cap_servers(limit);
                    }
                }
                Command::Uncap(rack) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.uncap_servers();
                    }
                }
            },
            Request::Step {
                dt,
                loads,
                input_power,
                done,
            } => {
                {
                    let _span = tspan!("shard.step", "fleet");
                    for (rack, load) in loads {
                        if let Some(a) = find(&mut agents, rack) {
                            a.set_offered_load(load);
                            a.set_input_power(input_power);
                            a.step(dt);
                        }
                    }
                }
                {
                    let _span = tspan!("shard.cache_refresh", "fleet");
                    let mut snapshot = cache.write();
                    for a in &agents {
                        snapshot.insert(a.rack(), a.read());
                    }
                }
                let _ = done.send(());
            }
            Request::Shutdown => break,
        }
    }
    agents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::InMemoryBus;
    use crate::controller::{Controller, ControllerConfig, Strategy};
    use recharge_units::{DeviceId, Priority, SimTime};

    fn agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect()
    }

    #[test]
    fn threaded_fleet_matches_in_memory_bus() {
        // Drive identical command/step sequences through both transports and
        // compare every reading.
        let mut threaded = ThreadedFleet::spawn(agents(7), 3);
        let mut local = InMemoryBus::new(agents(7));

        let sequence: Vec<(f64, bool)> =
            vec![(30.0, true), (45.0, false), (1.0, true), (60.0, true)];
        for (secs, power) in sequence {
            threaded.step_all(Seconds::new(secs), |_| Watts::from_kilowatts(6.0), power);
            for a in local.agents_mut() {
                a.set_offered_load(Watts::from_kilowatts(6.0));
                a.set_input_power(power);
                a.step(Seconds::new(secs));
            }
        }
        threaded.set_charge_override(RackId::new(2), Amperes::new(1.5));
        local.set_charge_override(RackId::new(2), Amperes::new(1.5));
        threaded.step_all(Seconds::new(10.0), |_| Watts::from_kilowatts(6.0), true);
        for a in local.agents_mut() {
            a.step(Seconds::new(10.0));
        }

        for i in 0..7 {
            let rack = RackId::new(i);
            let t = threaded.read(rack).expect("threaded reading");
            let l = local.read(rack).expect("local reading");
            assert_eq!(t.bbu_state, l.bbu_state, "rack {rack}");
            assert!(
                (t.recharge_power - l.recharge_power).abs() < Watts::new(1e-6),
                "rack {rack}: {} vs {}",
                t.recharge_power,
                l.recharge_power
            );
            assert_eq!(t.event_dod, l.event_dod, "rack {rack}");
        }
        let back = threaded.into_agents();
        assert_eq!(back.len(), 7);
    }

    #[test]
    fn controller_runs_unchanged_over_threads() {
        let mut fleet = ThreadedFleet::spawn(agents(6), 2);
        let mut controller = Controller::new(
            ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
            Strategy::PriorityAware,
        );
        // Open transition, then coordinate.
        fleet.step_all(Seconds::new(60.0), |_| Watts::from_kilowatts(6.0), false);
        fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.0), true);
        let report = controller.tick(SimTime::from_secs(61.0), &mut fleet);
        assert!(report.overrides_sent > 0);

        // The overrides physically landed on the worker threads.
        fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.0), true);
        let commanded = controller.commanded_currents();
        let agents = fleet.into_agents();
        for agent in agents {
            let want = commanded[&agent.rack()];
            assert_eq!(agent.battery().setpoint(), want, "rack {}", agent.rack());
        }
    }

    #[test]
    fn reads_are_available_before_first_step() {
        let fleet = ThreadedFleet::spawn(agents(3), 1);
        assert_eq!(fleet.racks().len(), 3);
        let reading = fleet.read(RackId::new(0)).expect("primed cache");
        assert!(reading.input_power_present);
        drop(fleet); // Drop joins cleanly.
    }

    #[test]
    fn unknown_rack_reads_none_and_commands_are_ignored() {
        let mut fleet = ThreadedFleet::spawn(agents(2), 2);
        assert!(fleet.read(RackId::new(9)).is_none());
        fleet.cap_servers(RackId::new(9), Watts::ZERO);
        fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.0), true);
        assert_eq!(fleet.into_agents().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ThreadedFleet::spawn(agents(1), 0);
    }
}
