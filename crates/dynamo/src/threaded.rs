//! A threaded agent fleet: the distributed shape of the production system.
//!
//! Production Dynamo is a mesh of per-rack agents polled by controllers over
//! RPC; telemetry lands in a monitoring store the controllers read. This
//! module gives the simulator the same shape in-process: agents live on
//! sharded worker threads, **commands** travel over channels, and **reads**
//! come from a shared telemetry snapshot updated after every physical step —
//! so a controller never blocks on an agent round-trip.
//!
//! # Batched stepping and the barrier protocol
//!
//! Telemetry profiling showed that at small `dt` the dominant cost of
//! [`ThreadedFleet::step_all`] is not physics but coordination: one channel
//! send + worker wakeup + ack per shard per tick. Two mechanisms remove it:
//!
//! 1. **Batched submission** ([`ThreadedFleet::step_batch`]): all physical
//!    sub-steps between consecutive controller interventions travel in a
//!    single [`StepFrame`] per shard — one round-trip regardless of how many
//!    sub-steps the frame carries. Commands are only ever sent between
//!    frames (the coordinator is single-threaded and each shard channel is
//!    FIFO), so a batch boundary is exactly a command-flush boundary.
//! 2. **Barrier synchronization**: instead of allocating an
//!    `unbounded::<()>` ack channel per call, every worker arrives at a
//!    shared [`CountdownLatch`] after finishing its frame; the coordinator
//!    waits for all arrivals and then reclaims the frame's load buffers for
//!    the next call (workers drop their handle *before* arriving, so the
//!    coordinator's reclaim never contends).
//!
//! The [`ThreadedFleet`] implements [`AgentBus`], so the same
//! [`Controller`](crate::Controller) drives it unchanged.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use recharge_telemetry::tspan;
use recharge_units::{Amperes, RackId, Seconds, Watts};

use crate::agent::{RackAgent, SimRackAgent};
use crate::bus::AgentBus;
use crate::messages::PowerReading;

/// A command routed to the shard owning a rack.
enum Command {
    SetOverride(RackId, Amperes),
    ClearOverride(RackId),
    SetPostponed(RackId, bool),
    Cap(RackId, Watts),
    Uncap(RackId),
}

/// One batch of physical sub-steps, shared read-only with every shard.
///
/// Loads are stored per shard in sub-step-major order
/// (`loads[shard][substep * shard_len + slot]`), where `slot` is the agent's
/// fixed position within its shard — workers index positionally and never
/// search by rack id on the hot path. The buffers are reclaimed by the
/// coordinator after the barrier and reused across calls.
struct StepFrame {
    /// Duration of each sub-step.
    dt: Seconds,
    /// Fleet-wide input-power state per sub-step; its length is the batch
    /// size.
    input_power: Vec<bool>,
    /// Per-shard offered loads, sub-step-major.
    loads: Vec<Vec<Watts>>,
}

impl Default for StepFrame {
    fn default() -> Self {
        StepFrame {
            dt: Seconds::ZERO,
            input_power: Vec::new(),
            loads: Vec::new(),
        }
    }
}

/// A reusable countdown barrier: workers [`arrive`](Self::arrive), the
/// coordinator [`wait`](Self::wait)s for an expected count and resets it.
///
/// Shared with the sharded event backend, which runs the same
/// frame-fan-out/barrier protocol over its own frame type.
///
/// (The vendored `parking_lot` carries no `Condvar`, so this sits on
/// `std::sync`; the mutex guards a single counter and is never held across
/// work.)
pub(crate) struct CountdownLatch {
    arrived: Mutex<usize>,
    all_done: Condvar,
}

impl CountdownLatch {
    pub(crate) fn new() -> Self {
        CountdownLatch {
            arrived: Mutex::new(0),
            all_done: Condvar::new(),
        }
    }

    /// Records one arrival and wakes the coordinator.
    pub(crate) fn arrive(&self) {
        let mut arrived = self.arrived.lock().expect("latch poisoned");
        *arrived += 1;
        self.all_done.notify_all();
    }

    /// Blocks until `expected` arrivals have been recorded, then resets the
    /// counter for the next frame.
    pub(crate) fn wait(&self, expected: usize) {
        let mut arrived = self.arrived.lock().expect("latch poisoned");
        while *arrived < expected {
            arrived = self.all_done.wait(arrived).expect("latch poisoned");
        }
        *arrived = 0;
    }
}

/// A request processed by a shard worker.
enum Request {
    Command(Command),
    /// Advance every agent of the shard through the frame's sub-steps,
    /// refresh the telemetry cache once, then arrive at the latch.
    StepBatch(Arc<StepFrame>),
    Shutdown,
}

struct Shard {
    tx: Sender<Request>,
    /// The shard's racks in slot order (matches the worker's agent order).
    racks: Vec<RackId>,
    join: Option<JoinHandle<Vec<SimRackAgent>>>,
}

/// A fleet of [`SimRackAgent`]s running on worker threads behind a telemetry
/// snapshot.
///
/// # Examples
///
/// ```
/// use recharge_dynamo::{AgentBus, SimRackAgent, ThreadedFleet};
/// use recharge_units::{Priority, RackId, Seconds, Watts};
///
/// let agents = (0..8)
///     .map(|i| SimRackAgent::builder(RackId::new(i), Priority::P2).build())
///     .collect();
/// let mut fleet = ThreadedFleet::spawn(agents, 4);
/// fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.0), true);
/// // Or: submit several sub-steps in one round-trip per shard.
/// fleet.step_batch(Seconds::new(1.0), &[true, true, false], |_, _| {
///     Watts::from_kilowatts(6.0)
/// });
/// assert!(fleet.read(RackId::new(3)).is_some());
/// let agents = fleet.into_agents(); // clean shutdown
/// assert_eq!(agents.len(), 8);
/// ```
pub struct ThreadedFleet {
    shards: Vec<Shard>,
    rack_to_shard: HashMap<RackId, usize>,
    racks: Vec<RackId>,
    cache: Arc<RwLock<HashMap<RackId, PowerReading>>>,
    latch: Arc<CountdownLatch>,
    /// The previous frame's buffers, reclaimed after the barrier for reuse.
    spare: Option<StepFrame>,
}

impl ThreadedFleet {
    /// Spawns worker threads owning the given agents round-robin. The
    /// requested shard count is clamped to `[1, agents.len()]` (a lone empty
    /// shard when there are no agents), so neither zero nor an excess of
    /// shards spawns degenerate workers. The telemetry cache is primed so
    /// reads work before the first step.
    #[must_use]
    pub fn spawn(agents: Vec<SimRackAgent>, shard_count: usize) -> Self {
        let shard_count = shard_count.clamp(1, agents.len().max(1));
        let cache: Arc<RwLock<HashMap<RackId, PowerReading>>> = Arc::new(RwLock::new(
            agents.iter().map(|a| (a.rack(), a.read())).collect(),
        ));
        let racks: Vec<RackId> = agents.iter().map(RackAgent::rack).collect();
        let latch = Arc::new(CountdownLatch::new());

        // Distribute agents round-robin across shards.
        let mut buckets: Vec<Vec<SimRackAgent>> = (0..shard_count).map(|_| Vec::new()).collect();
        let mut rack_to_shard = HashMap::new();
        for (i, agent) in agents.into_iter().enumerate() {
            let shard = i % shard_count;
            rack_to_shard.insert(agent.rack(), shard);
            buckets[shard].push(agent);
        }

        let shards = buckets
            .into_iter()
            .enumerate()
            .map(|(index, bucket)| {
                let (tx, rx) = unbounded::<Request>();
                let cache = Arc::clone(&cache);
                let latch = Arc::clone(&latch);
                let shard_racks: Vec<RackId> = bucket.iter().map(RackAgent::rack).collect();
                let join =
                    std::thread::spawn(move || shard_main(bucket, index, &rx, &cache, &latch));
                Shard {
                    tx,
                    racks: shard_racks,
                    join: Some(join),
                }
            })
            .collect();

        ThreadedFleet {
            shards,
            rack_to_shard,
            racks,
            cache,
            latch,
            spare: None,
        }
    }

    /// Advances every agent by `dt`: offered loads come from `load_of`,
    /// `input_power` applies fleet-wide (an MSB-level open transition).
    /// Blocks until all shards have stepped and refreshed the cache.
    ///
    /// Equivalent to a one-sub-step [`step_batch`](Self::step_batch).
    pub fn step_all<F>(&mut self, dt: Seconds, load_of: F, input_power: bool)
    where
        F: Fn(RackId) -> Watts,
    {
        self.step_batch(dt, &[input_power], |rack, _| load_of(rack));
    }

    /// Advances every agent through `input_power.len()` sub-steps of `dt`
    /// each, in **one channel round-trip per shard**. `load_of(rack, i)` is
    /// the offered load of `rack` during sub-step `i`; `input_power[i]` is
    /// the fleet-wide input-power state during sub-step `i`.
    ///
    /// Results are bit-identical to calling [`step_all`](Self::step_all) once
    /// per sub-step: each worker runs the same per-agent
    /// `set_offered_load → set_input_power → step` sequence in the same
    /// order, and the telemetry cache refresh only moves from per-sub-step to
    /// per-batch — unobservable, because the coordinator (and hence the
    /// controller) only reads the cache between batches.
    pub fn step_batch<F>(&mut self, dt: Seconds, input_power: &[bool], load_of: F)
    where
        F: Fn(RackId, usize) -> Watts,
    {
        if input_power.is_empty() {
            return;
        }
        // The coordinator-side span brackets fan-out + barrier; each worker
        // separately records `shard.step` and `shard.cache_refresh`, so the
        // gap between this span and the workers' busy time is the per-batch
        // channel/wakeup overhead.
        let _step_span = tspan!("fleet.step_all", "fleet");
        let mut frame = self.spare.take().unwrap_or_default();
        frame.dt = dt;
        frame.input_power.clear();
        frame.input_power.extend_from_slice(input_power);
        frame.loads.resize(self.shards.len(), Vec::new());
        for (shard, buf) in self.shards.iter().zip(frame.loads.iter_mut()) {
            buf.clear();
            buf.reserve(input_power.len() * shard.racks.len());
            for i in 0..input_power.len() {
                for &rack in &shard.racks {
                    buf.push(load_of(rack, i));
                }
            }
        }
        let frame = Arc::new(frame);
        let mut expected = 0;
        for shard in &self.shards {
            if shard
                .tx
                .send(Request::StepBatch(Arc::clone(&frame)))
                .is_ok()
            {
                expected += 1;
            }
        }
        {
            let _wait_span = tspan!("fleet.barrier_wait", "fleet");
            self.latch.wait(expected);
        }
        // Every worker dropped its handle before arriving, so the frame is
        // uniquely owned again and its buffers carry over to the next call.
        self.spare = Arc::try_unwrap(frame).ok();
    }

    /// Stops the workers and returns the agents (for inspection).
    #[must_use]
    pub fn into_agents(mut self) -> Vec<SimRackAgent> {
        self.collect_agents()
    }

    fn collect_agents(&mut self) -> Vec<SimRackAgent> {
        let mut all = Vec::new();
        for shard in &mut self.shards {
            let _ = shard.tx.send(Request::Shutdown);
            if let Some(join) = shard.join.take() {
                if let Ok(agents) = join.join() {
                    all.extend(agents);
                }
            }
        }
        all.sort_by_key(RackAgent::rack);
        all
    }

    fn send(&self, rack: RackId, command: Command) {
        if let Some(&shard) = self.rack_to_shard.get(&rack) {
            let _ = self.shards[shard].tx.send(Request::Command(command));
        }
    }
}

impl Drop for ThreadedFleet {
    fn drop(&mut self) {
        // Join workers so no thread outlives the fleet (C-DTOR-BLOCK: prefer
        // into_agents() for explicit teardown; this is the fallback).
        let _ = self.collect_agents();
    }
}

impl AgentBus for ThreadedFleet {
    fn racks(&self) -> Vec<RackId> {
        self.racks.clone()
    }

    fn read(&self, rack: RackId) -> Option<PowerReading> {
        self.cache.read().get(&rack).copied()
    }

    fn set_charge_override(&mut self, rack: RackId, current: Amperes) {
        self.send(rack, Command::SetOverride(rack, current));
    }

    fn clear_charge_override(&mut self, rack: RackId) {
        self.send(rack, Command::ClearOverride(rack));
    }

    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool) {
        self.send(rack, Command::SetPostponed(rack, postponed));
    }

    fn cap_servers(&mut self, rack: RackId, limit: Watts) {
        self.send(rack, Command::Cap(rack, limit));
    }

    fn uncap_servers(&mut self, rack: RackId) {
        self.send(rack, Command::Uncap(rack));
    }
}

/// Worker body: apply commands and step frames until shutdown.
fn shard_main(
    mut agents: Vec<SimRackAgent>,
    shard: usize,
    rx: &Receiver<Request>,
    cache: &RwLock<HashMap<RackId, PowerReading>>,
    latch: &CountdownLatch,
) -> Vec<SimRackAgent> {
    fn find(agents: &mut [SimRackAgent], rack: RackId) -> Option<&mut SimRackAgent> {
        agents.iter_mut().find(|a| a.rack() == rack)
    }
    while let Ok(request) = rx.recv() {
        match request {
            Request::Command(command) => match command {
                Command::SetOverride(rack, current) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.set_charge_override(current);
                    }
                }
                Command::ClearOverride(rack) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.clear_charge_override();
                    }
                }
                Command::SetPostponed(rack, postponed) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.set_charge_postponed(postponed);
                    }
                }
                Command::Cap(rack, limit) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.cap_servers(limit);
                    }
                }
                Command::Uncap(rack) => {
                    if let Some(a) = find(&mut agents, rack) {
                        a.uncap_servers();
                    }
                }
            },
            Request::StepBatch(frame) => {
                let shard_len = agents.len();
                let loads = &frame.loads[shard];
                {
                    let _span = tspan!("shard.step", "fleet");
                    for (i, &input_power) in frame.input_power.iter().enumerate() {
                        for (slot, a) in agents.iter_mut().enumerate() {
                            a.set_offered_load(loads[i * shard_len + slot]);
                            a.set_input_power(input_power);
                            a.step(frame.dt);
                        }
                    }
                }
                {
                    let _span = tspan!("shard.cache_refresh", "fleet");
                    let mut snapshot = cache.write();
                    for a in &agents {
                        snapshot.insert(a.rack(), a.read());
                    }
                }
                // Release the frame *before* arriving so the coordinator can
                // reclaim its buffers the moment the barrier opens.
                drop(frame);
                latch.arrive();
            }
            Request::Shutdown => break,
        }
    }
    agents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::InMemoryBus;
    use crate::controller::{Controller, ControllerConfig, Strategy};
    use recharge_units::{DeviceId, Priority, SimTime};

    fn agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect()
    }

    #[test]
    fn threaded_fleet_matches_in_memory_bus() {
        // Drive identical command/step sequences through both transports and
        // compare every reading.
        let mut threaded = ThreadedFleet::spawn(agents(7), 3);
        let mut local = InMemoryBus::new(agents(7));

        let sequence: Vec<(f64, bool)> =
            vec![(30.0, true), (45.0, false), (1.0, true), (60.0, true)];
        for (secs, power) in sequence {
            threaded.step_all(Seconds::new(secs), |_| Watts::from_kilowatts(6.0), power);
            for a in local.agents_mut() {
                a.set_offered_load(Watts::from_kilowatts(6.0));
                a.set_input_power(power);
                a.step(Seconds::new(secs));
            }
        }
        threaded.set_charge_override(RackId::new(2), Amperes::new(1.5));
        local.set_charge_override(RackId::new(2), Amperes::new(1.5));
        threaded.step_all(Seconds::new(10.0), |_| Watts::from_kilowatts(6.0), true);
        for a in local.agents_mut() {
            a.step(Seconds::new(10.0));
        }

        for i in 0..7 {
            let rack = RackId::new(i);
            let t = threaded.read(rack).expect("threaded reading");
            let l = local.read(rack).expect("local reading");
            assert_eq!(t.bbu_state, l.bbu_state, "rack {rack}");
            assert!(
                (t.recharge_power - l.recharge_power).abs() < Watts::new(1e-6),
                "rack {rack}: {} vs {}",
                t.recharge_power,
                l.recharge_power
            );
            assert_eq!(t.event_dod, l.event_dod, "rack {rack}");
        }
        let back = threaded.into_agents();
        assert_eq!(back.len(), 7);
    }

    #[test]
    fn batched_steps_match_per_tick_steps() {
        // One StepBatch per round must be bit-identical to a per-tick loop,
        // including per-sub-step load and input-power variation.
        let mut batched = ThreadedFleet::spawn(agents(9), 4);
        let mut per_tick = ThreadedFleet::spawn(agents(9), 2);
        let load = |rack: RackId, i: usize| {
            Watts::from_kilowatts(5.0 + 0.25 * f64::from(rack.index()) + 0.1 * i as f64)
        };
        for round in 0..3 {
            let power: Vec<bool> = (0..10).map(|i| (i + round) % 7 != 3).collect();
            batched.step_batch(Seconds::new(1.0), &power, load);
            for (i, &p) in power.iter().enumerate() {
                per_tick.step_all(Seconds::new(1.0), |rack| load(rack, i), p);
            }
        }
        let a = batched.into_agents();
        let b = per_tick.into_agents();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rack(), y.rack());
            let (rx, ry) = (x.read(), y.read());
            assert_eq!(rx.bbu_state, ry.bbu_state, "rack {}", x.rack());
            assert_eq!(rx.recharge_power, ry.recharge_power, "rack {}", x.rack());
            assert_eq!(rx.it_load, ry.it_load, "rack {}", x.rack());
            assert_eq!(rx.event_dod, ry.event_dod, "rack {}", x.rack());
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut fleet = ThreadedFleet::spawn(agents(2), 2);
        let before = fleet.read(RackId::new(0)).unwrap();
        fleet.step_batch(Seconds::new(1.0), &[], |_, _| Watts::ZERO);
        let after = fleet.read(RackId::new(0)).unwrap();
        assert_eq!(before.bbu_state, after.bbu_state);
        assert_eq!(before.it_load, after.it_load);
    }

    #[test]
    fn controller_runs_unchanged_over_threads() {
        let mut fleet = ThreadedFleet::spawn(agents(6), 2);
        let mut controller = Controller::new(
            ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
            Strategy::PriorityAware,
        );
        // Open transition, then coordinate.
        fleet.step_all(Seconds::new(60.0), |_| Watts::from_kilowatts(6.0), false);
        fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.0), true);
        let report = controller.tick(SimTime::from_secs(61.0), &mut fleet);
        assert!(report.overrides_sent > 0);

        // The overrides physically landed on the worker threads.
        fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.0), true);
        let commanded = controller.commanded_currents();
        let agents = fleet.into_agents();
        for agent in agents {
            let want = commanded[&agent.rack()];
            assert_eq!(agent.battery().setpoint(), want, "rack {}", agent.rack());
        }
    }

    #[test]
    fn reads_are_available_before_first_step() {
        let fleet = ThreadedFleet::spawn(agents(3), 1);
        assert_eq!(fleet.racks().len(), 3);
        let reading = fleet.read(RackId::new(0)).expect("primed cache");
        assert!(reading.input_power_present);
        drop(fleet); // Drop joins cleanly.
    }

    #[test]
    fn unknown_rack_reads_none_and_commands_are_ignored() {
        let mut fleet = ThreadedFleet::spawn(agents(2), 2);
        assert!(fleet.read(RackId::new(9)).is_none());
        fleet.cap_servers(RackId::new(9), Watts::ZERO);
        fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.0), true);
        assert_eq!(fleet.into_agents().len(), 2);
    }

    #[test]
    fn degenerate_shard_counts_clamp() {
        // Zero shards clamps up to one worker; an excess clamps down to one
        // shard per agent — both still step and read correctly.
        for requested in [0, 99] {
            let mut fleet = ThreadedFleet::spawn(agents(2), requested);
            fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.0), true);
            assert!(fleet.read(RackId::new(1)).is_some());
            assert_eq!(fleet.into_agents().len(), 2);
        }
        // No agents at all still yields a working (empty) fleet.
        let fleet = ThreadedFleet::spawn(Vec::new(), 4);
        assert!(fleet.racks().is_empty());
    }
}
