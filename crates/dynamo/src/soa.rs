//! Struct-of-arrays fleet physics: the campus-scale execution backend.
//!
//! The object path dispatches every rack through
//! `SimRackAgent` → `RackBatterySystem` → `Bbu` → `BbuPack`, four layers of
//! method calls and scattered structs per rack per sub-step. At the paper's
//! 316 racks that is noise; at a 100k-rack campus it is the simulator's whole
//! budget. [`SoaBackend`] flattens the fleet into contiguous arrays — one
//! `soc[]`, `event_dod[]`, `automatic[]`, `offered[]`, … per shard, plus one
//! packed flag byte per rack — and steps them in a single branch-light pass.
//!
//! **Equivalence argument.** The per-rack state transition is *the same
//! code*: both paths call [`recharge_battery::kernel`] for the CC-CV and
//! discharge arithmetic, and the SoA pass replays the exact
//! `set_offered_load → set_input_power → step` sequence of
//! [`SerialBackend`](crate::SerialBackend) per rack per sub-step. Racks do
//! not interact during physics, so per-rack state — and therefore every
//! [`PowerReading`] and downstream `RunMetrics` — is bit-identical to the
//! object path regardless of shard count. The backend-equivalence matrix and
//! a proptest over random command schedules enforce this.
//!
//! Flag packing (one `u8` per rack):
//!
//! ```text
//! bit 0-1  BBU state      00 fully charged, 01 charging,
//!                         10 discharging,   11 fully discharged
//! bit 2    charge_terminated   (the pack's completion latch)
//! bit 3    postponed           (charging suspended entirely)
//! bit 4    override active     (override_a[] holds the clamped setpoint)
//! bit 5    cap active          (cap[] holds the server power cap)
//! bit 6    input power present
//! ```

use std::collections::HashMap;

use recharge_battery::kernel;
use recharge_battery::{BbuParams, BbuState, ChargePhase, ChargePolicy};
use recharge_telemetry::tspan;
use recharge_units::{Amperes, Dod, Priority, RackId, Seconds, Soc, Watts};

use crate::agent::{RackAgent, SimRackAgent};
use crate::backend::FleetBackend;
use crate::bus::AgentBus;
use crate::messages::PowerReading;

const STATE_MASK: u8 = 0b0000_0011;
const STATE_FULLY_CHARGED: u8 = 0b00;
const STATE_CHARGING: u8 = 0b01;
const STATE_DISCHARGING: u8 = 0b10;
const STATE_FULLY_DISCHARGED: u8 = 0b11;
const FLAG_TERMINATED: u8 = 1 << 2;
const FLAG_POSTPONED: u8 = 1 << 3;
const FLAG_OVERRIDE: u8 = 1 << 4;
const FLAG_CAPPED: u8 = 1 << 5;
const FLAG_INPUT_POWER: u8 = 1 << 6;

/// What [`SoaBackend::into_parts`] yields: the shards, the fleet-order map,
/// and the rack → (shard, slot) routing index.
pub(crate) type SoaParts = (
    Vec<SoaShard>,
    Vec<(usize, usize)>,
    HashMap<RackId, (usize, usize)>,
);

fn state_bits(state: BbuState) -> u8 {
    match state {
        BbuState::FullyCharged => STATE_FULLY_CHARGED,
        BbuState::Charging => STATE_CHARGING,
        BbuState::Discharging => STATE_DISCHARGING,
        BbuState::FullyDischarged => STATE_FULLY_DISCHARGED,
    }
}

fn bits_state(bits: u8) -> BbuState {
    match bits & STATE_MASK {
        STATE_FULLY_CHARGED => BbuState::FullyCharged,
        STATE_CHARGING => BbuState::Charging,
        STATE_DISCHARGING => BbuState::Discharging,
        _ => BbuState::FullyDischarged,
    }
}

/// One shard of the fleet: contiguous parallel arrays over its racks.
///
/// All racks in a shard share one [`BbuParams`] and [`ChargePolicy`] — the
/// construction pass partitions the fleet into homogeneous groups first — so
/// parameters live once per shard instead of once per rack.
#[derive(Debug, Clone)]
pub(crate) struct SoaShard {
    params: BbuParams,
    policy: ChargePolicy,
    /// `bbus_per_rack` as the f64 the load-share division uses.
    bbus: f64,
    racks: Vec<RackId>,
    priority: Vec<Priority>,
    soc: Vec<f64>,
    event_dod: Vec<f64>,
    /// Automatic setpoint (amps) latched at the last charge-sequence start.
    automatic: Vec<f64>,
    /// Override setpoint (amps); meaningful iff `FLAG_OVERRIDE`.
    override_a: Vec<f64>,
    /// Offered IT load (watts) from the trace.
    offered: Vec<f64>,
    /// Server power cap (watts); meaningful iff `FLAG_CAPPED`.
    cap: Vec<f64>,
    /// Rack recharge wall power (watts) after the last sub-step.
    recharge: Vec<f64>,
    flags: Vec<u8>,
}

impl SoaShard {
    fn from_agents(agents: &[&SimRackAgent], params: BbuParams, policy: ChargePolicy) -> Self {
        let n = agents.len();
        let mut shard = SoaShard {
            params,
            policy,
            bbus: f64::from(params.bbus_per_rack),
            racks: Vec::with_capacity(n),
            priority: Vec::with_capacity(n),
            soc: Vec::with_capacity(n),
            event_dod: Vec::with_capacity(n),
            automatic: Vec::with_capacity(n),
            override_a: Vec::with_capacity(n),
            offered: Vec::with_capacity(n),
            cap: Vec::with_capacity(n),
            recharge: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
        };
        for &agent in agents {
            let bbu = agent.battery().bbu();
            let charger = bbu.charger();
            shard.racks.push(agent.rack());
            shard.priority.push(agent.priority());
            shard.soc.push(bbu.soc().value());
            shard.event_dod.push(bbu.event_dod().value());
            shard.automatic.push(charger.automatic_current().as_amps());
            shard
                .override_a
                .push(charger.override_current().map_or(0.0, Amperes::as_amps));
            shard.offered.push(agent.offered_load().as_watts());
            shard
                .cap
                .push(agent.cap_limit().map_or(0.0, Watts::as_watts));
            // `read()` reports the rack recharge power gated on input power —
            // exactly what an object-path agent would publish from here on.
            shard.recharge.push(agent.read().recharge_power.as_watts());
            let mut flags = state_bits(bbu.state());
            if bbu.pack().is_fully_charged() {
                flags |= FLAG_TERMINATED;
            }
            if charger.is_postponed() {
                flags |= FLAG_POSTPONED;
            }
            if charger.override_current().is_some() {
                flags |= FLAG_OVERRIDE;
            }
            if agent.cap_limit().is_some() {
                flags |= FLAG_CAPPED;
            }
            if agent.has_input_power() {
                flags |= FLAG_INPUT_POWER;
            }
            shard.flags.push(flags);
        }
        shard
    }

    pub(crate) fn len(&self) -> usize {
        self.racks.len()
    }

    /// The rack occupying `slot` (fleet identity, for load lookups).
    pub(crate) fn rack_at(&self, slot: usize) -> RackId {
        self.racks[slot]
    }

    /// The priority of the rack in `slot` (flight-recorder provenance).
    pub(crate) fn priority_at(&self, slot: usize) -> Priority {
        self.priority[slot]
    }

    /// Whether the next sub-step for this rack is a provable no-op given
    /// unchanged input power and an arbitrary offered load.
    ///
    /// This is the event-driven backend's *entire* skip authority: a rack may
    /// be fast-forwarded only while this predicate holds, because then the
    /// dense sub-step would write nothing except `offered[]` (patched up
    /// separately by [`touch_offered`](Self::touch_offered)). The cases:
    ///
    /// - `FullyCharged` / `FullyDischarged` with `recharge == 0`: the dense
    ///   pass only re-zeroes `recharge`. (A rack *entering* a settled state
    ///   still reports its final wall power for that boundary, so it needs
    ///   one more dense sub-step before it can sleep.)
    /// - `Charging`, not terminated, with a non-positive setpoint (postponed):
    ///   `kernel::charge_step` at zero amps moves nothing. A terminated
    ///   charging rack is excluded — its next sub-step flips the state latch
    ///   to `FullyCharged`, which is observable.
    /// - `Discharging` never sleeps: drain is load-dependent every sub-step.
    ///
    /// Input-power *edges* invalidate sleep; the event backend wakes all
    /// racks on every edge, so the predicate can assume power is steady.
    pub(crate) fn is_quiescent(&self, slot: usize) -> bool {
        if self.recharge[slot] != 0.0 {
            return false;
        }
        match self.flags[slot] & STATE_MASK {
            STATE_FULLY_CHARGED | STATE_FULLY_DISCHARGED => true,
            STATE_CHARGING => {
                self.flags[slot] & FLAG_TERMINATED == 0 && self.setpoint(slot) <= Amperes::ZERO
            }
            _ => false,
        }
    }

    /// Replays the only observable effect a skipped sub-step would have had:
    /// the `offered[]` trace write. Idempotent with the dense pass's last
    /// write for the same sub-step.
    pub(crate) fn touch_offered(&mut self, slot: usize, load: Watts) {
        self.offered[slot] = load.max(Watts::ZERO).as_watts();
    }

    /// The IT load actually drawn after capping — `SimRackAgent::effective_load`.
    fn effective_load(&self, slot: usize) -> Watts {
        let offered = Watts::new(self.offered[slot]);
        if self.flags[slot] & FLAG_CAPPED != 0 {
            offered.min(Watts::new(self.cap[slot]))
        } else {
            offered
        }
    }

    /// The effective charging setpoint — `Charger::setpoint`.
    fn setpoint(&self, slot: usize) -> Amperes {
        let flags = self.flags[slot];
        if flags & FLAG_POSTPONED != 0 {
            Amperes::ZERO
        } else if flags & FLAG_OVERRIDE != 0 {
            Amperes::new(self.override_a[slot])
        } else {
            Amperes::new(self.automatic[slot])
        }
    }

    fn set_state(&mut self, slot: usize, state: u8) {
        self.flags[slot] = (self.flags[slot] & !STATE_MASK) | state;
    }

    /// `Bbu::input_power_lost`: start carrying the load.
    fn input_power_lost(&mut self, slot: usize) {
        match self.flags[slot] & STATE_MASK {
            STATE_FULLY_CHARGED | STATE_CHARGING => self.set_state(slot, STATE_DISCHARGING),
            _ => {}
        }
    }

    /// `Bbu::input_power_restored`: latch the event DOD, recompute the
    /// automatic setpoint, begin (or skip) the charge sequence.
    fn input_power_restored(&mut self, slot: usize) {
        match self.flags[slot] & STATE_MASK {
            STATE_DISCHARGING | STATE_FULLY_DISCHARGED => {
                let dod = Soc::new(self.soc[slot]).to_dod();
                self.event_dod[slot] = dod.value();
                self.automatic[slot] = self.policy.automatic_current(dod).as_amps();
                if self.flags[slot] & FLAG_TERMINATED != 0 {
                    // Possible only for a zero-length or zero-load event.
                    self.set_state(slot, STATE_FULLY_CHARGED);
                } else {
                    self.set_state(slot, STATE_CHARGING);
                }
            }
            _ => {}
        }
    }

    /// One rack's sub-step: the `set_offered_load → set_input_power → step`
    /// sequence of the object path, over array state.
    pub(crate) fn substep(&mut self, slot: usize, load: Watts, power: bool, dt: Seconds) {
        self.offered[slot] = load.max(Watts::ZERO).as_watts();

        let had_power = self.flags[slot] & FLAG_INPUT_POWER != 0;
        if power != had_power {
            if power {
                self.flags[slot] |= FLAG_INPUT_POWER;
                self.input_power_restored(slot);
            } else {
                self.flags[slot] &= !FLAG_INPUT_POWER;
                self.input_power_lost(slot);
            }
        }

        match self.flags[slot] & STATE_MASK {
            STATE_FULLY_CHARGED | STATE_FULLY_DISCHARGED => {
                self.recharge[slot] = 0.0;
            }
            STATE_DISCHARGING => {
                let share = self.effective_load(slot) / self.bbus;
                let mut terminated = self.flags[slot] & FLAG_TERMINATED != 0;
                let step = kernel::discharge_step(
                    &self.params,
                    &mut self.soc[slot],
                    &mut terminated,
                    share,
                    dt,
                );
                if terminated {
                    self.flags[slot] |= FLAG_TERMINATED;
                } else {
                    self.flags[slot] &= !FLAG_TERMINATED;
                }
                if step.depleted {
                    self.set_state(slot, STATE_FULLY_DISCHARGED);
                }
                self.recharge[slot] = 0.0;
            }
            _ => {
                // STATE_CHARGING
                let setpoint = self.setpoint(slot);
                let mut terminated = self.flags[slot] & FLAG_TERMINATED != 0;
                let step = kernel::charge_step(
                    &self.params,
                    &mut self.soc[slot],
                    &mut terminated,
                    setpoint,
                    dt,
                );
                if terminated {
                    self.flags[slot] |= FLAG_TERMINATED;
                }
                if step.phase == ChargePhase::Complete {
                    self.set_state(slot, STATE_FULLY_CHARGED);
                }
                self.recharge[slot] = (step.wall_power * self.bbus).as_watts();
            }
        }
    }

    /// Runs a whole schedule over this shard (the threaded fan-out path).
    fn run_schedule(&mut self, dt: Seconds, input_power: &[bool], loads: &[Watts]) {
        let n = self.len();
        for (i, &power) in input_power.iter().enumerate() {
            let row = &loads[i * n..(i + 1) * n];
            for (slot, &load) in row.iter().enumerate() {
                self.substep(slot, load, power, dt);
            }
        }
    }

    /// `Charger::set_override` for one slot: clamp to the 1–5 A hardware
    /// range and raise the override flag.
    pub(crate) fn set_override_slot(&mut self, slot: usize, current: Amperes) {
        self.override_a[slot] = current
            .clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE)
            .as_amps();
        self.flags[slot] |= FLAG_OVERRIDE;
    }

    /// `Charger::clear_override` for one slot.
    pub(crate) fn clear_override_slot(&mut self, slot: usize) {
        self.flags[slot] &= !FLAG_OVERRIDE;
    }

    /// `Charger::set_postponed` for one slot.
    pub(crate) fn set_postponed_slot(&mut self, slot: usize, postponed: bool) {
        if postponed {
            self.flags[slot] |= FLAG_POSTPONED;
        } else {
            self.flags[slot] &= !FLAG_POSTPONED;
        }
    }

    /// `SimRackAgent::cap_servers` for one slot.
    pub(crate) fn cap_slot(&mut self, slot: usize, limit: Watts) {
        self.cap[slot] = limit.max(Watts::ZERO).as_watts();
        self.flags[slot] |= FLAG_CAPPED;
    }

    /// `SimRackAgent::uncap_servers` for one slot.
    pub(crate) fn uncap_slot(&mut self, slot: usize) {
        self.flags[slot] &= !FLAG_CAPPED;
    }

    /// `SimRackAgent::read` over array state.
    pub(crate) fn read(&self, slot: usize) -> PowerReading {
        let flags = self.flags[slot];
        let input = flags & FLAG_INPUT_POWER != 0;
        let offered = Watts::new(self.offered[slot]);
        let effective = self.effective_load(slot);
        PowerReading {
            rack: self.racks[slot],
            priority: self.priority[slot],
            input_power_present: input,
            it_load: effective,
            recharge_power: if input {
                Watts::new(self.recharge[slot])
            } else {
                Watts::ZERO
            },
            bbu_state: bits_state(flags),
            event_dod: Dod::new(self.event_dod[slot]),
            dod: Soc::new(self.soc[slot]).to_dod(),
            capped_power: (offered - effective).max(Watts::ZERO),
        }
    }
}

/// The struct-of-arrays fleet backend: serial (`threads == 1`) or sharded
/// over scoped threads, one contiguous chunk of the fleet per shard.
///
/// Implements both [`FleetBackend`] (the tick loop's surface) and
/// [`AgentBus`] (the controller's surface) over the same arrays — there are
/// no per-rack agent objects at all.
///
/// # Examples
///
/// ```
/// use recharge_dynamo::{FleetBackend, SimRackAgent, SoaBackend};
/// use recharge_units::{Priority, RackId, Seconds, Watts};
///
/// let agents = (0..4)
///     .map(|i| SimRackAgent::builder(RackId::new(i), Priority::P2).build())
///     .collect();
/// // A 30-second open transition, then power returns.
/// let mut fleet = SoaBackend::new(agents);
/// fleet.step_schedule(Seconds::new(30.0), &[false, true], &|_, _| {
///     Watts::from_kilowatts(6.0)
/// });
/// assert!(fleet.readings().iter().all(|r| r.is_charging()));
/// ```
pub struct SoaBackend {
    shards: Vec<SoaShard>,
    /// Fleet order → (shard, slot); readings and rack listings replay this so
    /// the outside world sees the original agent order even when the
    /// homogeneous-group partition reshuffled racks across shards.
    order: Vec<(usize, usize)>,
    /// rack → (shard, slot); commands and reads route through here.
    index: HashMap<RackId, (usize, usize)>,
    threaded: bool,
}

impl SoaBackend {
    /// Creates a serial (single-pass) SoA backend over the given agents.
    ///
    /// Heterogeneous fleets are supported: racks are partitioned into
    /// homogeneous groups by `(BbuParams, ChargePolicy)` at construction (in
    /// first-seen order), one or more shards per group. The kernel pass is
    /// untouched; only the shard layout changes. Readings and rack listings
    /// always come back in the original fleet order.
    #[must_use]
    pub fn new(agents: Vec<SimRackAgent>) -> Self {
        SoaBackend::with_shards(agents, 1, false)
    }

    /// Creates a sharded SoA backend: the fleet is split into `shards`
    /// contiguous chunks stepped on scoped threads, a whole schedule per
    /// fan-out (the batched submission model). `shards` clamps to
    /// `[1, agents.len()]`; a heterogeneous fleet may produce more shards
    /// than requested (at least one per homogeneous group).
    #[must_use]
    pub fn sharded(agents: Vec<SimRackAgent>, shards: usize) -> Self {
        SoaBackend::with_shards(agents, shards, true)
    }

    fn with_shards(agents: Vec<SimRackAgent>, shards: usize, threaded: bool) -> Self {
        if agents.is_empty() {
            return SoaBackend {
                shards: Vec::new(),
                order: Vec::new(),
                index: HashMap::new(),
                threaded,
            };
        }

        // Partition fleet positions into homogeneous groups, first-seen
        // order. `BbuParams` is PartialEq-only (f64 fields), so this is a
        // linear scan over the handful of distinct configurations.
        type Group = (BbuParams, ChargePolicy, Vec<usize>);
        let mut groups: Vec<Group> = Vec::new();
        for (pos, agent) in agents.iter().enumerate() {
            let params = *agent.battery().bbu().pack().params();
            let policy = agent.battery().bbu().charger().policy();
            match groups
                .iter_mut()
                .find(|(p, c, _)| *p == params && *c == policy)
            {
                Some((_, _, members)) => members.push(pos),
                None => groups.push((params, policy, vec![pos])),
            }
        }

        // One global chunk size keeps the homogeneous layout identical to
        // the pre-grouping backend: a single group splits into the same
        // contiguous chunks as before.
        let shard_count = shards.clamp(1, agents.len());
        let chunk = agents.len().div_ceil(shard_count);
        let mut built: Vec<SoaShard> = Vec::new();
        let mut order = vec![(0usize, 0usize); agents.len()];
        for (params, policy, members) in &groups {
            for piece in members.chunks(chunk) {
                let refs: Vec<&SimRackAgent> = piece.iter().map(|&pos| &agents[pos]).collect();
                let s = built.len();
                built.push(SoaShard::from_agents(&refs, *params, *policy));
                for (slot, &pos) in piece.iter().enumerate() {
                    order[pos] = (s, slot);
                }
            }
        }

        let mut index = HashMap::with_capacity(agents.len());
        for (s, shard) in built.iter().enumerate() {
            for (slot, &rack) in shard.racks.iter().enumerate() {
                index.insert(rack, (s, slot));
            }
        }
        SoaBackend {
            shards: built,
            order,
            index,
            threaded,
        }
    }

    /// Shared-crate access for the event-driven wrapper.
    pub(crate) fn shards(&self) -> &[SoaShard] {
        &self.shards
    }

    /// Mutable shard access for the event-driven wrapper.
    pub(crate) fn shards_mut(&mut self) -> &mut [SoaShard] {
        &mut self.shards
    }

    /// Routes a rack to its `(shard, slot)` home, if present.
    pub(crate) fn slot_of(&self, rack: RackId) -> Option<(usize, usize)> {
        self.index.get(&rack).copied()
    }

    /// Decomposes the backend into its shards plus the fleet-order and
    /// rack-routing maps — the sharded event backend takes ownership of the
    /// shards (they ping-pong to worker threads) but keeps the same
    /// construction/grouping pass and external ordering.
    pub(crate) fn into_parts(self) -> SoaParts {
        (self.shards, self.order, self.index)
    }

    /// Total racks across all shards.
    #[must_use]
    pub fn rack_count(&self) -> usize {
        self.shards.iter().map(SoaShard::len).sum()
    }

    /// Number of shards the fleet is split into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl FleetBackend for SoaBackend {
    fn name(&self) -> &'static str {
        if self.threaded {
            "soa-sharded"
        } else {
            "soa"
        }
    }

    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    ) {
        let _span = tspan!("fleet.soa_step", "fleet");
        if !self.threaded || self.shards.len() <= 1 {
            for (i, &power) in input_power.iter().enumerate() {
                for shard in &mut self.shards {
                    for slot in 0..shard.len() {
                        let load = load_of(shard.racks[slot], i);
                        shard.substep(slot, load, power, dt);
                    }
                }
            }
            return;
        }

        // `load_of` is not Sync, so materialize each shard's loads up front
        // (substep-major, matching `run_schedule`), then fan the schedule out
        // once — the batched submission model, minus any channels.
        let loads: Vec<Vec<Watts>> = self
            .shards
            .iter()
            .map(|shard| {
                let mut v = Vec::with_capacity(shard.len() * input_power.len());
                for i in 0..input_power.len() {
                    v.extend(shard.racks.iter().map(|&rack| load_of(rack, i)));
                }
                v
            })
            .collect();
        std::thread::scope(|scope| {
            for (shard, shard_loads) in self.shards.iter_mut().zip(&loads) {
                scope.spawn(move || shard.run_schedule(dt, input_power, shard_loads));
            }
        });
    }

    fn readings(&self) -> Vec<PowerReading> {
        // `order` replays the original fleet order, whatever the grouping
        // pass did to the shard layout.
        self.order
            .iter()
            .map(|&(s, slot)| self.shards[s].read(slot))
            .collect()
    }

    fn bus_mut(&mut self) -> &mut dyn AgentBus {
        self
    }
}

impl AgentBus for SoaBackend {
    fn racks(&self) -> Vec<RackId> {
        self.order
            .iter()
            .map(|&(s, slot)| self.shards[s].racks[slot])
            .collect()
    }

    fn read(&self, rack: RackId) -> Option<PowerReading> {
        let &(s, slot) = self.index.get(&rack)?;
        Some(self.shards[s].read(slot))
    }

    fn set_charge_override(&mut self, rack: RackId, current: Amperes) {
        if let Some(&(s, slot)) = self.index.get(&rack) {
            self.shards[s].set_override_slot(slot, current);
        }
    }

    fn clear_charge_override(&mut self, rack: RackId) {
        if let Some(&(s, slot)) = self.index.get(&rack) {
            self.shards[s].clear_override_slot(slot);
        }
    }

    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool) {
        if let Some(&(s, slot)) = self.index.get(&rack) {
            self.shards[s].set_postponed_slot(slot, postponed);
        }
    }

    fn cap_servers(&mut self, rack: RackId, limit: Watts) {
        if let Some(&(s, slot)) = self.index.get(&rack) {
            self.shards[s].cap_slot(slot, limit);
        }
    }

    fn uncap_servers(&mut self, rack: RackId) {
        if let Some(&(s, slot)) = self.index.get(&rack) {
            self.shards[s].uncap_slot(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FleetBackendKind, SerialBackend};

    fn agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect()
    }

    /// A mixed fleet: two charge policies interleaved, so the grouping pass
    /// has to split the fleet into (at least) two homogeneous shards.
    fn mixed_agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                let mut builder =
                    SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                        .offered_load(Watts::from_kilowatts(6.0));
                if i % 2 == 0 {
                    builder = builder.charge_policy(ChargePolicy::Original);
                }
                builder.build()
            })
            .collect()
    }

    /// Steps both backends through the same mixed schedule with the same
    /// command stream, asserting bit-identical readings at every boundary.
    fn assert_lockstep(
        fleet: impl Fn() -> Vec<SimRackAgent>,
        mut soa: Box<dyn FleetBackend>,
        rounds: usize,
    ) {
        let mut reference = SerialBackend::new(fleet());
        for round in 0..rounds {
            // Commands vary per round to exercise every flag transition.
            for backend in [&mut reference as &mut dyn FleetBackend, soa.as_mut()] {
                let bus = backend.bus_mut();
                match round % 5 {
                    0 => bus.set_charge_override(RackId::new(2), Amperes::new(1.5)),
                    1 => {
                        bus.clear_charge_override(RackId::new(2));
                        bus.set_charge_postponed(RackId::new(3), true);
                    }
                    2 => {
                        bus.set_charge_postponed(RackId::new(3), false);
                        bus.cap_servers(RackId::new(4), Watts::from_kilowatts(4.0));
                    }
                    3 => bus.uncap_servers(RackId::new(4)),
                    _ => bus.set_charge_override(RackId::new(6), Amperes::new(9.0)),
                }
            }
            let schedule: Vec<bool> = (0..6).map(|i| (i + round) % 7 != 3).collect();
            let load = |rack: RackId, i: usize| {
                Watts::from_kilowatts(5.0 + 0.3 * f64::from(rack.index()) + 0.1 * i as f64)
            };
            reference.step_schedule(Seconds::new(1.0), &schedule, &load);
            soa.step_schedule(Seconds::new(1.0), &schedule, &load);
            assert_eq!(
                reference.readings(),
                soa.readings(),
                "round {round} diverged"
            );
            for rack in reference.bus_mut().racks() {
                assert_eq!(
                    reference.bus_mut().read(rack),
                    soa.bus_mut().read(rack),
                    "round {round} rack {rack:?}"
                );
            }
        }
    }

    #[test]
    fn soa_serial_matches_object_path_bit_for_bit() {
        assert_lockstep(|| agents(7), Box::new(SoaBackend::new(agents(7))), 12);
    }

    #[test]
    fn soa_sharded_matches_object_path_bit_for_bit() {
        assert_lockstep(
            || agents(7),
            Box::new(SoaBackend::sharded(agents(7), 3)),
            12,
        );
    }

    #[test]
    fn heterogeneous_soa_matches_object_path_bit_for_bit() {
        assert_lockstep(
            || mixed_agents(7),
            Box::new(SoaBackend::new(mixed_agents(7))),
            12,
        );
    }

    #[test]
    fn heterogeneous_sharded_soa_matches_object_path_bit_for_bit() {
        assert_lockstep(
            || mixed_agents(7),
            Box::new(SoaBackend::sharded(mixed_agents(7), 3)),
            12,
        );
    }

    #[test]
    fn heterogeneous_fleets_partition_by_group_and_keep_fleet_order() {
        // 7 racks, alternating policies → two groups (4 + 3 racks); a serial
        // build keeps one shard per group.
        let fleet = SoaBackend::new(mixed_agents(7));
        assert_eq!(fleet.shard_count(), 2);
        assert_eq!(fleet.rack_count(), 7);
        let order: Vec<u32> = FleetBackend::readings(&fleet)
            .iter()
            .map(|r| r.rack.index())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
        let listed: Vec<u32> = AgentBus::racks(&fleet).iter().map(|r| r.index()).collect();
        assert_eq!(listed, order);
    }

    #[test]
    fn shard_counts_clamp() {
        assert_eq!(SoaBackend::sharded(agents(4), 99).shard_count(), 4);
        assert_eq!(SoaBackend::sharded(agents(4), 0).shard_count(), 1);
        assert_eq!(SoaBackend::new(agents(4)).rack_count(), 4);
    }

    #[test]
    fn empty_fleet_is_inert() {
        let mut fleet = SoaBackend::new(Vec::new());
        fleet.step_schedule(Seconds::new(1.0), &[true], &|_, _| Watts::ZERO);
        assert!(fleet.readings().is_empty());
        assert!(fleet.bus_mut().read(RackId::new(0)).is_none());
    }

    #[test]
    fn kind_builds_soa_backends() {
        assert_eq!(FleetBackendKind::Soa.build(agents(2)).name(), "soa");
        assert_eq!(
            FleetBackendKind::SoaSharded { shards: 2 }
                .build(agents(4))
                .name(),
            "soa-sharded"
        );
    }
}
