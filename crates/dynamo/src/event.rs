//! Event-driven fleet stepping: skip the sub-steps that provably do nothing.
//!
//! Most of a diurnal run is dead time — batteries sit full, no overload, no
//! CC→CV knee — yet the dense backends still execute every rack on every
//! sub-step. [`EventDrivenBackend`] wraps the [`SoaBackend`] arrays with a
//! per-rack sleep state and a next-event queue, and only steps the racks
//! whose event horizon or input has actually arrived.
//!
//! **Equivalence argument.** The skip authority is
//! `SoaShard::is_quiescent`, which grants sleep only when the next dense
//! sub-step would be an *exact* no-op (settled state with zero wall power, or
//! postponed charging) — never from an analytic prediction, because float
//! accumulation is step-size dependent. The battery/breaker
//! `next_event_time()` horizons stay advisory lower bounds (proptest-pinned
//! in their own crates); here they would only ever be used to *defer* a wake,
//! never to skip one. Three rules keep the arrays bit-identical to the dense
//! pass at every schedule boundary:
//!
//! 1. A rack sleeps only *after* executing a sub-step that left it
//!    quiescent, so boundary effects (the final wall-power reading of a
//!    charge, the state latch flip) are always executed densely.
//! 2. Input-power edges and bus commands wake racks before the sub-step on
//!    which they take effect: edges wake the whole fleet (power is a global
//!    input), commands wake their target via a scheduled event at the next
//!    sub-step. Sleeping racks therefore never miss an input transition.
//! 3. The only array a skipped sub-step would have written is the
//!    `offered[]` trace mirror; `touch_offered` replays the schedule's final
//!    load for every sleeping rack, which is exactly the value the dense
//!    pass would have left behind (intermediate writes are unobservable —
//!    readings happen only at schedule boundaries, DESIGN.md §11).
//!
//! Every sleep→wake transition journals a [`FlightKind::FastForward`] event
//! with the number of sub-steps skipped, so provenance of the fast-forward
//! is auditable after the fact. `sim.rack_substeps`, `sim.ticks_skipped`,
//! `sim.events_fired`, and `sim.offered_replays` counters quantify the win
//! per run.
//!
//! **The sharded case.** [`EventShardedBackend`](crate::EventShardedBackend)
//! runs one [`Lane`] + [`EventScheduler`] per SoA shard on persistent worker
//! threads, with a *merged wake queue* at the coordinator. The three rules
//! above carry over unchanged because racks never interact during physics;
//! what needs an argument is event *ordering*, and two properties pin it:
//!
//! 4. The coordinator's merged queue imposes one global `(time, seq)` order
//!    on every power edge and command wake — exactly the order the
//!    single-threaded scheduler would have used — and each shard's local
//!    scheduler receives its *projection* of that order (edges broadcast to
//!    every shard at the same integer sub-step, wakes routed to the owning
//!    shard only). A projection of a total order preserves the per-shard
//!    FIFO tie-break, so each shard pops events in the same relative order
//!    as the single-threaded backend.
//! 5. Cross-shard ordering within a sub-step is immaterial: an event only
//!    mutates its own shard's lane and arrays (a power edge is replicated
//!    per shard, and waking an already-awake slot is a no-op), so any
//!    interleaving of shard timelines yields the same arrays — which is why
//!    the workers can run them concurrently at all.

use recharge_telemetry::{flight, tcounter, tspan, FlightKind, ReasonCode, NO_BUCKET};
use recharge_units::{Amperes, RackId, Seconds, Watts};

use crate::agent::SimRackAgent;
use crate::backend::FleetBackend;
use crate::bus::AgentBus;
use crate::messages::PowerReading;
use crate::scheduler::EventScheduler;
use crate::soa::{SoaBackend, SoaShard};

/// Extra scheduler capacity beyond one pending wake per rack, covering a
/// typical batch's worth of power edges without a mid-run reallocation.
pub(crate) const EDGE_HEADROOM: usize = 64;

/// What the fleet-level event queue carries.
enum FleetEvent {
    /// Input power flips to the carried value at the event's sub-step.
    PowerEdge(bool),
    /// A bus command touched a sleeping rack; it must step again.
    Wake { shard: usize, slot: usize },
}

/// Per-shard sleep bookkeeping, parallel to the SoA arrays.
///
/// Shared by the single-threaded [`EventDrivenBackend`] and the per-worker
/// shard states of [`EventShardedBackend`](crate::EventShardedBackend): both
/// drive the same sleep/wake transitions, so the skip authority lives in
/// exactly one place. `active` and `asleep` are disjoint sorted complements
/// of the slot space, which keeps every operation — including the
/// end-of-batch offered replay — proportional to the slots it touches, not
/// to the shard size.
pub(crate) struct Lane {
    /// Whether each slot is currently fast-forwarding.
    sleeping: Vec<bool>,
    /// Clock of the last sub-step each slot actually executed.
    slept_at: Vec<u64>,
    /// Sorted slot indices still stepping densely.
    active: Vec<u32>,
    /// Sorted slot indices currently fast-forwarding (the complement of
    /// `active`), so the offered replay iterates sleepers instead of
    /// scanning the whole shard.
    asleep: Vec<u32>,
}

impl Lane {
    /// A lane over `len` slots, everyone awake.
    pub(crate) fn new(len: usize) -> Self {
        Lane {
            sleeping: vec![false; len],
            slept_at: vec![0; len],
            active: (0..u32::try_from(len).expect("shard fits u32")).collect(),
            asleep: Vec::new(),
        }
    }

    /// Whether `slot` is currently fast-forwarding.
    pub(crate) fn is_sleeping(&self, slot: usize) -> bool {
        self.sleeping[slot]
    }

    /// The sorted slots still stepping densely.
    pub(crate) fn active_slots(&self) -> &[u32] {
        &self.active
    }

    /// Wakes `slot` if it is sleeping, returning how many sub-steps it
    /// skipped. Waking an awake slot is a no-op (`None`).
    pub(crate) fn wake_one(&mut self, slot: usize, now: u64) -> Option<u64> {
        if !self.sleeping[slot] {
            return None;
        }
        self.sleeping[slot] = false;
        let skipped = now.saturating_sub(self.slept_at[slot] + 1);
        let s32 = u32::try_from(slot).expect("slot fits u32");
        if let Ok(pos) = self.asleep.binary_search(&s32) {
            self.asleep.remove(pos);
        }
        if let Err(pos) = self.active.binary_search(&s32) {
            self.active.insert(pos, s32);
        }
        Some(skipped)
    }

    /// Wakes every sleeping slot, invoking `woken(slot, skipped)` in
    /// ascending slot order (the order the dense wake scan used to report).
    pub(crate) fn wake_all(&mut self, now: u64, mut woken: impl FnMut(usize, u64)) {
        if self.asleep.is_empty() {
            return;
        }
        for &s in &self.asleep {
            let slot = s as usize;
            self.sleeping[slot] = false;
            woken(slot, now.saturating_sub(self.slept_at[slot] + 1));
        }
        self.asleep.clear();
        self.active.clear();
        self.active
            .extend(0..u32::try_from(self.sleeping.len()).expect("shard fits u32"));
    }

    /// Executes one sub-step for every active slot, retiring the ones whose
    /// executed step proved the next is a no-op. `load(slot, rack)` supplies
    /// the offered load; returns the number of sub-steps executed.
    pub(crate) fn step_active(
        &mut self,
        shard: &mut SoaShard,
        now: u64,
        power: bool,
        dt: Seconds,
        mut load: impl FnMut(usize, RackId) -> Watts,
    ) -> u64 {
        let Lane {
            sleeping,
            slept_at,
            active,
            asleep,
        } = self;
        let mut executed: u64 = 0;
        active.retain(|&s| {
            let slot = s as usize;
            let offered = load(slot, shard.rack_at(slot));
            shard.substep(slot, offered, power, dt);
            executed += 1;
            if shard.is_quiescent(slot) {
                sleeping[slot] = true;
                slept_at[slot] = now;
                if let Err(pos) = asleep.binary_search(&s) {
                    asleep.insert(pos, s);
                }
                false
            } else {
                true
            }
        });
        executed
    }

    /// Replays the schedule's final offered-load write into every sleeping
    /// slot — the one observable effect the skipped sub-steps had — and
    /// returns the number of writes (each sleeper gets exactly one).
    pub(crate) fn replay_offered(
        &self,
        shard: &mut SoaShard,
        mut load: impl FnMut(usize, RackId) -> Watts,
    ) -> u64 {
        for &s in &self.asleep {
            let slot = s as usize;
            let offered = load(slot, shard.rack_at(slot));
            shard.touch_offered(slot, offered);
        }
        self.asleep.len() as u64
    }
}

/// The event-driven execution backend: SoA arrays plus a next-event
/// scheduler that fast-forwards quiescent racks.
///
/// Readings, bus behavior, and downstream `RunMetrics` are bit-identical to
/// every dense backend; only the number of rack sub-steps executed changes.
///
/// # Examples
///
/// ```
/// use recharge_dynamo::{EventDrivenBackend, FleetBackend, SimRackAgent};
/// use recharge_units::{Priority, RackId, Seconds, Watts};
///
/// let agents = (0..4)
///     .map(|i| SimRackAgent::builder(RackId::new(i), Priority::P2).build())
///     .collect();
/// let mut fleet = EventDrivenBackend::new(agents);
/// // A 30-second open transition, then a long quiet stretch of wall power.
/// let schedule = [&[false][..], &[true; 600][..]].concat();
/// fleet.step_schedule(Seconds::new(30.0), &schedule, &|_, _| {
///     Watts::from_kilowatts(6.0)
/// });
/// assert!(fleet.substeps_skipped() > 0);
/// ```
pub struct EventDrivenBackend {
    soa: SoaBackend,
    lanes: Vec<Lane>,
    scheduler: EventScheduler<FleetEvent>,
    /// The fleet-wide input power as of the last processed edge. Safe to
    /// start `true`: every rack begins awake, and a rack only sleeps after
    /// executing a sub-step whose power this field tracked, so sleeping
    /// racks always agree with it.
    power: bool,
    /// Global sub-step counter across schedules (the event-queue timeline).
    clock: u64,
    /// Rack sub-steps actually executed.
    executed: u64,
    /// End-of-batch offered-load replay writes (one per sleeper per batch).
    replayed: u64,
    /// Fleet size, cached for the skip arithmetic.
    total_racks: u64,
}

impl EventDrivenBackend {
    /// Creates an event-driven backend over the given agents (heterogeneous
    /// fleets follow the [`SoaBackend`] grouping pass).
    #[must_use]
    pub fn new(agents: Vec<SimRackAgent>) -> Self {
        let soa = SoaBackend::new(agents);
        let lanes: Vec<Lane> = soa.shards().iter().map(|s| Lane::new(s.len())).collect();
        let total_racks = soa.shards().iter().map(|s| s.len() as u64).sum();
        // Steady-state sizing: at most one pending wake per rack plus a
        // batch's worth of power edges — the hot loop never grows the heap.
        let capacity = usize::try_from(total_racks).expect("fleet fits usize") + EDGE_HEADROOM;
        EventDrivenBackend {
            soa,
            lanes,
            scheduler: EventScheduler::with_capacity(capacity),
            power: true,
            clock: 0,
            executed: 0,
            replayed: 0,
            total_racks,
        }
    }

    /// Rack sub-steps actually executed since construction.
    #[must_use]
    pub fn substeps_executed(&self) -> u64 {
        self.executed
    }

    /// End-of-batch offered-load replay writes since construction: exactly
    /// one write per sleeping rack per schedule, which is the same write set
    /// the dense pass's final sub-step would have produced for them.
    #[must_use]
    pub fn offered_replays(&self) -> u64 {
        self.replayed
    }

    /// Rack sub-steps fast-forwarded (what a dense backend would have run
    /// minus what this one did).
    #[must_use]
    pub fn substeps_skipped(&self) -> u64 {
        self.clock * self.total_racks - self.executed
    }

    /// Wakes one sleeping slot, journaling the fast-forward. Idempotent.
    fn wake_one(&mut self, shard: usize, slot: usize, now: u64) {
        let sh = &self.soa.shards()[shard];
        if let Some(skipped) = self.lanes[shard].wake_one(slot, now) {
            flight(
                FlightKind::FastForward,
                ReasonCode::Observed,
                sh.rack_at(slot).index(),
                sh.priority_at(slot).rank(),
                NO_BUCKET,
                skipped,
                now,
            );
        }
    }

    /// Wakes every sleeping rack (input power is a fleet-wide input, so an
    /// edge invalidates every sleep).
    fn wake_all(&mut self, now: u64) {
        for (lane, sh) in self.lanes.iter_mut().zip(self.soa.shards()) {
            lane.wake_all(now, |slot, skipped| {
                flight(
                    FlightKind::FastForward,
                    ReasonCode::Observed,
                    sh.rack_at(slot).index(),
                    sh.priority_at(slot).rank(),
                    NO_BUCKET,
                    skipped,
                    now,
                );
            });
        }
    }

    /// A bus command touched `rack`: schedule a wake at the next sub-step so
    /// the command's effect is stepped densely.
    fn wake_rack(&mut self, rack: RackId) {
        if let Some((shard, slot)) = self.soa.slot_of(rack) {
            if self.lanes[shard].is_sleeping(slot) {
                self.scheduler
                    .schedule(self.clock, FleetEvent::Wake { shard, slot });
            }
        }
    }
}

impl FleetBackend for EventDrivenBackend {
    fn name(&self) -> &'static str {
        "event"
    }

    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    ) {
        let _span = tspan!("fleet.event_step", "fleet");
        let n = input_power.len();
        if n == 0 {
            return;
        }

        // Power edges become scheduled events so the whole timeline — edges,
        // command wakes, and (by induction) sleeps — flows through one
        // deterministic queue.
        let mut prev = self.power;
        for (i, &p) in input_power.iter().enumerate() {
            if p != prev {
                self.scheduler
                    .schedule(self.clock + i as u64, FleetEvent::PowerEdge(p));
                prev = p;
            }
        }

        let mut executed_now: u64 = 0;
        let mut fired: u64 = 0;
        for (i, &power) in input_power.iter().enumerate() {
            let now = self.clock + i as u64;
            while let Some((_, event)) = self.scheduler.pop_due(now) {
                fired += 1;
                match event {
                    FleetEvent::PowerEdge(p) => {
                        self.power = p;
                        self.wake_all(now);
                    }
                    FleetEvent::Wake { shard, slot } => self.wake_one(shard, slot, now),
                }
            }
            debug_assert_eq!(self.power, power, "edge events must track the schedule");

            for (lane, shard) in self.lanes.iter_mut().zip(self.soa.shards_mut()) {
                executed_now += lane.step_active(shard, now, power, dt, |_, rack| load_of(rack, i));
            }
        }
        self.clock += n as u64;

        // Replay the one observable effect the skipped sub-steps had: the
        // schedule's final offered-load write (idempotent with the dense
        // pass's last write). O(sleeping), not O(racks): the lane iterates
        // its maintained sleeper list.
        let mut replays: u64 = 0;
        for (lane, shard) in self.lanes.iter_mut().zip(self.soa.shards_mut()) {
            replays += lane.replay_offered(shard, |_, rack| load_of(rack, n - 1));
        }

        self.executed += executed_now;
        self.replayed += replays;
        tcounter!("sim.rack_substeps").add(executed_now);
        tcounter!("sim.ticks_skipped").add(n as u64 * self.total_racks - executed_now);
        tcounter!("sim.events_fired").add(fired);
        tcounter!("sim.offered_replays").add(replays);
    }

    fn readings(&self) -> Vec<PowerReading> {
        FleetBackend::readings(&self.soa)
    }

    fn bus_mut(&mut self) -> &mut dyn AgentBus {
        self
    }
}

impl AgentBus for EventDrivenBackend {
    fn racks(&self) -> Vec<RackId> {
        AgentBus::racks(&self.soa)
    }

    fn read(&self, rack: RackId) -> Option<PowerReading> {
        AgentBus::read(&self.soa, rack)
    }

    fn set_charge_override(&mut self, rack: RackId, current: Amperes) {
        self.soa.set_charge_override(rack, current);
        self.wake_rack(rack);
    }

    fn clear_charge_override(&mut self, rack: RackId) {
        self.soa.clear_charge_override(rack);
        self.wake_rack(rack);
    }

    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool) {
        self.soa.set_charge_postponed(rack, postponed);
        self.wake_rack(rack);
    }

    fn cap_servers(&mut self, rack: RackId, limit: Watts) {
        self.soa.cap_servers(rack, limit);
        self.wake_rack(rack);
    }

    fn uncap_servers(&mut self, rack: RackId) {
        self.soa.uncap_servers(rack);
        self.wake_rack(rack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FleetBackendKind, SerialBackend};
    use recharge_units::Priority;

    fn agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect()
    }

    /// The soa lockstep harness, pointed at the event backend: same command
    /// stream, same mixed power schedule, bit-identical readings demanded at
    /// every boundary.
    fn assert_lockstep(fleet: impl Fn() -> Vec<SimRackAgent>, rounds: usize) {
        let mut reference = SerialBackend::new(fleet());
        let mut event = EventDrivenBackend::new(fleet());
        for round in 0..rounds {
            for backend in [&mut reference as &mut dyn FleetBackend, &mut event] {
                let bus = backend.bus_mut();
                match round % 5 {
                    0 => bus.set_charge_override(RackId::new(2), Amperes::new(1.5)),
                    1 => {
                        bus.clear_charge_override(RackId::new(2));
                        bus.set_charge_postponed(RackId::new(3), true);
                    }
                    2 => {
                        bus.set_charge_postponed(RackId::new(3), false);
                        bus.cap_servers(RackId::new(4), Watts::from_kilowatts(4.0));
                    }
                    3 => bus.uncap_servers(RackId::new(4)),
                    _ => bus.set_charge_override(RackId::new(6), Amperes::new(9.0)),
                }
            }
            let schedule: Vec<bool> = (0..6).map(|i| (i + round) % 7 != 3).collect();
            let load = |rack: RackId, i: usize| {
                Watts::from_kilowatts(5.0 + 0.3 * f64::from(rack.index()) + 0.1 * i as f64)
            };
            reference.step_schedule(Seconds::new(1.0), &schedule, &load);
            event.step_schedule(Seconds::new(1.0), &schedule, &load);
            assert_eq!(
                reference.readings(),
                FleetBackend::readings(&event),
                "round {round} diverged"
            );
            for rack in reference.bus_mut().racks() {
                assert_eq!(
                    reference.bus_mut().read(rack),
                    AgentBus::read(&event, rack),
                    "round {round} rack {rack:?}"
                );
            }
        }
    }

    #[test]
    fn event_backend_matches_object_path_bit_for_bit() {
        assert_lockstep(|| agents(7), 12);
    }

    #[test]
    fn quiescent_racks_are_actually_skipped() {
        let mut fleet = EventDrivenBackend::new(agents(4));
        // One outage sub-step, then a long quiet charge-and-settle stretch.
        let schedule = [&[false][..], &[true; 2_000][..]].concat();
        fleet.step_schedule(Seconds::new(30.0), &schedule, &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        assert!(
            fleet.substeps_skipped() > 0,
            "settled racks should fast-forward"
        );
        assert_eq!(
            fleet.substeps_executed() + fleet.substeps_skipped(),
            2_001 * 4,
            "executed + skipped must cover the dense schedule exactly"
        );
        // Everyone finished the recharge and went quiet.
        assert!(FleetBackend::readings(&fleet)
            .iter()
            .all(|r| r.recharge_power == Watts::ZERO));
    }

    #[test]
    fn commands_wake_sleeping_racks() {
        let mut fleet = EventDrivenBackend::new(agents(2));
        // Postpone both racks so they sleep at zero setpoint after an outage.
        fleet.step_schedule(Seconds::new(30.0), &[false], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        let bus: &mut dyn AgentBus = &mut fleet;
        bus.set_charge_postponed(RackId::new(0), true);
        bus.set_charge_postponed(RackId::new(1), true);
        fleet.step_schedule(Seconds::new(30.0), &[true; 10], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        let before = fleet.substeps_executed();
        // Asleep now; an idle schedule should execute nothing.
        fleet.step_schedule(Seconds::new(30.0), &[true; 5], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        assert_eq!(fleet.substeps_executed(), before);
        // Resuming rack 0 must wake it — and only it.
        (&mut fleet as &mut dyn AgentBus).set_charge_postponed(RackId::new(0), false);
        fleet.step_schedule(Seconds::new(30.0), &[true; 3], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        assert!(
            fleet.substeps_executed() > before,
            "command must wake the rack"
        );
        let readings = FleetBackend::readings(&fleet);
        assert!(
            readings[0].recharge_power > Watts::ZERO,
            "rack 0 charges again"
        );
        assert_eq!(
            readings[1].recharge_power,
            Watts::ZERO,
            "rack 1 stays postponed"
        );
    }

    #[test]
    fn offered_replay_writes_exactly_one_per_sleeper() {
        let mut fleet = EventDrivenBackend::new(agents(4));
        // One outage sub-step, then a quiet stretch long enough that every
        // rack finishes its recharge and sleeps.
        let schedule = [&[false][..], &[true; 2_000][..]].concat();
        fleet.step_schedule(Seconds::new(30.0), &schedule, &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        let settled = fleet.offered_replays();
        // A fully-asleep batch performs exactly one offered write per rack —
        // the same writes the old whole-shard scan produced, now reached via
        // the maintained sleeper list.
        fleet.step_schedule(Seconds::new(30.0), &[true; 5], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        assert_eq!(
            fleet.offered_replays() - settled,
            4,
            "one replay write per sleeping rack per batch"
        );
        // And the replay set is exactly the sleeper set: executed + skipped
        // still covers the dense schedule.
        assert_eq!(
            fleet.substeps_executed() + fleet.substeps_skipped(),
            2_006 * 4
        );
    }

    #[test]
    fn kind_builds_the_event_backend() {
        assert_eq!(FleetBackendKind::Event.build(agents(2)).name(), "event");
    }
}
