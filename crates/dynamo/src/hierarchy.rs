//! Two-level control, as deployed (§IV-C): **leaf controllers** (one per
//! RPP) compute and set the initial SLA charging currents for their row,
//! while **upper monitors** (SB/MSB) watch their own breaker for the whole
//! charging period and, on overload, force racks in their subtree to the
//! 1 A minimum in reverse priority order — capping servers only as the last
//! resort.
//!
//! The single-controller [`Controller`](crate::Controller) is the right tool
//! when power is constrained at exactly one level (the paper's §V-B MSB
//! experiments); this module handles constraints at multiple levels at once.

use std::collections::{HashMap, HashSet};

use recharge_core::ChargeIndex;
use recharge_power::{DeviceKind, Topology};
use recharge_units::{Amperes, DeviceId, RackId, SimTime, Watts};

use crate::bus::AgentBus;
use crate::capping::plan_caps;
use crate::controller::{Controller, ControllerConfig, Strategy};
use crate::messages::PowerReading;

/// A monitor protecting one upper-level breaker (SB or MSB).
///
/// It holds no assignment state: when its subtree draw exceeds the limit it
/// progressively forces charging racks to the hardware minimum —
/// lowest-priority-highest-discharge first — and caps servers only if the
/// whole subtree is already at the floor.
///
/// The shed order is kept *materialized* in a persistent [`ChargeIndex`]
/// maintained from per-tick reading deltas, the same structure the leaf
/// controllers use — overload response walks the index instead of re-sorting
/// the subtree every tick. Ordering follows the index convention: (priority
/// rank, quantized DOD bucket) groups in reverse charge order, racks within
/// a group in ascending (input) order — matching the stable descending sort
/// it replaces (see [`charge_tiebreak_parity`] in the module tests).
#[derive(Debug)]
pub struct UpperMonitor {
    device: DeviceId,
    limit: Watts,
    racks: Vec<RackId>,
    forced_minimum: HashSet<RackId>,
    index: ChargeIndex,
    max_cap_fraction: f64,
}

impl UpperMonitor {
    /// Creates a monitor for `device` with power `limit` over `racks`.
    #[must_use]
    pub fn new(device: DeviceId, limit: Watts, racks: Vec<RackId>) -> Self {
        UpperMonitor {
            device,
            limit,
            racks,
            forced_minimum: HashSet::new(),
            index: ChargeIndex::new(),
            max_cap_fraction: 0.4,
        }
    }

    /// The protected device.
    #[must_use]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Racks this monitor has forced to the minimum.
    #[must_use]
    pub fn forced_count(&self) -> usize {
        self.forced_minimum.len()
    }

    /// One monitoring interval: returns the server power it had to cap (zero
    /// when battery throttling sufficed).
    pub fn tick<B: AgentBus + ?Sized>(&mut self, bus: &mut B) -> Watts {
        let readings: Vec<PowerReading> = self.racks.iter().filter_map(|&r| bus.read(r)).collect();
        let draw: Watts = readings.iter().map(PowerReading::input_draw).sum();

        // Maintain the persistent shed index from reading deltas: admit
        // newly charging racks, refresh DODs (a no-op unless a quantization
        // bucket is crossed), drop racks that finished or vanished.
        let mut charging = 0usize;
        for reading in &readings {
            if reading.is_charging() {
                charging += 1;
                if self.index.contains(reading.rack) {
                    self.index.set_dod(reading.rack, reading.event_dod);
                } else {
                    self.index.upsert(
                        reading.rack,
                        reading.priority,
                        reading.event_dod,
                        Amperes::ZERO,
                    );
                }
            } else {
                self.index.remove(reading.rack);
            }
        }
        if self.index.len() > charging {
            // Unreachable racks disappeared from the readings entirely.
            let present: HashSet<RackId> = readings.iter().map(|r| r.rack).collect();
            let gone: Vec<RackId> = self
                .index
                .charge_order()
                .map(|(rack, _)| rack)
                .filter(|rack| !present.contains(rack))
                .collect();
            for rack in gone {
                self.index.remove(rack);
            }
        }

        if draw <= self.limit {
            // Forget finished charge sequences so the next event starts clean.
            self.forced_minimum
                .retain(|rack| self.index.contains(*rack));
            return Watts::ZERO;
        }
        let mut overload = draw - self.limit;

        // Reverse order: lowest priority first, deepest discharge first.
        // Visit the index's (priority, DOD-bucket) groups in reverse charge
        // order, keeping racks *within* a group ascending — the same
        // convention as `throttle_on_overload_indexed`, matching the stable
        // descending sort this replaces.
        let entries: Vec<(RackId, (u8, u16))> = self
            .index
            .charge_order()
            .map(|(rack, e)| (rack, (e.priority.rank(), ChargeIndex::dod_bucket(e.dod))))
            .collect();
        let mut order = Vec::with_capacity(entries.len());
        let mut end = entries.len();
        while end > 0 {
            let mut start = end;
            while start > 0 && entries[start - 1].1 == entries[end - 1].1 {
                start -= 1;
            }
            order.extend(start..end);
            end = start;
        }

        let by_rack: HashMap<RackId, &PowerReading> =
            readings.iter().map(|r| (r.rack, r)).collect();
        let floor = Watts::new(375.0); // ≈1 A rack draw; shed estimate only
        for i in order {
            if overload <= Watts::ZERO {
                break;
            }
            let rack = entries[i].0;
            if self.forced_minimum.contains(&rack) {
                continue;
            }
            let Some(reading) = by_rack.get(&rack) else {
                continue;
            };
            bus.set_charge_override(rack, Amperes::MIN_CHARGE);
            self.forced_minimum.insert(rack);
            overload -= (reading.recharge_power - floor).max(Watts::ZERO);
        }

        if overload > Watts::ZERO {
            let (caps, _uncovered) = plan_caps(&readings, overload, self.max_cap_fraction);
            for cap in &caps {
                bus.cap_servers(cap.rack, cap.limit);
            }
            return caps.iter().map(|c| c.shed).sum();
        }
        Watts::ZERO
    }
}

/// The deployed two-level arrangement: a leaf [`Controller`] per RPP plus an
/// [`UpperMonitor`] per SB/MSB breaker.
///
/// # Examples
///
/// ```no_run
/// use recharge_dynamo::{HierarchicalControl, Strategy};
/// use recharge_power::facebook;
///
/// let plan = facebook::single_msb(56);
/// let control = HierarchicalControl::from_topology(&plan.topology, Strategy::PriorityAware);
/// assert!(control.leaf_count() > 0);
/// ```
pub struct HierarchicalControl {
    leaves: Vec<Controller>,
    uppers: Vec<UpperMonitor>,
}

impl HierarchicalControl {
    /// Builds the control tree from a topology: every RPP with a breaker gets
    /// a leaf controller, every SB/MSB with a breaker gets an upper monitor.
    #[must_use]
    pub fn from_topology(topology: &Topology, strategy: Strategy) -> Self {
        let mut leaves = Vec::new();
        let mut uppers = Vec::new();
        for device in topology.devices() {
            let Some(limit) = device.limit() else {
                continue;
            };
            match device.kind() {
                DeviceKind::Rpp => {
                    let config = ControllerConfig::new(device.id(), limit)
                        .with_scope(topology.racks_under(device.id()));
                    leaves.push(Controller::new(config, strategy));
                }
                DeviceKind::Msb | DeviceKind::Sb => {
                    uppers.push(UpperMonitor::new(
                        device.id(),
                        limit,
                        topology.racks_under(device.id()),
                    ));
                }
                DeviceKind::Substation | DeviceKind::Msg => {}
            }
        }
        HierarchicalControl { leaves, uppers }
    }

    /// Number of leaf controllers.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Number of upper monitors.
    #[must_use]
    pub fn upper_count(&self) -> usize {
        self.uppers.len()
    }

    /// The upper monitors (inspection).
    #[must_use]
    pub fn uppers(&self) -> &[UpperMonitor] {
        &self.uppers
    }

    /// One control interval across the whole tree: leaves first (assignment
    /// and local protection), then upper monitors (aggregate protection).
    /// Returns the total server power capped this tick.
    pub fn tick<B: AgentBus + ?Sized>(&mut self, now: SimTime, bus: &mut B) -> Watts {
        let mut capped = Watts::ZERO;
        for leaf in &mut self.leaves {
            let report = leaf.tick(now, bus);
            capped += report.cap_requested;
        }
        for upper in &mut self.uppers {
            capped += upper.tick(bus);
        }
        capped
    }

    /// Per-rack commanded currents across all leaf controllers.
    #[must_use]
    pub fn commanded_currents(&self) -> HashMap<RackId, Amperes> {
        let mut all = HashMap::new();
        for leaf in &self.leaves {
            all.extend(leaf.commanded_currents());
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::SimRackAgent;
    use crate::bus::InMemoryBus;
    use recharge_power::facebook;
    use recharge_units::{Priority, Seconds};

    /// A small MSB: 4 RPPs × 4 racks.
    fn build() -> (
        HierarchicalControl,
        InMemoryBus<SimRackAgent>,
        recharge_power::facebook::MsbPlan,
    ) {
        let plan = facebook::single_msb_with_row_size(16, 4);
        let agents: Vec<SimRackAgent> = plan
            .racks
            .iter()
            .map(|&rack| {
                SimRackAgent::builder(rack, Priority::ALL[(rack.index() % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect();
        let control = HierarchicalControl::from_topology(&plan.topology, Strategy::PriorityAware);
        (control, InMemoryBus::new(agents), plan)
    }

    fn open_transition(bus: &mut InMemoryBus<SimRackAgent>, secs: f64) {
        for a in bus.agents_mut() {
            a.set_input_power(false);
        }
        for a in bus.agents_mut() {
            a.step(Seconds::new(secs));
        }
        for a in bus.agents_mut() {
            a.set_input_power(true);
        }
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
    }

    #[test]
    fn control_tree_shape_matches_topology() {
        let (control, _, plan) = build();
        assert_eq!(control.leaf_count(), plan.rpps.len());
        assert_eq!(control.upper_count(), 1 + plan.sbs.len());
    }

    #[test]
    fn leaves_assign_sla_currents_per_row() {
        let (mut control, mut bus, _) = build();
        open_transition(&mut bus, 60.0);
        control.tick(SimTime::from_secs(61.0), &mut bus);
        let commanded = control.commanded_currents();
        assert_eq!(commanded.len(), 16, "every rack coordinated by its leaf");
        for (&rack, &current) in &commanded {
            assert!(current >= Amperes::MIN_CHARGE, "rack {rack} at {current}");
        }
    }

    #[test]
    fn upper_monitor_throttles_subtree_on_aggregate_overload() {
        // Constrain one SB below its subtree draw while every RPP stays
        // comfortable: only the upper monitor can see this overload.
        let (_, mut bus, plan) = build();
        let sb = plan.sbs[0];
        let racks = plan.topology.racks_under(sb);
        assert!(!racks.is_empty());
        let mut control =
            HierarchicalControl::from_topology(&plan.topology, Strategy::PriorityAware);
        // Shrink that SB's monitor limit to IT + a sliver.
        let it: Watts = racks
            .iter()
            .map(|&r| bus.read(r).expect("reachable").it_load)
            .sum();
        for upper in &mut control.uppers {
            if upper.device() == sb {
                upper.limit = it + Watts::new(500.0);
            }
        }

        open_transition(&mut bus, 90.0);
        for s in 0..30 {
            control.tick(SimTime::from_secs(62.0 + f64::from(s)), &mut bus);
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        let forced = control
            .uppers()
            .iter()
            .find(|u| u.device() == sb)
            .expect("monitor exists")
            .forced_count();
        assert!(forced > 0, "the SB monitor should have forced racks to 1 A");
        // And the subtree draw came back under the (tightened) limit.
        let draw: Watts = racks
            .iter()
            .map(|&r| bus.read(r).expect("reachable").input_draw())
            .sum();
        assert!(
            draw <= it + Watts::new(500.0) + Watts::new(1.0),
            "draw {draw}"
        );
    }

    /// A fixed-reading bus that records the override order the monitor
    /// issues; commands route nowhere.
    struct RecordingBus {
        readings: Vec<PowerReading>,
        overrides: Vec<RackId>,
    }

    impl AgentBus for RecordingBus {
        fn racks(&self) -> Vec<RackId> {
            self.readings.iter().map(|r| r.rack).collect()
        }
        fn read(&self, rack: RackId) -> Option<PowerReading> {
            self.readings.iter().find(|r| r.rack == rack).copied()
        }
        fn set_charge_override(&mut self, rack: RackId, _current: Amperes) {
            self.overrides.push(rack);
        }
        fn clear_charge_override(&mut self, _rack: RackId) {}
        fn set_charge_postponed(&mut self, _rack: RackId, _postponed: bool) {}
        fn cap_servers(&mut self, _rack: RackId, _limit: Watts) {}
        fn uncap_servers(&mut self, _rack: RackId) {}
    }

    fn charging_reading(rack: u32, priority: Priority, dod: f64) -> PowerReading {
        PowerReading {
            rack: RackId::new(rack),
            priority,
            input_power_present: true,
            it_load: Watts::from_kilowatts(6.0),
            recharge_power: Watts::from_kilowatts(1.0),
            bbu_state: recharge_battery::BbuState::Charging,
            event_dod: recharge_units::Dod::new(dod),
            dod: recharge_units::Dod::new(dod),
            capped_power: Watts::ZERO,
        }
    }

    /// The indexed shed order must match the sorted path it replaced: the
    /// old code stably sorted candidates by descending priority, then
    /// descending exact DOD — so exact-(priority, DOD) ties shed in input
    /// (rack-ascending) order. The index walks (rank, DOD-bucket) groups in
    /// reverse charge order with racks ascending within a group; with DODs
    /// in distinct buckets plus exact ties, the two orders must be equal.
    #[test]
    fn charge_tiebreak_parity() {
        let readings = vec![
            charging_reading(0, Priority::P1, 0.30),
            charging_reading(1, Priority::P3, 0.80), // exact tie with rack 2
            charging_reading(2, Priority::P3, 0.80),
            charging_reading(3, Priority::P2, 0.55), // exact tie with rack 5
            charging_reading(4, Priority::P3, 0.20),
            charging_reading(5, Priority::P2, 0.55),
        ];

        // The replicated old path: stable sort, descending priority then
        // descending exact DOD, over the readings in input order.
        let mut sorted: Vec<&PowerReading> = readings.iter().collect();
        sorted.sort_by(|a, b| {
            b.priority
                .cmp(&a.priority)
                .then(b.event_dod.value().total_cmp(&a.event_dod.value()))
        });
        let expected: Vec<RackId> = sorted.iter().map(|r| r.rack).collect();

        // The indexed path, via a monitor whose limit forces a full shed.
        let racks: Vec<RackId> = readings.iter().map(|r| r.rack).collect();
        let mut monitor = UpperMonitor::new(DeviceId::new(9), Watts::new(1.0), racks);
        let mut bus = RecordingBus {
            readings,
            overrides: Vec::new(),
        };
        monitor.tick(&mut bus);

        assert_eq!(
            bus.overrides, expected,
            "indexed shed order diverged from the sorted path"
        );
        assert_eq!(monitor.forced_count(), 6);
    }

    /// The persistent index follows reading deltas: racks that finish
    /// charging (or vanish from the readings) drop out of the shed order.
    #[test]
    fn index_tracks_reading_deltas() {
        let mut readings = vec![
            charging_reading(0, Priority::P2, 0.40),
            charging_reading(1, Priority::P3, 0.60),
        ];
        let racks: Vec<RackId> = readings.iter().map(|r| r.rack).collect();
        // Generous limit: no shed, but the index still tracks charging racks.
        let mut monitor = UpperMonitor::new(DeviceId::new(9), Watts::from_kilowatts(100.0), racks);
        let mut bus = RecordingBus {
            readings: readings.clone(),
            overrides: Vec::new(),
        };
        monitor.tick(&mut bus);
        assert_eq!(monitor.index.len(), 2);

        // Rack 1 finishes charging; rack 0 disappears (unreachable).
        readings[1].bbu_state = recharge_battery::BbuState::FullyCharged;
        readings.remove(0);
        bus.readings = readings;
        monitor.tick(&mut bus);
        assert!(monitor.index.is_empty(), "finished/vanished racks linger");
        assert!(bus.overrides.is_empty(), "no overload, no overrides");
    }

    #[test]
    fn forced_set_clears_after_charging_completes() {
        let (_, mut bus, plan) = build();
        let mut control =
            HierarchicalControl::from_topology(&plan.topology, Strategy::PriorityAware);
        let msb = plan.msb;
        for upper in &mut control.uppers {
            if upper.device() == msb {
                upper.limit = Watts::from_kilowatts(98.0); // 16 racks × 6 kW + 2 kW
            }
        }
        open_transition(&mut bus, 60.0);
        for s in 0..4_000 {
            control.tick(SimTime::from_secs(62.0 + f64::from(s)), &mut bus);
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
        }
        for upper in control.uppers() {
            assert_eq!(
                upper.forced_count(),
                0,
                "monitor {} still holds racks",
                upper.device()
            );
        }
    }
}
