//! Pluggable fleet-execution backends.
//!
//! The simulator's tick loop needs three things from wherever the rack agents
//! live: advance the physics over a schedule of sub-steps, read back the
//! fleet's telemetry, and hand the controller an [`AgentBus`]. The
//! [`FleetBackend`] trait captures exactly that surface, so the loop is
//! agnostic to whether agents are stepped serially in-process
//! ([`SerialBackend`]), on sharded worker threads ([`ShardedBackend`]), or —
//! in the future — behind an async or remote transport.
//!
//! All backends are **bit-identical**: a backend chooses *who* executes the
//! per-agent `set_offered_load → set_input_power → step` sequence and how
//! many channel round-trips a schedule costs, never what the sequence
//! computes. [`FleetBackendKind`] is the serializable selector a
//! scenario carries.

use std::fmt;
use std::str::FromStr;

use recharge_units::{RackId, Seconds, SimTime, Watts};

use crate::agent::{RackAgent, SimRackAgent};
use crate::bus::{AgentBus, InMemoryBus};
use crate::event::EventDrivenBackend;
use crate::event_sharded::EventShardedBackend;
use crate::messages::PowerReading;
use crate::soa::SoaBackend;
use crate::threaded::ThreadedFleet;

/// Where rack agents execute, and how sub-step schedules reach them.
///
/// A *schedule* is the run of physical sub-steps between two consecutive
/// controller interventions: `input_power[i]` and `load_of(rack, i)` describe
/// sub-step `i`, every sub-step lasting `dt`. Commands issued through
/// [`bus_mut`](Self::bus_mut) are only required to take effect at schedule
/// boundaries — which is where the controller runs, so it can never observe
/// the difference.
pub trait FleetBackend: Send {
    /// A short stable name for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Advances every agent through the schedule's sub-steps.
    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    );

    /// Post-step telemetry for every rack, in fleet order.
    fn readings(&self) -> Vec<PowerReading>;

    /// The command/read surface the controller drives.
    fn bus_mut(&mut self) -> &mut dyn AgentBus;

    /// Runs a control tick *hosted by the backend*, if it supports one.
    ///
    /// Backends that colocate the leaf control tier with the agents (e.g. a
    /// sharded RPC mesh running leaf controllers server-side) return
    /// `Some(report)` and the simulator skips its own controller for that
    /// tick; the default is `None` — control stays with the simulator.
    fn hosted_control_tick(&mut self, _now: SimTime) -> Option<HostedControlReport> {
        None
    }
}

/// What a backend-hosted control tick observed, summed over the fleet.
///
/// The fields mirror the like-named [`ControllerReport`] aggregates so the
/// simulator's bookkeeping is agnostic to who ran the control loop.
///
/// [`ControllerReport`]: crate::ControllerReport
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HostedControlReport {
    /// Total present IT load across reachable racks.
    pub it_load: Watts,
    /// Total battery recharge draw across reachable racks.
    pub recharge_power: Watts,
    /// Total server power currently capped away.
    pub capped_power: Watts,
}

/// Steps every agent in-process, one rack at a time — the reference backend.
pub struct SerialBackend {
    bus: InMemoryBus<SimRackAgent>,
    racks: Vec<RackId>,
}

impl SerialBackend {
    /// Creates a serial backend over the given agents.
    #[must_use]
    pub fn new(agents: Vec<SimRackAgent>) -> Self {
        let racks = agents.iter().map(RackAgent::rack).collect();
        SerialBackend {
            bus: InMemoryBus::new(agents),
            racks,
        }
    }
}

impl FleetBackend for SerialBackend {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    ) {
        for (i, &power) in input_power.iter().enumerate() {
            for &rack in &self.racks {
                if let Some(agent) = self.bus.agent_mut(rack) {
                    agent.set_offered_load(load_of(rack, i));
                    agent.set_input_power(power);
                    agent.step(dt);
                }
            }
        }
    }

    fn readings(&self) -> Vec<PowerReading> {
        self.bus.agents().map(RackAgent::read).collect()
    }

    fn bus_mut(&mut self) -> &mut dyn AgentBus {
        &mut self.bus
    }
}

/// Steps agents on [`ThreadedFleet`] shard workers.
///
/// With `batched` set, a whole schedule travels as **one** channel round-trip
/// per shard ([`ThreadedFleet::step_batch`]); otherwise each sub-step is
/// submitted individually — the per-tick cadence the batched path is measured
/// against. Results are bit-identical either way.
pub struct ShardedBackend {
    fleet: ThreadedFleet,
    batched: bool,
}

impl ShardedBackend {
    /// Spawns `shards` workers over the agents (the count clamps to
    /// `[1, agents.len()]`).
    #[must_use]
    pub fn new(agents: Vec<SimRackAgent>, shards: usize, batched: bool) -> Self {
        ShardedBackend {
            fleet: ThreadedFleet::spawn(agents, shards),
            batched,
        }
    }
}

impl FleetBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        if self.batched {
            "sharded-batched"
        } else {
            "sharded"
        }
    }

    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    ) {
        if self.batched {
            self.fleet.step_batch(dt, input_power, load_of);
        } else {
            for (i, &power) in input_power.iter().enumerate() {
                self.fleet
                    .step_batch(dt, &[power], |rack, _| load_of(rack, i));
            }
        }
    }

    fn readings(&self) -> Vec<PowerReading> {
        self.fleet
            .racks()
            .into_iter()
            .filter_map(|r| self.fleet.read(r))
            .collect()
    }

    fn bus_mut(&mut self) -> &mut dyn AgentBus {
        &mut self.fleet
    }
}

/// The backend selector a scenario carries: which [`FleetBackend`] to build
/// for a fleet of agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetBackendKind {
    /// In-process serial stepping ([`SerialBackend`]); the default.
    #[default]
    Serial,
    /// Sharded worker threads, one channel round-trip per sub-step.
    Sharded {
        /// Worker-thread count (clamped to `[1, agents.len()]` at build).
        shards: usize,
    },
    /// Sharded worker threads, one channel round-trip per schedule.
    ShardedBatched {
        /// Worker-thread count (clamped to `[1, agents.len()]` at build).
        shards: usize,
    },
    /// Struct-of-arrays physics kernel, stepped in one serial pass
    /// ([`SoaBackend::new`]).
    Soa,
    /// Struct-of-arrays physics kernel sharded over scoped threads
    /// ([`SoaBackend::sharded`]).
    SoaSharded {
        /// Shard count (clamped to `[1, agents.len()]` at build).
        shards: usize,
    },
    /// Event-driven stepping over the SoA arrays
    /// ([`EventDrivenBackend`](crate::EventDrivenBackend)): quiescent racks
    /// fast-forward instead of stepping. Bit-identical to every dense
    /// backend.
    Event,
    /// Event-driven stepping sharded over persistent worker threads
    /// ([`EventShardedBackend`](crate::EventShardedBackend)): one scheduler
    /// and active list per SoA shard, wake sources merged at the
    /// coordinator. Bit-identical to every other backend.
    EventSharded {
        /// Shard/worker-thread count (clamped to `[1, agents.len()]` at
        /// build).
        shards: usize,
    },
}

impl FleetBackendKind {
    /// Builds the backend over the given agents.
    #[must_use]
    pub fn build(self, agents: Vec<SimRackAgent>) -> Box<dyn FleetBackend> {
        match self {
            FleetBackendKind::Serial => Box::new(SerialBackend::new(agents)),
            FleetBackendKind::Sharded { shards } => {
                Box::new(ShardedBackend::new(agents, shards, false))
            }
            FleetBackendKind::ShardedBatched { shards } => {
                Box::new(ShardedBackend::new(agents, shards, true))
            }
            FleetBackendKind::Soa => Box::new(SoaBackend::new(agents)),
            FleetBackendKind::SoaSharded { shards } => {
                Box::new(SoaBackend::sharded(agents, shards))
            }
            FleetBackendKind::Event => Box::new(EventDrivenBackend::new(agents)),
            FleetBackendKind::EventSharded { shards } => {
                Box::new(EventShardedBackend::new(agents, shards))
            }
        }
    }
}

impl fmt::Display for FleetBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetBackendKind::Serial => write!(f, "serial"),
            FleetBackendKind::Sharded { shards } => write!(f, "sharded:{shards}"),
            FleetBackendKind::ShardedBatched { shards } => write!(f, "sharded-batched:{shards}"),
            FleetBackendKind::Soa => write!(f, "soa"),
            FleetBackendKind::SoaSharded { shards } => write!(f, "soa-sharded:{shards}"),
            FleetBackendKind::Event => write!(f, "event"),
            FleetBackendKind::EventSharded { shards } => write!(f, "event-sharded:{shards}"),
        }
    }
}

/// A [`FleetBackendKind`] string that did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendKindError {
    /// The rejected input.
    pub text: String,
}

impl fmt::Display for ParseBackendKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend kind {:?} (expected \"serial\", \"sharded:N\", \
             \"sharded-batched:N\", \"soa\", \"soa-sharded:N\", \"event\", or \
             \"event-sharded:N\")",
            self.text
        )
    }
}

impl std::error::Error for ParseBackendKindError {}

impl FromStr for FleetBackendKind {
    type Err = ParseBackendKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let reject = || ParseBackendKindError { text: s.to_owned() };
        if s == "serial" {
            return Ok(FleetBackendKind::Serial);
        }
        // The longer prefix first: "sharded-batched:2" also starts with
        // "sharded" and must not fall into the plain sharded arm.
        if let Some(count) = s.strip_prefix("sharded-batched:") {
            let shards = count.parse().map_err(|_| reject())?;
            return Ok(FleetBackendKind::ShardedBatched { shards });
        }
        if let Some(count) = s.strip_prefix("sharded:") {
            let shards = count.parse().map_err(|_| reject())?;
            return Ok(FleetBackendKind::Sharded { shards });
        }
        if s == "soa" {
            return Ok(FleetBackendKind::Soa);
        }
        if let Some(count) = s.strip_prefix("soa-sharded:") {
            let shards = count.parse().map_err(|_| reject())?;
            return Ok(FleetBackendKind::SoaSharded { shards });
        }
        if s == "event" {
            return Ok(FleetBackendKind::Event);
        }
        if let Some(count) = s.strip_prefix("event-sharded:") {
            let shards = count.parse().map_err(|_| reject())?;
            return Ok(FleetBackendKind::EventSharded { shards });
        }
        Err(reject())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_units::Priority;

    fn agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect()
    }

    #[test]
    fn backends_agree_on_a_mixed_schedule() {
        let schedule: Vec<bool> = (0..8).map(|i| i % 5 != 2).collect();
        let load = |rack: RackId, i: usize| {
            Watts::from_kilowatts(5.5 + 0.2 * f64::from(rack.index()) + 0.05 * i as f64)
        };
        let mut backends: Vec<Box<dyn FleetBackend>> = vec![
            FleetBackendKind::Serial.build(agents(6)),
            FleetBackendKind::Sharded { shards: 3 }.build(agents(6)),
            FleetBackendKind::ShardedBatched { shards: 3 }.build(agents(6)),
            FleetBackendKind::Soa.build(agents(6)),
            FleetBackendKind::SoaSharded { shards: 3 }.build(agents(6)),
            FleetBackendKind::Event.build(agents(6)),
            FleetBackendKind::EventSharded { shards: 3 }.build(agents(6)),
        ];
        for backend in &mut backends {
            backend.step_schedule(Seconds::new(1.0), &schedule, &load);
        }
        let reference = backends[0].readings();
        for backend in &backends[1..] {
            let readings = backend.readings();
            assert_eq!(readings.len(), reference.len(), "{}", backend.name());
            for (a, b) in reference.iter().zip(&readings) {
                assert_eq!(a.rack, b.rack, "{}", backend.name());
                assert_eq!(a.bbu_state, b.bbu_state, "{}", backend.name());
                assert_eq!(a.recharge_power, b.recharge_power, "{}", backend.name());
                assert_eq!(a.it_load, b.it_load, "{}", backend.name());
                assert_eq!(a.event_dod, b.event_dod, "{}", backend.name());
            }
        }
    }

    #[test]
    fn kind_names_and_default() {
        assert_eq!(FleetBackendKind::default(), FleetBackendKind::Serial);
        assert_eq!(FleetBackendKind::Serial.build(agents(1)).name(), "serial");
        assert_eq!(
            FleetBackendKind::Sharded { shards: 1 }
                .build(agents(1))
                .name(),
            "sharded"
        );
        assert_eq!(
            FleetBackendKind::ShardedBatched { shards: 1 }
                .build(agents(1))
                .name(),
            "sharded-batched"
        );
        assert_eq!(FleetBackendKind::Soa.build(agents(1)).name(), "soa");
        assert_eq!(
            FleetBackendKind::SoaSharded { shards: 1 }
                .build(agents(1))
                .name(),
            "soa-sharded"
        );
        assert_eq!(FleetBackendKind::Event.build(agents(1)).name(), "event");
        assert_eq!(
            FleetBackendKind::EventSharded { shards: 1 }
                .build(agents(1))
                .name(),
            "event-sharded"
        );
    }

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in [
            FleetBackendKind::Serial,
            FleetBackendKind::Sharded { shards: 4 },
            FleetBackendKind::ShardedBatched { shards: 2 },
            FleetBackendKind::Soa,
            FleetBackendKind::SoaSharded { shards: 3 },
            FleetBackendKind::Event,
            FleetBackendKind::EventSharded { shards: 4 },
        ] {
            assert_eq!(kind.to_string().parse(), Ok(kind));
        }
        assert_eq!("event".parse(), Ok(FleetBackendKind::Event));
        assert_eq!("serial".parse(), Ok(FleetBackendKind::Serial));
        assert_eq!(
            "sharded-batched:8".parse(),
            Ok(FleetBackendKind::ShardedBatched { shards: 8 })
        );
        assert_eq!("soa".parse(), Ok(FleetBackendKind::Soa));
        assert_eq!(
            "soa-sharded:4".parse(),
            Ok(FleetBackendKind::SoaSharded { shards: 4 })
        );
        assert_eq!(
            "event-sharded:8".parse(),
            Ok(FleetBackendKind::EventSharded { shards: 8 })
        );
        for bad in [
            "",
            "serial:1",
            "sharded",
            "sharded:",
            "sharded:x",
            "mesh:2",
            "soa:1",
            "soa-sharded",
            "soa-sharded:x",
            "event:1",
            "events",
            "event-sharded",
            "event-sharded:",
            "event-sharded:x",
            "event-sharded:1.5",
            "event-sharded:-2",
        ] {
            assert!(bad.parse::<FleetBackendKind>().is_err(), "{bad:?} parsed");
        }
    }
}
