//! Pluggable fleet-execution backends.
//!
//! The simulator's tick loop needs three things from wherever the rack agents
//! live: advance the physics over a schedule of sub-steps, read back the
//! fleet's telemetry, and hand the controller an [`AgentBus`]. The
//! [`FleetBackend`] trait captures exactly that surface, so the loop is
//! agnostic to whether agents are stepped serially in-process
//! ([`SerialBackend`]), on sharded worker threads ([`ShardedBackend`]), or —
//! in the future — behind an async or remote transport.
//!
//! All backends are **bit-identical**: a backend chooses *who* executes the
//! per-agent `set_offered_load → set_input_power → step` sequence and how
//! many channel round-trips a schedule costs, never what the sequence
//! computes. [`FleetBackendKind`] is the serializable selector a
//! scenario carries.

use recharge_units::{RackId, Seconds, Watts};

use crate::agent::{RackAgent, SimRackAgent};
use crate::bus::{AgentBus, InMemoryBus};
use crate::messages::PowerReading;
use crate::threaded::ThreadedFleet;

/// Where rack agents execute, and how sub-step schedules reach them.
///
/// A *schedule* is the run of physical sub-steps between two consecutive
/// controller interventions: `input_power[i]` and `load_of(rack, i)` describe
/// sub-step `i`, every sub-step lasting `dt`. Commands issued through
/// [`bus_mut`](Self::bus_mut) are only required to take effect at schedule
/// boundaries — which is where the controller runs, so it can never observe
/// the difference.
pub trait FleetBackend: Send {
    /// A short stable name for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Advances every agent through the schedule's sub-steps.
    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    );

    /// Post-step telemetry for every rack, in fleet order.
    fn readings(&self) -> Vec<PowerReading>;

    /// The command/read surface the controller drives.
    fn bus_mut(&mut self) -> &mut dyn AgentBus;
}

/// Steps every agent in-process, one rack at a time — the reference backend.
pub struct SerialBackend {
    bus: InMemoryBus<SimRackAgent>,
    racks: Vec<RackId>,
}

impl SerialBackend {
    /// Creates a serial backend over the given agents.
    #[must_use]
    pub fn new(agents: Vec<SimRackAgent>) -> Self {
        let racks = agents.iter().map(RackAgent::rack).collect();
        SerialBackend {
            bus: InMemoryBus::new(agents),
            racks,
        }
    }
}

impl FleetBackend for SerialBackend {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    ) {
        for (i, &power) in input_power.iter().enumerate() {
            for &rack in &self.racks {
                if let Some(agent) = self.bus.agent_mut(rack) {
                    agent.set_offered_load(load_of(rack, i));
                    agent.set_input_power(power);
                    agent.step(dt);
                }
            }
        }
    }

    fn readings(&self) -> Vec<PowerReading> {
        self.bus.agents().map(RackAgent::read).collect()
    }

    fn bus_mut(&mut self) -> &mut dyn AgentBus {
        &mut self.bus
    }
}

/// Steps agents on [`ThreadedFleet`] shard workers.
///
/// With `batched` set, a whole schedule travels as **one** channel round-trip
/// per shard ([`ThreadedFleet::step_batch`]); otherwise each sub-step is
/// submitted individually — the per-tick cadence the batched path is measured
/// against. Results are bit-identical either way.
pub struct ShardedBackend {
    fleet: ThreadedFleet,
    batched: bool,
}

impl ShardedBackend {
    /// Spawns `shards` workers over the agents (the count clamps to
    /// `[1, agents.len()]`).
    #[must_use]
    pub fn new(agents: Vec<SimRackAgent>, shards: usize, batched: bool) -> Self {
        ShardedBackend {
            fleet: ThreadedFleet::spawn(agents, shards),
            batched,
        }
    }
}

impl FleetBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        if self.batched {
            "sharded-batched"
        } else {
            "sharded"
        }
    }

    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    ) {
        if self.batched {
            self.fleet.step_batch(dt, input_power, load_of);
        } else {
            for (i, &power) in input_power.iter().enumerate() {
                self.fleet
                    .step_batch(dt, &[power], |rack, _| load_of(rack, i));
            }
        }
    }

    fn readings(&self) -> Vec<PowerReading> {
        self.fleet
            .racks()
            .into_iter()
            .filter_map(|r| self.fleet.read(r))
            .collect()
    }

    fn bus_mut(&mut self) -> &mut dyn AgentBus {
        &mut self.fleet
    }
}

/// The backend selector a scenario carries: which [`FleetBackend`] to build
/// for a fleet of agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetBackendKind {
    /// In-process serial stepping ([`SerialBackend`]); the default.
    #[default]
    Serial,
    /// Sharded worker threads, one channel round-trip per sub-step.
    Sharded {
        /// Worker-thread count (clamped to `[1, agents.len()]` at build).
        shards: usize,
    },
    /// Sharded worker threads, one channel round-trip per schedule.
    ShardedBatched {
        /// Worker-thread count (clamped to `[1, agents.len()]` at build).
        shards: usize,
    },
}

impl FleetBackendKind {
    /// Builds the backend over the given agents.
    #[must_use]
    pub fn build(self, agents: Vec<SimRackAgent>) -> Box<dyn FleetBackend> {
        match self {
            FleetBackendKind::Serial => Box::new(SerialBackend::new(agents)),
            FleetBackendKind::Sharded { shards } => {
                Box::new(ShardedBackend::new(agents, shards, false))
            }
            FleetBackendKind::ShardedBatched { shards } => {
                Box::new(ShardedBackend::new(agents, shards, true))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_units::Priority;

    fn agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect()
    }

    #[test]
    fn backends_agree_on_a_mixed_schedule() {
        let schedule: Vec<bool> = (0..8).map(|i| i % 5 != 2).collect();
        let load = |rack: RackId, i: usize| {
            Watts::from_kilowatts(5.5 + 0.2 * f64::from(rack.index()) + 0.05 * i as f64)
        };
        let mut backends: Vec<Box<dyn FleetBackend>> = vec![
            FleetBackendKind::Serial.build(agents(6)),
            FleetBackendKind::Sharded { shards: 3 }.build(agents(6)),
            FleetBackendKind::ShardedBatched { shards: 3 }.build(agents(6)),
        ];
        for backend in &mut backends {
            backend.step_schedule(Seconds::new(1.0), &schedule, &load);
        }
        let reference = backends[0].readings();
        for backend in &backends[1..] {
            let readings = backend.readings();
            assert_eq!(readings.len(), reference.len(), "{}", backend.name());
            for (a, b) in reference.iter().zip(&readings) {
                assert_eq!(a.rack, b.rack, "{}", backend.name());
                assert_eq!(a.bbu_state, b.bbu_state, "{}", backend.name());
                assert_eq!(a.recharge_power, b.recharge_power, "{}", backend.name());
                assert_eq!(a.it_load, b.it_load, "{}", backend.name());
                assert_eq!(a.event_dod, b.event_dod, "{}", backend.name());
            }
        }
    }

    #[test]
    fn kind_names_and_default() {
        assert_eq!(FleetBackendKind::default(), FleetBackendKind::Serial);
        assert_eq!(FleetBackendKind::Serial.build(agents(1)).name(), "serial");
        assert_eq!(
            FleetBackendKind::Sharded { shards: 1 }
                .build(agents(1))
                .name(),
            "sharded"
        );
        assert_eq!(
            FleetBackendKind::ShardedBatched { shards: 1 }
                .build(agents(1))
                .name(),
            "sharded-batched"
        );
    }
}
