//! Priority-aware server power capping: the Dynamo safety net.
//!
//! Capping "according to priority of services" (§II-B) is the last line of
//! defense in every strategy: lower-priority racks are throttled first, each
//! down to a configurable fraction of its load, until the required reduction
//! is covered.

use recharge_units::{RackId, Watts};

use crate::messages::PowerReading;

/// One rack's capping decision: limit the rack to `limit`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapDecision {
    /// The rack to cap.
    pub rack: RackId,
    /// The new server power limit for the rack.
    pub limit: Watts,
    /// Power shed by this decision.
    pub shed: Watts,
}

/// Plans server caps covering `deficit`, capping lowest-priority racks first
/// (highest current load first within a priority class, so the fewest racks
/// are touched). Each rack can shed at most `max_cap_fraction` of its current
/// load — servers cannot be throttled to zero.
///
/// Returns the decisions and the deficit that remains uncovered (non-zero
/// only when every rack is already at its floor).
///
/// # Examples
///
/// ```
/// use recharge_dynamo::capping::plan_caps;
/// # use recharge_dynamo::PowerReading;
/// # use recharge_battery::BbuState;
/// use recharge_units::{Dod, Priority, RackId, Watts};
///
/// # let reading = |i: u32, p: Priority, kw: f64| PowerReading {
/// #     rack: RackId::new(i), priority: p, input_power_present: true,
/// #     it_load: Watts::from_kilowatts(kw), recharge_power: Watts::ZERO,
/// #     bbu_state: BbuState::FullyCharged, event_dod: Dod::ZERO, dod: Dod::ZERO,
/// #     capped_power: Watts::ZERO,
/// # };
/// let readings = vec![reading(0, Priority::P1, 8.0), reading(1, Priority::P3, 8.0)];
/// let (caps, uncovered) = plan_caps(&readings, Watts::from_kilowatts(2.0), 0.4);
/// assert_eq!(caps[0].rack, RackId::new(1)); // P3 capped before P1
/// assert_eq!(uncovered, Watts::ZERO);
/// ```
#[must_use]
pub fn plan_caps(
    readings: &[PowerReading],
    deficit: Watts,
    max_cap_fraction: f64,
) -> (Vec<CapDecision>, Watts) {
    assert!(
        (0.0..=1.0).contains(&max_cap_fraction),
        "cap fraction must be a fraction"
    );
    if deficit <= Watts::ZERO {
        return (Vec::new(), Watts::ZERO);
    }

    let mut order: Vec<&PowerReading> = readings.iter().filter(|r| r.input_power_present).collect();
    // Lowest priority first (P3 before P1), then biggest load first.
    order.sort_by(|a, b| {
        b.priority
            .cmp(&a.priority)
            .then(b.it_load.as_watts().total_cmp(&a.it_load.as_watts()))
    });

    let mut decisions = Vec::new();
    let mut remaining = deficit;
    for reading in order {
        if remaining <= Watts::ZERO {
            break;
        }
        let max_shed = reading.it_load * max_cap_fraction;
        if max_shed <= Watts::ZERO {
            continue;
        }
        let shed = max_shed.min(remaining);
        decisions.push(CapDecision {
            rack: reading.rack,
            limit: reading.it_load - shed,
            shed,
        });
        remaining -= shed;
    }
    (decisions, remaining.max(Watts::ZERO))
}

/// Plans which capped racks can be released given `headroom` of spare power,
/// highest priority first (P1 recovers before P3). A rack is only released
/// when its full capped amount fits in the remaining headroom, so uncapping
/// never re-triggers the overload it solved.
#[must_use]
pub fn plan_uncaps(readings: &[PowerReading], headroom: Watts) -> Vec<RackId> {
    if headroom <= Watts::ZERO {
        return Vec::new();
    }
    let mut capped: Vec<&PowerReading> = readings
        .iter()
        .filter(|r| r.capped_power > Watts::ZERO)
        .collect();
    capped.sort_by(|a, b| {
        a.priority.cmp(&b.priority).then(
            a.capped_power
                .as_watts()
                .total_cmp(&b.capped_power.as_watts()),
        )
    });

    let mut released = Vec::new();
    let mut remaining = headroom;
    for reading in capped {
        if reading.capped_power <= remaining {
            released.push(reading.rack);
            remaining -= reading.capped_power;
        }
    }
    released
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_battery::BbuState;
    use recharge_units::{Dod, Priority};

    fn reading(i: u32, priority: Priority, load_kw: f64, capped_kw: f64) -> PowerReading {
        PowerReading {
            rack: RackId::new(i),
            priority,
            input_power_present: true,
            it_load: Watts::from_kilowatts(load_kw),
            recharge_power: Watts::ZERO,
            bbu_state: BbuState::FullyCharged,
            event_dod: Dod::ZERO,
            dod: Dod::ZERO,
            capped_power: Watts::from_kilowatts(capped_kw),
        }
    }

    #[test]
    fn lowest_priority_capped_first() {
        let readings = vec![
            reading(0, Priority::P1, 8.0, 0.0),
            reading(1, Priority::P2, 8.0, 0.0),
            reading(2, Priority::P3, 8.0, 0.0),
        ];
        let (caps, uncovered) = plan_caps(&readings, Watts::from_kilowatts(3.0), 0.4);
        assert_eq!(uncovered, Watts::ZERO);
        assert_eq!(caps[0].rack, RackId::new(2));
        // P3 sheds its full 40% (3.2 kW ≥ 3.0 kW needed): one rack suffices.
        assert_eq!(caps.len(), 1);
        assert!((caps[0].shed.as_kilowatts() - 3.0).abs() < 1e-9);
        assert!((caps[0].limit.as_kilowatts() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn escalates_to_higher_priorities_when_needed() {
        let readings = vec![
            reading(0, Priority::P1, 10.0, 0.0),
            reading(1, Priority::P3, 10.0, 0.0),
        ];
        let (caps, uncovered) = plan_caps(&readings, Watts::from_kilowatts(6.0), 0.4);
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0].rack, RackId::new(1));
        assert_eq!(caps[1].rack, RackId::new(0));
        assert_eq!(uncovered, Watts::ZERO);
        let total: f64 = caps.iter().map(|c| c.shed.as_kilowatts()).sum();
        assert!((total - 6.0).abs() < 1e-9);
    }

    #[test]
    fn reports_uncoverable_deficit() {
        let readings = vec![reading(0, Priority::P3, 10.0, 0.0)];
        let (caps, uncovered) = plan_caps(&readings, Watts::from_kilowatts(7.0), 0.4);
        assert_eq!(caps.len(), 1);
        assert!((caps[0].shed.as_kilowatts() - 4.0).abs() < 1e-9);
        assert!((uncovered.as_kilowatts() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn racks_on_battery_are_not_capped() {
        let mut riding = reading(0, Priority::P3, 10.0, 0.0);
        riding.input_power_present = false;
        let (caps, uncovered) = plan_caps(&[riding], Watts::from_kilowatts(1.0), 0.4);
        assert!(caps.is_empty());
        assert!(uncovered > Watts::ZERO);
    }

    #[test]
    fn zero_deficit_needs_no_caps() {
        let readings = vec![reading(0, Priority::P3, 10.0, 0.0)];
        let (caps, uncovered) = plan_caps(&readings, Watts::ZERO, 0.4);
        assert!(caps.is_empty());
        assert_eq!(uncovered, Watts::ZERO);
    }

    #[test]
    fn uncap_releases_highest_priority_first_within_headroom() {
        let readings = vec![
            reading(0, Priority::P3, 6.0, 2.0),
            reading(1, Priority::P1, 6.0, 2.0),
            reading(2, Priority::P2, 6.0, 2.0),
        ];
        let released = plan_uncaps(&readings, Watts::from_kilowatts(4.5));
        assert_eq!(released, vec![RackId::new(1), RackId::new(2)]);
    }

    #[test]
    fn uncap_with_no_headroom_releases_nothing() {
        let readings = vec![reading(0, Priority::P1, 6.0, 2.0)];
        assert!(plan_uncaps(&readings, Watts::ZERO).is_empty());
        assert!(plan_uncaps(&readings, Watts::from_kilowatts(1.0)).is_empty());
    }
}
