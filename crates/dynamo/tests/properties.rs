//! Property tests for the Dynamo control plane: capping plans and the
//! controller's protection invariants.

use proptest::prelude::*;

use recharge_battery::BbuState;
use recharge_dynamo::capping::{plan_caps, plan_uncaps};
use recharge_dynamo::{
    Controller, ControllerConfig, InMemoryBus, PowerReading, SimRackAgent,
    Strategy as ControlStrategy,
};
use recharge_units::{DeviceId, Dod, Priority, RackId, Seconds, SimTime, Watts};

fn arb_readings(max: usize) -> impl Strategy<Value = Vec<PowerReading>> {
    proptest::collection::vec((0u8..3, 500.0f64..12_600.0, proptest::bool::ANY), 1..max).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (p, load, powered))| PowerReading {
                    rack: RackId::new(i as u32),
                    priority: Priority::ALL[p as usize],
                    input_power_present: powered,
                    it_load: Watts::new(load),
                    recharge_power: Watts::ZERO,
                    bbu_state: BbuState::FullyCharged,
                    event_dod: Dod::ZERO,
                    dod: Dod::ZERO,
                    capped_power: Watts::ZERO,
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn caps_never_exceed_the_fraction_and_cover_or_report(
        readings in arb_readings(25),
        deficit_kw in 0.0f64..80.0,
        fraction in 0.05f64..1.0,
    ) {
        let deficit = Watts::from_kilowatts(deficit_kw);
        let (caps, uncovered) = plan_caps(&readings, deficit, fraction);

        let mut shed_total = Watts::ZERO;
        for cap in &caps {
            let reading = readings.iter().find(|r| r.rack == cap.rack).expect("cap targets a rack");
            prop_assert!(reading.input_power_present, "capped a rack on battery");
            prop_assert!(cap.shed <= reading.it_load * fraction + Watts::new(1e-9));
            prop_assert!(cap.limit >= Watts::ZERO);
            prop_assert!(
                (cap.limit + cap.shed - reading.it_load).abs() < Watts::new(1e-6),
                "limit + shed must equal the load"
            );
            shed_total += cap.shed;
        }
        prop_assert!(
            (shed_total + uncovered - deficit).abs() < Watts::new(1e-6)
                || shed_total >= deficit,
            "shed {shed_total} + uncovered {uncovered} must account for {deficit}"
        );
    }

    #[test]
    fn capping_respects_priority_order(
        readings in arb_readings(25),
        deficit_kw in 1.0f64..40.0,
    ) {
        let (caps, _) = plan_caps(&readings, Watts::from_kilowatts(deficit_kw), 0.4);
        // If any P1 rack is capped, every powered P2/P3 rack must already be
        // capped at its maximum shed.
        let capped_p1 = caps.iter().any(|c| {
            readings.iter().any(|r| r.rack == c.rack && r.priority == Priority::P1)
        });
        if capped_p1 {
            for reading in readings.iter().filter(|r| {
                r.input_power_present && r.priority != Priority::P1 && r.it_load > Watts::ZERO
            }) {
                let cap = caps.iter().find(|c| c.rack == reading.rack);
                prop_assert!(
                    cap.is_some_and(|c| c.shed >= reading.it_load * 0.4 - Watts::new(1e-6)),
                    "P1 capped while {} had slack",
                    reading.rack
                );
            }
        }
    }

    #[test]
    fn uncap_plan_fits_headroom(readings in arb_readings(25), headroom_kw in 0.0f64..30.0) {
        let mut with_caps = readings;
        for (i, r) in with_caps.iter_mut().enumerate() {
            if i % 2 == 0 {
                r.capped_power = r.it_load * 0.25;
            }
        }
        let headroom = Watts::from_kilowatts(headroom_kw);
        let released = plan_uncaps(&with_caps, headroom);
        let total: Watts = released
            .iter()
            .map(|rack| {
                with_caps
                    .iter()
                    .find(|r| r.rack == *rack)
                    .expect("released rack exists")
                    .capped_power
            })
            .sum();
        prop_assert!(total <= headroom + Watts::new(1e-6));
    }

    #[test]
    fn controller_total_never_exceeds_planning_limit_after_settling(
        rack_count in 2usize..8,
        limit_headroom_kw in 4.0f64..40.0,
        ot_secs in 10.0f64..120.0,
    ) {
        // Whatever the fleet size, limit headroom, and event depth, the
        // coordinated draw settles at or below the physical limit within a
        // few control intervals (one settling tick is tolerated).
        let agents: Vec<SimRackAgent> = (0..rack_count as u32)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect();
        let mut bus = InMemoryBus::new(agents);
        let it_total = 6.0 * rack_count as f64;
        let floor_kw = 0.375 * rack_count as f64;
        let limit = Watts::from_kilowatts(it_total + floor_kw.max(limit_headroom_kw));
        let mut controller = Controller::new(
            ControllerConfig::new(DeviceId::new(0), limit),
            ControlStrategy::PriorityAware,
        );

        for a in bus.agents_mut() {
            a.set_input_power(false);
        }
        for a in bus.agents_mut() {
            a.step(Seconds::new(ot_secs));
        }
        controller.tick(SimTime::ZERO, &mut bus); // pre-plan while dark
        for a in bus.agents_mut() {
            a.set_input_power(true);
        }

        let mut worst_after_settle = Watts::ZERO;
        for s in 0..600u32 {
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
            let report = controller.tick(SimTime::from_secs(f64::from(s + 1)), &mut bus);
            if s > 2 {
                worst_after_settle = worst_after_settle.max(report.total_draw);
            }
        }
        prop_assert!(
            worst_after_settle <= limit + Watts::new(1.0),
            "settled draw {worst_after_settle} exceeded limit {limit}"
        );
    }
}
