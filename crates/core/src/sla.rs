//! The charging-time SLA table (Table II).

use serde::{Deserialize, Serialize};

use recharge_units::{Priority, Seconds};

/// Per-priority battery charging-time SLAs with their reliability targets.
///
/// Table II of the paper:
///
/// | Priority | AOR | Loss of redundancy | Charging-time SLA |
/// |---|---|---|---|
/// | P1 (high) | 99.94% | 5.26 h/yr | 30 minutes |
/// | P2 (normal) | 99.90% | 8.76 h/yr | 60 minutes |
/// | P3 (low) | 99.85% | 13.14 h/yr | 90 minutes |
///
/// The general framework applies to any budgets (the paper notes future
/// hardware may relax low-priority SLAs further), so the table is a value
/// type rather than constants.
///
/// # Examples
///
/// ```
/// use recharge_core::SlaTable;
/// use recharge_units::{Priority, Seconds};
///
/// let sla = SlaTable::table2();
/// assert_eq!(sla.charge_time_budget(Priority::P1), Seconds::from_minutes(30.0));
/// assert!(sla.aor_target(Priority::P3) < sla.aor_target(Priority::P1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaTable {
    budgets: [Seconds; 3],
    aor_targets: [f64; 3],
}

impl SlaTable {
    /// The published Table II.
    #[must_use]
    pub fn table2() -> Self {
        SlaTable {
            budgets: [
                Seconds::from_minutes(30.0),
                Seconds::from_minutes(60.0),
                Seconds::from_minutes(90.0),
            ],
            aor_targets: [0.9994, 0.9990, 0.9985],
        }
    }

    /// Creates a custom SLA table.
    ///
    /// # Panics
    ///
    /// Panics if budgets are not positive and non-decreasing from P1 to P3,
    /// or AOR targets are outside `(0, 1]` or increasing from P1 to P3:
    /// lower priorities may never have stricter requirements.
    #[must_use]
    pub fn new(budgets: [Seconds; 3], aor_targets: [f64; 3]) -> Self {
        assert!(budgets[0] > Seconds::ZERO, "budgets must be positive");
        assert!(
            budgets[0] <= budgets[1] && budgets[1] <= budgets[2],
            "lower priority cannot have a stricter charge-time budget"
        );
        assert!(
            aor_targets.iter().all(|a| (0.0..=1.0).contains(a)),
            "AOR targets must be fractions"
        );
        assert!(
            aor_targets[0] >= aor_targets[1] && aor_targets[1] >= aor_targets[2],
            "lower priority cannot have a higher AOR target"
        );
        SlaTable {
            budgets,
            aor_targets,
        }
    }

    /// The charging-time budget for a priority.
    #[must_use]
    pub fn charge_time_budget(&self, priority: Priority) -> Seconds {
        self.budgets[(priority.rank() - 1) as usize]
    }

    /// The availability-of-redundancy target for a priority.
    #[must_use]
    pub fn aor_target(&self, priority: Priority) -> f64 {
        self.aor_targets[(priority.rank() - 1) as usize]
    }

    /// The "loss of redundancy" column of Table II: hours per year without
    /// battery backup implied by the AOR target.
    #[must_use]
    pub fn loss_of_redundancy_hours(&self, priority: Priority) -> f64 {
        (1.0 - self.aor_target(priority)) * 8_760.0
    }
}

impl Default for SlaTable {
    fn default() -> Self {
        SlaTable::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let sla = SlaTable::table2();
        assert_eq!(sla.charge_time_budget(Priority::P1).as_minutes(), 30.0);
        assert_eq!(sla.charge_time_budget(Priority::P2).as_minutes(), 60.0);
        assert_eq!(sla.charge_time_budget(Priority::P3).as_minutes(), 90.0);
        assert_eq!(sla.aor_target(Priority::P1), 0.9994);
        assert_eq!(sla.aor_target(Priority::P2), 0.9990);
        assert_eq!(sla.aor_target(Priority::P3), 0.9985);
    }

    #[test]
    fn loss_of_redundancy_matches_published_column() {
        let sla = SlaTable::table2();
        assert!((sla.loss_of_redundancy_hours(Priority::P1) - 5.26).abs() < 0.01);
        assert!((sla.loss_of_redundancy_hours(Priority::P2) - 8.76).abs() < 0.01);
        assert!((sla.loss_of_redundancy_hours(Priority::P3) - 13.14).abs() < 0.01);
    }

    #[test]
    fn custom_table() {
        let sla = SlaTable::new(
            [
                Seconds::from_minutes(20.0),
                Seconds::from_minutes(40.0),
                Seconds::from_minutes(120.0),
            ],
            [0.9999, 0.999, 0.99],
        );
        assert_eq!(sla.charge_time_budget(Priority::P2).as_minutes(), 40.0);
    }

    #[test]
    #[should_panic(expected = "stricter")]
    fn inverted_budgets_panic() {
        let _ = SlaTable::new(
            [
                Seconds::from_minutes(90.0),
                Seconds::from_minutes(60.0),
                Seconds::from_minutes(30.0),
            ],
            [0.9994, 0.9990, 0.9985],
        );
    }

    #[test]
    #[should_panic(expected = "AOR")]
    fn inverted_aor_panics() {
        let _ = SlaTable::new(
            [
                Seconds::from_minutes(30.0),
                Seconds::from_minutes(60.0),
                Seconds::from_minutes(90.0),
            ],
            [0.9, 0.99, 0.999],
        );
    }

    #[test]
    fn default_is_table2() {
        assert_eq!(SlaTable::default(), SlaTable::table2());
    }
}
