//! An incremental priority/DOD index over the charging fleet.
//!
//! Algorithm 1 and its reverse throttling pass both iterate the fleet in
//! (priority, depth-of-discharge) order. Rebuilding that order with a sort on
//! every controller tick costs `O(n log n)` at fleet scale even when nothing
//! changed; the [`ChargeIndex`] instead keeps the order *materialized* and
//! applies battery-state deltas as they arrive — admission, DOD refresh,
//! current overrides, completion — each an `O(log n)` `BTreeSet` operation,
//! and a DOD refresh that stays inside its quantization bucket touches the
//! ordering not at all.
//!
//! The DOD axis is bucketed with the same [`SLA_MEMO_DOD_BINS`] ceil-rounding
//! quantization the memoized [`SlaCurrentPolicy`](crate::SlaCurrentPolicy)
//! uses, so two racks in the same bucket have the *same* memoized SLA current
//! and hence the same upgrade cost: iterating bucket order is
//! cost-equivalent to iterating exact-DOD order, and ties inside a bucket are
//! broken deterministically by rack id.

use std::collections::{BTreeSet, HashMap};

use recharge_units::{Amperes, Dod, Priority, RackId};

use crate::algorithm::RackChargeState;
use crate::policy::SLA_MEMO_DOD_BINS;

/// One rack's tracked charging state inside a [`ChargeIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexedCharge {
    /// The rack's service priority.
    pub priority: Priority,
    /// The latest depth-of-discharge estimate.
    pub dod: Dod,
    /// The current last commanded for the rack (zero when uncommanded).
    pub current: Amperes,
}

/// The ordering key: priority rank, then ceil-quantized DOD bucket, then rack
/// id as the deterministic tie-break.
type OrderKey = (u8, u16, RackId);

/// An incrementally maintained (priority, DOD-bucket) ordering of the racks
/// whose batteries are charging or discharging.
///
/// Ascending iteration ([`charge_order`](Self::charge_order)) yields the
/// highest-priority-lowest-discharge-first order Algorithm 1 assigns in;
/// descending iteration ([`throttle_order`](Self::throttle_order)) yields the
/// reverse order the overload response sheds in.
///
/// # Examples
///
/// ```
/// use recharge_core::ChargeIndex;
/// use recharge_units::{Amperes, Dod, Priority, RackId};
///
/// let mut index = ChargeIndex::new();
/// index.upsert(RackId::new(1), Priority::P3, Dod::new(0.4), Amperes::ZERO);
/// index.upsert(RackId::new(2), Priority::P1, Dod::new(0.8), Amperes::ZERO);
/// let order: Vec<RackId> = index.charge_order().map(|(rack, _)| rack).collect();
/// assert_eq!(order, vec![RackId::new(2), RackId::new(1)]); // P1 before P3
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChargeIndex {
    entries: HashMap<RackId, IndexedCharge>,
    order: BTreeSet<OrderKey>,
}

impl ChargeIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        ChargeIndex::default()
    }

    /// The quantization bucket of a DOD: `ceil(dod × SLA_MEMO_DOD_BINS)`,
    /// identical to the rounding [`sla_current`] memoization uses, so racks
    /// sharing a bucket share their memoized SLA current.
    ///
    /// [`sla_current`]: crate::SlaCurrentPolicy::sla_current
    #[must_use]
    pub fn dod_bucket(dod: Dod) -> u16 {
        // Dod is clamped to [0, 1] on construction; min() guards the
        // 1.0 × BINS float edge, mirroring the memo lookup.
        let bin = (dod.value() * SLA_MEMO_DOD_BINS as f64).ceil() as usize;
        bin.min(SLA_MEMO_DOD_BINS) as u16
    }

    fn key(rack: RackId, entry: &IndexedCharge) -> OrderKey {
        (entry.priority.rank(), Self::dod_bucket(entry.dod), rack)
    }

    /// Inserts a rack or replaces its tracked state entirely.
    pub fn upsert(&mut self, rack: RackId, priority: Priority, dod: Dod, current: Amperes) {
        let entry = IndexedCharge {
            priority,
            dod,
            current,
        };
        if let Some(old) = self.entries.insert(rack, entry) {
            self.order.remove(&Self::key(rack, &old));
        }
        self.order.insert(Self::key(rack, &entry));
    }

    /// Removes a rack, returning its last tracked state.
    pub fn remove(&mut self, rack: RackId) -> Option<IndexedCharge> {
        let entry = self.entries.remove(&rack)?;
        self.order.remove(&Self::key(rack, &entry));
        Some(entry)
    }

    /// Refreshes a rack's DOD estimate. The ordering is only touched when the
    /// new estimate crosses a quantization-bucket boundary; returns whether it
    /// did. Unknown racks are ignored (returns `false`).
    pub fn set_dod(&mut self, rack: RackId, dod: Dod) -> bool {
        let Some(entry) = self.entries.get_mut(&rack) else {
            return false;
        };
        let old_bucket = Self::dod_bucket(entry.dod);
        let new_bucket = Self::dod_bucket(dod);
        entry.dod = dod;
        if old_bucket == new_bucket {
            return false;
        }
        let priority = entry.priority;
        self.order.remove(&(priority.rank(), old_bucket, rack));
        self.order.insert((priority.rank(), new_bucket, rack));
        true
    }

    /// Records the current commanded for a rack (does not affect ordering).
    /// Unknown racks are ignored.
    pub fn set_current(&mut self, rack: RackId, current: Amperes) {
        if let Some(entry) = self.entries.get_mut(&rack) {
            entry.current = current;
        }
    }

    /// The tracked state of a rack.
    #[must_use]
    pub fn get(&self, rack: RackId) -> Option<&IndexedCharge> {
        self.entries.get(&rack)
    }

    /// The current last commanded for a rack.
    #[must_use]
    pub fn current(&self, rack: RackId) -> Option<Amperes> {
        self.entries.get(&rack).map(|e| e.current)
    }

    /// Whether the index tracks the rack.
    #[must_use]
    pub fn contains(&self, rack: RackId) -> bool {
        self.entries.contains_key(&rack)
    }

    /// Number of tracked racks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no rack is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every tracked rack.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Tracked racks in Algorithm 1's assignment order:
    /// highest-priority-lowest-discharge-first.
    pub fn charge_order(&self) -> impl Iterator<Item = (RackId, &IndexedCharge)> + '_ {
        self.order
            .iter()
            .map(|&(_, _, rack)| (rack, &self.entries[&rack]))
    }

    /// Tracked racks in the overload response's shed order:
    /// lowest-priority-highest-discharge-first (the exact reverse of
    /// [`charge_order`](Self::charge_order)).
    pub fn throttle_order(&self) -> impl Iterator<Item = (RackId, &IndexedCharge)> + '_ {
        self.order
            .iter()
            .rev()
            .map(|&(_, _, rack)| (rack, &self.entries[&rack]))
    }

    /// The tracked racks as plain [`RackChargeState`]s, in charge order.
    #[must_use]
    pub fn states(&self) -> Vec<RackChargeState> {
        self.charge_order()
            .map(|(rack, e)| RackChargeState {
                rack,
                priority: e.priority,
                dod: e.dod,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(index: &ChargeIndex) -> Vec<u32> {
        index.charge_order().map(|(r, _)| r.index()).collect()
    }

    #[test]
    fn orders_by_priority_then_dod_then_rack() {
        let mut index = ChargeIndex::new();
        index.upsert(RackId::new(0), Priority::P2, Dod::new(0.5), Amperes::ZERO);
        index.upsert(RackId::new(1), Priority::P1, Dod::new(0.9), Amperes::ZERO);
        index.upsert(RackId::new(2), Priority::P1, Dod::new(0.2), Amperes::ZERO);
        index.upsert(RackId::new(3), Priority::P3, Dod::new(0.1), Amperes::ZERO);
        assert_eq!(ids(&index), vec![2, 1, 0, 3]);
        let reverse: Vec<u32> = index.throttle_order().map(|(r, _)| r.index()).collect();
        assert_eq!(reverse, vec![3, 0, 1, 2]);
    }

    #[test]
    fn bucket_matches_memo_rounding() {
        assert_eq!(ChargeIndex::dod_bucket(Dod::new(0.0)), 0);
        assert_eq!(ChargeIndex::dod_bucket(Dod::new(1.0)), 1024);
        // 0.5 × 1024 = 512 exactly; the next representable DOD above lands in
        // bucket 513 via the ceil.
        assert_eq!(ChargeIndex::dod_bucket(Dod::new(0.5)), 512);
        assert_eq!(ChargeIndex::dod_bucket(Dod::new(0.5 + 1e-9)), 513);
    }

    #[test]
    fn set_dod_moves_only_on_bucket_crossings() {
        let mut index = ChargeIndex::new();
        index.upsert(RackId::new(7), Priority::P2, Dod::new(0.5), Amperes::ZERO);
        // A refresh inside the same 1/1024 bucket leaves the ordering alone.
        assert!(!index.set_dod(RackId::new(7), Dod::new(0.5 - 1e-9)));
        // A refresh across a bucket boundary re-slots the entry.
        assert!(index.set_dod(RackId::new(7), Dod::new(0.75)));
        assert_eq!(index.get(RackId::new(7)).unwrap().dod, Dod::new(0.75));
        assert!(
            !index.set_dod(RackId::new(99), Dod::new(0.1)),
            "unknown rack"
        );
    }

    #[test]
    fn upsert_replaces_and_remove_unlinks() {
        let mut index = ChargeIndex::new();
        index.upsert(RackId::new(4), Priority::P3, Dod::new(0.8), Amperes::ZERO);
        index.upsert(
            RackId::new(4),
            Priority::P1,
            Dod::new(0.1),
            Amperes::new(2.0),
        );
        assert_eq!(index.len(), 1);
        assert_eq!(index.current(RackId::new(4)), Some(Amperes::new(2.0)));
        let removed = index.remove(RackId::new(4)).unwrap();
        assert_eq!(removed.priority, Priority::P1);
        assert!(index.is_empty());
        assert!(index.remove(RackId::new(4)).is_none());
        // No stale order entries survive the churn.
        assert_eq!(index.charge_order().count(), 0);
    }

    #[test]
    fn set_current_does_not_reorder() {
        let mut index = ChargeIndex::new();
        index.upsert(RackId::new(0), Priority::P1, Dod::new(0.3), Amperes::ZERO);
        index.upsert(RackId::new(1), Priority::P1, Dod::new(0.6), Amperes::ZERO);
        let before = ids(&index);
        index.set_current(RackId::new(1), Amperes::new(4.0));
        assert_eq!(ids(&index), before);
        assert_eq!(index.current(RackId::new(1)), Some(Amperes::new(4.0)));
        index.set_current(RackId::new(9), Amperes::new(1.0)); // ignored
        assert_eq!(index.current(RackId::new(9)), None);
    }

    #[test]
    fn states_round_trip_in_charge_order() {
        let mut index = ChargeIndex::new();
        index.upsert(RackId::new(5), Priority::P2, Dod::new(0.4), Amperes::ZERO);
        index.upsert(RackId::new(3), Priority::P1, Dod::new(0.7), Amperes::ZERO);
        let states = index.states();
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].rack, RackId::new(3));
        assert_eq!(states[1].rack, RackId::new(5));
    }
}
