//! Rack recharge power as a function of charging current.

use serde::{Deserialize, Serialize};

use recharge_battery::BbuParams;
use recharge_units::{Amperes, Watts};

/// Linear model of rack recharge power versus per-BBU charging current.
///
/// During the CC phase — the phase that matters for breaker protection,
/// because it is when the power draw peaks — rack recharge power is
/// proportional to the commanded current (§V-B: "CC power would be a constant
/// 1.9 kW" at 5 A). The controller uses this model to translate current
/// assignments into power demand against the available budget.
///
/// # Examples
///
/// ```
/// use recharge_core::RechargePowerModel;
/// use recharge_units::Amperes;
///
/// let model = RechargePowerModel::production();
/// let at_5a = model.rack_power(Amperes::new(5.0));
/// assert!((1.7..2.0).contains(&at_5a.as_kilowatts())); // ≈1.9 kW
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RechargePowerModel {
    watts_per_amp: Watts,
}

impl RechargePowerModel {
    /// Derives the model from battery parameters: each of the rack's BBUs
    /// draws `V_cc→cv × I × loss` from the wall at the top of its CC phase.
    #[must_use]
    pub fn from_params(params: &BbuParams) -> Self {
        let per_amp = params.cc_to_cv_voltage.as_volts()
            * params.wall_loss_factor
            * f64::from(params.bbus_per_rack);
        RechargePowerModel {
            watts_per_amp: Watts::new(per_amp),
        }
    }

    /// The model for the calibrated production battery (≈374 W per ampere).
    #[must_use]
    pub fn production() -> Self {
        RechargePowerModel::from_params(&BbuParams::production())
    }

    /// Creates a model directly from a watts-per-ampere slope.
    ///
    /// # Panics
    ///
    /// Panics if the slope is not positive and finite.
    #[must_use]
    pub fn with_watts_per_amp(watts_per_amp: Watts) -> Self {
        assert!(
            watts_per_amp > Watts::ZERO && watts_per_amp.is_finite(),
            "watts-per-amp slope must be positive"
        );
        RechargePowerModel { watts_per_amp }
    }

    /// The slope of the model.
    #[must_use]
    pub fn watts_per_amp(&self) -> Watts {
        self.watts_per_amp
    }

    /// Peak (CC-phase) rack recharge power at the given per-BBU current.
    #[must_use]
    pub fn rack_power(&self, current: Amperes) -> Watts {
        self.watts_per_amp * current.as_amps()
    }

    /// The largest per-BBU current whose rack power fits in `budget`,
    /// unclamped (may fall outside the 1–5 A hardware range).
    #[must_use]
    pub fn current_for_power(&self, budget: Watts) -> Amperes {
        Amperes::new((budget / self.watts_per_amp).max(0.0))
    }
}

impl Default for RechargePowerModel {
    fn default() -> Self {
        RechargePowerModel::production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_anchors() {
        let m = RechargePowerModel::production();
        // §III-A / §V-A anchors: ~1.9 kW at 5 A, ~700 W at 2 A, ~350 W at 1 A.
        assert!((1.7..2.0).contains(&m.rack_power(Amperes::new(5.0)).as_kilowatts()));
        let w2 = m.rack_power(Amperes::new(2.0)).as_watts();
        assert!((680.0..800.0).contains(&w2), "2 A → {w2} W");
        let w1 = m.rack_power(Amperes::new(1.0)).as_watts();
        assert!((340.0..400.0).contains(&w1), "1 A → {w1} W");
    }

    #[test]
    fn linearity() {
        let m = RechargePowerModel::with_watts_per_amp(Watts::new(100.0));
        assert_eq!(m.rack_power(Amperes::new(3.0)), Watts::new(300.0));
        assert_eq!(m.current_for_power(Watts::new(250.0)), Amperes::new(2.5));
        assert_eq!(m.current_for_power(Watts::new(-5.0)), Amperes::ZERO);
    }

    #[test]
    fn round_trip() {
        let m = RechargePowerModel::production();
        let i = Amperes::new(3.3);
        let back = m.current_for_power(m.rack_power(i));
        assert!((back.as_amps() - 3.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_slope_panics() {
        let _ = RechargePowerModel::with_watts_per_amp(Watts::ZERO);
    }
}
