//! Algorithm 1: highest-priority-lowest-discharge-first battery charging,
//! plus the reverse-order throttling pass used on overload.

use serde::{Deserialize, Serialize};

use recharge_units::{Amperes, Dod, Priority, RackId, Watts};

use crate::index::ChargeIndex;
use crate::policy::SlaCurrentPolicy;
use crate::power_model::RechargePowerModel;

/// A rack whose batteries need to charge: the controller's view at the start
/// of a charging sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackChargeState {
    /// The rack.
    pub rack: RackId,
    /// Its service priority.
    pub priority: Priority,
    /// Depth of discharge of its batteries, estimated by the leaf controller
    /// from the open-transition length and the rack IT load.
    pub dod: Dod,
}

/// One rack's charging-current assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeAssignment {
    /// The rack.
    pub rack: RackId,
    /// Its service priority (carried for reverse-order throttling).
    pub priority: Priority,
    /// Its battery depth of discharge at charge start.
    pub dod: Dod,
    /// The assigned per-BBU charging current.
    pub current: Amperes,
    /// Whether this assignment meets the rack's charging-time SLA.
    pub sla_met: bool,
}

/// The result of an assignment pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentOutcome {
    /// Per-rack assignments, in the input's rack order.
    pub assignments: Vec<ChargeAssignment>,
    /// Total peak recharge power the assignments will draw.
    pub total_recharge_power: Watts,
    /// Power budget that remained unallocated (zero when exhausted).
    pub remaining_power: Watts,
}

impl AssignmentOutcome {
    /// Number of racks whose SLA is met, optionally filtered by priority.
    #[must_use]
    pub fn sla_met_count(&self, priority: Option<Priority>) -> usize {
        self.assignments
            .iter()
            .filter(|a| a.sla_met && priority.is_none_or(|p| a.priority == p))
            .count()
    }
}

/// **Algorithm 1** (§IV-C): assigns charging currents so that charging-time
/// SLAs are satisfied highest-priority-first — and lowest-discharge-first
/// within a priority, which maximizes the number of satisfied racks — without
/// exceeding the available power.
///
/// Every rack is first set to the 1 A hardware minimum (charging cannot be
/// postponed entirely with current hardware, §IV-A); the minimum draw is
/// therefore committed up front, and the sorted pass upgrades racks to their
/// Fig 9(b) SLA current while budget remains. The pass stops at the first
/// rack that no longer fits, preserving strict priority order: power is never
/// diverted around a starved high-priority rack to a cheaper low-priority one.
///
/// `available_power` is the breaker headroom (limit − IT load) granted to
/// battery charging. A rack's `sla_met` flag is true when its *assigned*
/// current meets the SLA — which includes racks left at the minimum whose
/// SLA only needs 1 A (the Fig 14(a) observation for P3).
///
/// # Examples
///
/// ```
/// use recharge_core::{assign_priority_aware, RackChargeState, RechargePowerModel, SlaCurrentPolicy};
/// use recharge_units::{Dod, Priority, RackId, Watts};
///
/// let policy = SlaCurrentPolicy::production();
/// let model = RechargePowerModel::production();
/// let racks: Vec<_> = (0..4)
///     .map(|i| RackChargeState {
///         rack: RackId::new(i),
///         priority: Priority::P2,
///         dod: Dod::new(0.6),
///     })
///     .collect();
/// // A tight budget: the minimum draw fits but not every SLA upgrade.
/// let outcome = assign_priority_aware(&racks, Watts::from_kilowatts(1.65), &policy, &model);
/// assert!(outcome.sla_met_count(None) < 4);
/// assert!(outcome.total_recharge_power <= Watts::from_kilowatts(1.65));
/// ```
#[must_use]
pub fn assign_priority_aware(
    racks: &[RackChargeState],
    available_power: Watts,
    policy: &SlaCurrentPolicy,
    model: &RechargePowerModel,
) -> AssignmentOutcome {
    // Step 1-4: initialize everyone at the minimum and compute SLA currents.
    let mut assignments: Vec<ChargeAssignment> = racks
        .iter()
        .map(|r| ChargeAssignment {
            rack: r.rack,
            priority: r.priority,
            dod: r.dod,
            current: Amperes::MIN_CHARGE,
            sla_met: false,
        })
        .collect();

    // Step 5: sort by priority, then by DOD (lowest energy discharge first).
    let mut order: Vec<usize> = (0..racks.len()).collect();
    order.sort_by(|&a, &b| {
        racks[a]
            .priority
            .cmp(&racks[b].priority)
            .then(racks[a].dod.value().total_cmp(&racks[b].dod.value()))
    });

    let remaining = upgrade_in_order(
        &mut assignments,
        order.into_iter(),
        available_power,
        policy,
        model,
    );
    finish_assignment(assignments, remaining, policy, model)
}

/// **Algorithm 1** over an incrementally maintained [`ChargeIndex`]: the same
/// assignment as [`assign_priority_aware`], but the
/// highest-priority-lowest-discharge-first order is read straight off the
/// index instead of re-sorting the fleet — the per-call cost is `O(n)` in the
/// tracked racks with no comparison sort.
///
/// Assignments are returned in the index's charge order. Within one DOD
/// quantization bucket (1/[`SLA_MEMO_DOD_BINS`] of discharge depth) racks tie
/// on their memoized SLA current, so the bucket ordering assigns the same
/// totals as the exact-DOD ordering; ties inside a bucket resolve by rack id.
///
/// [`SLA_MEMO_DOD_BINS`]: crate::SLA_MEMO_DOD_BINS
#[must_use]
pub fn assign_priority_aware_indexed(
    index: &ChargeIndex,
    available_power: Watts,
    policy: &SlaCurrentPolicy,
    model: &RechargePowerModel,
) -> AssignmentOutcome {
    let mut assignments: Vec<ChargeAssignment> = index
        .charge_order()
        .map(|(rack, e)| ChargeAssignment {
            rack,
            priority: e.priority,
            dod: e.dod,
            current: Amperes::MIN_CHARGE,
            sla_met: false,
        })
        .collect();
    let order = 0..assignments.len();
    let remaining = upgrade_in_order(&mut assignments, order, available_power, policy, model);
    finish_assignment(assignments, remaining, policy, model)
}

/// Steps 6-8 of Algorithm 1: commit the 1 A floor, then upgrade racks to
/// their SLA current in the caller-provided order while budget remains,
/// stopping at the first rack that no longer fits. Returns the unallocated
/// remainder.
///
/// Every admission is journaled to the flight recorder with its reason:
/// `admit_upgraded` for racks granted their SLA current, one
/// `admit_budget_exhausted` for the first rack whose upgrade no longer fits,
/// and `admit_floor` for every rack after it (left at the 1 A floor). The
/// journal never feeds back into the assignment — with the recorder off the
/// loop breaks at the first non-fit exactly as before.
fn upgrade_in_order(
    assignments: &mut [ChargeAssignment],
    order: impl Iterator<Item = usize>,
    available_power: Watts,
    policy: &SlaCurrentPolicy,
    model: &RechargePowerModel,
) -> Watts {
    use recharge_telemetry::{FlightKind, ReasonCode};

    // The 1 A minimum is committed regardless of budget. When the committed
    // floor already exceeds the headroom (a heavily oversubscribed tick) the
    // deficit is not an upgrade budget: clamp at zero so no rack can be
    // upgraded against a negative remainder.
    let min_power = model.rack_power(Amperes::MIN_CHARGE) * assignments.len() as f64;
    let mut remaining = (available_power - min_power).max(Watts::ZERO);

    let mut exhausted = false;
    for idx in order {
        let a = assignments[idx];
        if exhausted {
            // Pure journaling: racks past the first non-fit keep the floor.
            recharge_telemetry::flight(
                FlightKind::Admit,
                ReasonCode::AdmitFloor,
                a.rack.index(),
                a.priority.rank(),
                ChargeIndex::dod_bucket(a.dod),
                Amperes::MIN_CHARGE.as_amps().to_bits(),
                remaining.as_watts().to_bits(),
            );
            continue;
        }
        let sla_current = policy.sla_current(a.priority, a.dod);
        let upgrade = model.rack_power(sla_current) - model.rack_power(Amperes::MIN_CHARGE);
        if upgrade <= remaining {
            remaining -= upgrade;
            assignments[idx].current = sla_current;
            recharge_telemetry::flight(
                FlightKind::Admit,
                ReasonCode::AdmitUpgraded,
                a.rack.index(),
                a.priority.rank(),
                ChargeIndex::dod_bucket(a.dod),
                sla_current.as_amps().to_bits(),
                remaining.as_watts().to_bits(),
            );
        } else {
            if !recharge_telemetry::recorder_enabled() {
                break;
            }
            recharge_telemetry::flight(
                FlightKind::Admit,
                ReasonCode::AdmitBudgetExhausted,
                a.rack.index(),
                a.priority.rank(),
                ChargeIndex::dod_bucket(a.dod),
                sla_current.as_amps().to_bits(),
                remaining.as_watts().to_bits(),
            );
            exhausted = true;
        }
    }
    remaining
}

/// Recomputes `sla_met` flags and totals for a finished assignment pass.
fn finish_assignment(
    mut assignments: Vec<ChargeAssignment>,
    remaining: Watts,
    policy: &SlaCurrentPolicy,
    model: &RechargePowerModel,
) -> AssignmentOutcome {
    for a in &mut assignments {
        a.sla_met = policy.meets_sla(a.priority, a.dod, a.current);
    }
    let total: Watts = assignments
        .iter()
        .map(|a| model.rack_power(a.current))
        .sum();
    AssignmentOutcome {
        assignments,
        total_recharge_power: total,
        remaining_power: remaining.max(Watts::ZERO),
    }
}

/// The result of an overload-throttling pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottleOutcome {
    /// The updated assignments, in the input's rack order.
    pub assignments: Vec<ChargeAssignment>,
    /// Recharge power shed by the throttle pass.
    pub power_shed: Watts,
    /// Overload that battery throttling could not cover; the controller must
    /// cap servers by this amount as a last resort (§IV-C).
    pub residual_overload: Watts,
}

/// Reverse-order throttling (§IV-C): on a detected overload, set racks to the
/// 1 A minimum in **lowest-priority-highest-discharge-first** order until the
/// shed power covers the overload; whatever cannot be covered is returned as
/// the server-capping requirement.
///
/// A throttled rack's `sla_met` flag is recomputed against `policy` rather
/// than unconditionally cleared: a P3 rack at medium discharge still meets
/// its 90-minute SLA at the 1 A minimum (the Fig 14(a) observation), and
/// reporting it as violated would overstate the overload's SLA damage.
///
/// # Examples
///
/// ```
/// use recharge_core::{assign_priority_aware, throttle_on_overload, RackChargeState,
///     RechargePowerModel, SlaCurrentPolicy};
/// use recharge_units::{Dod, Priority, RackId, Watts};
///
/// let policy = SlaCurrentPolicy::production();
/// let model = RechargePowerModel::production();
/// let racks = vec![
///     RackChargeState { rack: RackId::new(0), priority: Priority::P1, dod: Dod::new(0.5) },
///     RackChargeState { rack: RackId::new(1), priority: Priority::P3, dod: Dod::new(0.5) },
/// ];
/// let outcome = assign_priority_aware(&racks, Watts::from_kilowatts(5.0), &policy, &model);
/// let throttled = throttle_on_overload(&outcome.assignments, Watts::new(400.0), &policy, &model);
/// // The P3 rack is sacrificed first...
/// assert_eq!(throttled.assignments[1].current, recharge_units::Amperes::MIN_CHARGE);
/// // ...but at 50% DOD the 1 A minimum still meets the 90-minute P3 SLA.
/// assert!(throttled.assignments[1].sla_met);
/// ```
#[must_use]
pub fn throttle_on_overload(
    assignments: &[ChargeAssignment],
    overload: Watts,
    policy: &SlaCurrentPolicy,
    model: &RechargePowerModel,
) -> ThrottleOutcome {
    let mut updated = assignments.to_vec();
    if overload <= Watts::ZERO {
        return ThrottleOutcome {
            assignments: updated,
            power_shed: Watts::ZERO,
            residual_overload: Watts::ZERO,
        };
    }

    // Reverse of Algorithm 1's order: lowest priority first, highest DOD
    // first within a priority.
    let mut order: Vec<usize> = (0..updated.len()).collect();
    order.sort_by(|&a, &b| {
        updated[b]
            .priority
            .cmp(&updated[a].priority)
            .then(updated[b].dod.value().total_cmp(&updated[a].dod.value()))
    });

    let shed = shed_in_order(&mut updated, order.into_iter(), overload, policy, model);
    ThrottleOutcome {
        assignments: updated,
        power_shed: shed,
        residual_overload: (overload - shed).max(Watts::ZERO),
    }
}

/// Reverse-order throttling over an incrementally maintained [`ChargeIndex`]:
/// the same shed pass as [`throttle_on_overload`], but the
/// lowest-priority-highest-discharge-first order is read off the index's
/// materialized ordering — no per-call comparison sort. The racks' commanded
/// currents are read from the index.
///
/// Assignments are returned in the index's *charge* order (the reverse of the
/// shed order), with `sla_met` recomputed for every rack against `policy`.
#[must_use]
pub fn throttle_on_overload_indexed(
    index: &ChargeIndex,
    overload: Watts,
    policy: &SlaCurrentPolicy,
    model: &RechargePowerModel,
) -> ThrottleOutcome {
    let mut updated: Vec<ChargeAssignment> = index
        .charge_order()
        .map(|(rack, e)| ChargeAssignment {
            rack,
            priority: e.priority,
            dod: e.dod,
            current: e.current,
            sla_met: policy.meets_sla(e.priority, e.dod, e.current),
        })
        .collect();
    if overload <= Watts::ZERO {
        return ThrottleOutcome {
            assignments: updated,
            power_shed: Watts::ZERO,
            residual_overload: Watts::ZERO,
        };
    }
    // The shed order visits (priority, DOD-bucket) groups in reverse charge
    // order but keeps the racks *within* a group ascending — matching the
    // stable descending sort in `throttle_on_overload`, which sheds
    // equal-(priority, DOD) racks in their input (rack-ascending) order.
    let keys: Vec<(u8, u16)> = updated
        .iter()
        .map(|a| (a.priority.rank(), ChargeIndex::dod_bucket(a.dod)))
        .collect();
    let mut order = Vec::with_capacity(updated.len());
    let mut end = updated.len();
    while end > 0 {
        let mut start = end;
        while start > 0 && keys[start - 1] == keys[end - 1] {
            start -= 1;
        }
        order.extend(start..end);
        end = start;
    }
    let shed = shed_in_order(&mut updated, order.into_iter(), overload, policy, model);
    ThrottleOutcome {
        assignments: updated,
        power_shed: shed,
        residual_overload: (overload - shed).max(Watts::ZERO),
    }
}

/// The shared shed loop: demote racks to the 1 A minimum in the caller's
/// order until the shed power covers `overload`. Returns the power shed.
///
/// Each demotion is journaled to the flight recorder (`throttle_overload`)
/// with the current it was demoted from (`v0`, amps bits) and the overload
/// still uncovered after the demotion (`v1`, watts bits).
fn shed_in_order(
    updated: &mut [ChargeAssignment],
    order: impl Iterator<Item = usize>,
    overload: Watts,
    policy: &SlaCurrentPolicy,
    model: &RechargePowerModel,
) -> Watts {
    let mut shed = Watts::ZERO;
    for idx in order {
        if shed >= overload {
            break;
        }
        let a = &mut updated[idx];
        if a.current > Amperes::MIN_CHARGE {
            let demoted_from = a.current;
            shed += model.rack_power(a.current) - model.rack_power(Amperes::MIN_CHARGE);
            a.current = Amperes::MIN_CHARGE;
            a.sla_met = policy.meets_sla(a.priority, a.dod, a.current);
            recharge_telemetry::tcounter!("core.throttle_demotions").inc();
            recharge_telemetry::tevent!(
                "throttle.demote",
                "core",
                "rack" => i64::from(a.rack.index()),
                "priority" => a.priority.rank(),
                "sla_met" => i64::from(a.sla_met),
            );
            recharge_telemetry::flight(
                recharge_telemetry::FlightKind::Throttle,
                recharge_telemetry::ReasonCode::ThrottleOverload,
                a.rack.index(),
                a.priority.rank(),
                ChargeIndex::dod_bucket(a.dod),
                demoted_from.as_amps().to_bits(),
                (overload - shed).max(Watts::ZERO).as_watts().to_bits(),
            );
        }
    }
    shed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SlaCurrentPolicy {
        SlaCurrentPolicy::production()
    }

    fn model() -> RechargePowerModel {
        RechargePowerModel::production()
    }

    fn rack(i: u32, priority: Priority, dod: f64) -> RackChargeState {
        RackChargeState {
            rack: RackId::new(i),
            priority,
            dod: Dod::new(dod),
        }
    }

    #[test]
    fn ample_power_satisfies_everyone() {
        let racks = vec![
            rack(0, Priority::P1, 0.3),
            rack(1, Priority::P2, 0.5),
            rack(2, Priority::P3, 0.6),
        ];
        let outcome =
            assign_priority_aware(&racks, Watts::from_megawatts(1.0), &policy(), &model());
        assert_eq!(outcome.sla_met_count(None), 3);
        for a in &outcome.assignments {
            let want = policy().sla_current(a.priority, a.dod);
            assert_eq!(a.current, want);
        }
    }

    #[test]
    fn priority_order_protects_p1_first() {
        // Budget for the minimum draw of all four plus roughly one upgrade.
        let m = model();
        let racks = vec![
            rack(0, Priority::P3, 0.6),
            rack(1, Priority::P1, 0.6),
            rack(2, Priority::P2, 0.6),
            rack(3, Priority::P1, 0.7),
        ];
        let min = m.rack_power(Amperes::MIN_CHARGE) * 4.0;
        let p1_need = m.rack_power(policy().sla_current(Priority::P1, Dod::new(0.6)))
            - m.rack_power(Amperes::MIN_CHARGE);
        let budget = min + p1_need * 1.2;
        let outcome = assign_priority_aware(&racks, budget, &policy(), &m);
        // The lowest-DOD P1 rack gets upgraded; P2/P3 stay at minimum.
        assert!(outcome.assignments[1].current > Amperes::MIN_CHARGE);
        assert_eq!(outcome.assignments[0].current, Amperes::MIN_CHARGE);
        assert_eq!(outcome.assignments[2].current, Amperes::MIN_CHARGE);
    }

    #[test]
    fn lowest_dod_first_within_priority() {
        let m = model();
        // All deep enough that every SLA current exceeds the 1 A minimum.
        let racks = vec![
            rack(0, Priority::P2, 0.9),
            rack(1, Priority::P2, 0.55),
            rack(2, Priority::P2, 0.75),
        ];
        let p = policy();
        assert!(p.sla_current(Priority::P2, Dod::new(0.55)) > Amperes::MIN_CHARGE);
        // Enough for the minimums plus exactly the cheapest upgrade.
        let min = m.rack_power(Amperes::MIN_CHARGE) * 3.0;
        let cheapest = m.rack_power(p.sla_current(Priority::P2, Dod::new(0.55)))
            - m.rack_power(Amperes::MIN_CHARGE);
        let outcome = assign_priority_aware(&racks, min + cheapest * 1.01, &p, &m);
        assert!(
            outcome.assignments[1].current > Amperes::MIN_CHARGE,
            "lowest DOD first"
        );
        assert_eq!(outcome.assignments[0].current, Amperes::MIN_CHARGE);
        assert_eq!(outcome.assignments[2].current, Amperes::MIN_CHARGE);
    }

    #[test]
    fn assignments_never_exceed_available_power_beyond_minimum() {
        let m = model();
        let racks: Vec<_> = (0..50)
            .map(|i| {
                rack(
                    i,
                    Priority::ALL[(i % 3) as usize],
                    0.2 + 0.015 * f64::from(i),
                )
            })
            .collect();
        let min = m.rack_power(Amperes::MIN_CHARGE) * racks.len() as f64;
        for budget_kw in [0.0, 10.0, 20.0, 30.0, 50.0] {
            let budget = Watts::from_kilowatts(budget_kw);
            let outcome = assign_priority_aware(&racks, budget, &policy(), &m);
            let cap = budget.max(min);
            assert!(
                outcome.total_recharge_power <= cap + Watts::new(1e-6),
                "total {} exceeds cap {} at budget {}",
                outcome.total_recharge_power,
                cap,
                budget
            );
        }
    }

    #[test]
    fn currents_stay_in_hardware_range() {
        let racks: Vec<_> = (0..30)
            .map(|i| rack(i, Priority::P1, f64::from(i) / 30.0))
            .collect();
        let outcome =
            assign_priority_aware(&racks, Watts::from_kilowatts(40.0), &policy(), &model());
        for a in &outcome.assignments {
            assert!(a.current >= Amperes::MIN_CHARGE && a.current <= Amperes::MAX_CHARGE);
        }
    }

    #[test]
    fn minimum_rate_racks_can_still_meet_lenient_slas() {
        // Fig 14(a): P3 at the 1 A minimum still meets its 90-minute SLA at
        // medium discharge even when the budget upgrades nobody.
        let racks = vec![rack(0, Priority::P3, 0.5)];
        let outcome = assign_priority_aware(&racks, Watts::ZERO, &policy(), &model());
        assert_eq!(outcome.assignments[0].current, Amperes::MIN_CHARGE);
        assert!(outcome.assignments[0].sla_met);
    }

    #[test]
    fn empty_fleet() {
        let outcome = assign_priority_aware(&[], Watts::from_kilowatts(1.0), &policy(), &model());
        assert!(outcome.assignments.is_empty());
        assert_eq!(outcome.total_recharge_power, Watts::ZERO);
    }

    #[test]
    fn throttle_sheds_lowest_priority_highest_dod_first() {
        let m = model();
        let assignments = vec![
            ChargeAssignment {
                rack: RackId::new(0),
                priority: Priority::P1,
                dod: Dod::new(0.5),
                current: Amperes::new(3.0),
                sla_met: true,
            },
            ChargeAssignment {
                rack: RackId::new(1),
                priority: Priority::P3,
                dod: Dod::new(0.4),
                current: Amperes::new(3.0),
                sla_met: true,
            },
            ChargeAssignment {
                rack: RackId::new(2),
                priority: Priority::P3,
                dod: Dod::new(0.8),
                current: Amperes::new(3.0),
                sla_met: true,
            },
        ];
        let one_rack_shed = m.rack_power(Amperes::new(3.0)) - m.rack_power(Amperes::MIN_CHARGE);
        let outcome = throttle_on_overload(&assignments, one_rack_shed * 0.9, &policy(), &m);
        // Only the high-DOD P3 rack needed to be throttled.
        assert_eq!(outcome.assignments[2].current, Amperes::MIN_CHARGE);
        assert_eq!(outcome.assignments[1].current, Amperes::new(3.0));
        assert_eq!(outcome.assignments[0].current, Amperes::new(3.0));
        assert_eq!(outcome.residual_overload, Watts::ZERO);
        // At 80% DOD the 1 A minimum misses the 90-minute P3 SLA (Fig 14(c)).
        assert!(!outcome.assignments[2].sla_met);
    }

    #[test]
    fn throttle_reports_residual_for_server_capping() {
        let m = model();
        let assignments = vec![ChargeAssignment {
            rack: RackId::new(0),
            priority: Priority::P2,
            dod: Dod::new(0.5),
            current: Amperes::new(2.0),
            sla_met: true,
        }];
        let max_shed = m.rack_power(Amperes::new(2.0)) - m.rack_power(Amperes::MIN_CHARGE);
        let overload = max_shed + Watts::new(500.0);
        let outcome = throttle_on_overload(&assignments, overload, &policy(), &m);
        assert_eq!(outcome.assignments[0].current, Amperes::MIN_CHARGE);
        assert!((outcome.residual_overload.as_watts() - 500.0).abs() < 1e-6);
        assert!((outcome.power_shed.as_watts() - max_shed.as_watts()).abs() < 1e-6);
    }

    #[test]
    fn throttle_is_a_no_op_without_overload() {
        let assignments = vec![ChargeAssignment {
            rack: RackId::new(0),
            priority: Priority::P1,
            dod: Dod::new(0.5),
            current: Amperes::new(4.0),
            sla_met: true,
        }];
        let outcome = throttle_on_overload(&assignments, Watts::ZERO, &policy(), &model());
        assert_eq!(outcome.assignments, assignments);
        assert_eq!(outcome.power_shed, Watts::ZERO);
    }

    #[test]
    fn sub_floor_budget_commits_minimum_and_upgrades_nobody() {
        // The committed 1 A fleet floor can exceed the headroom on a heavily
        // oversubscribed tick. The deficit must not become an upgrade budget:
        // every rack stays at the minimum and the reported remainder is zero.
        let m = model();
        let racks: Vec<_> = (0..20).map(|i| rack(i, Priority::P1, 0.6)).collect();
        let min = m.rack_power(Amperes::MIN_CHARGE) * racks.len() as f64;
        let budget = min * 0.5;
        let outcome = assign_priority_aware(&racks, budget, &policy(), &m);
        for a in &outcome.assignments {
            assert_eq!(
                a.current,
                Amperes::MIN_CHARGE,
                "rack {} upgraded on deficit",
                a.rack
            );
        }
        assert!((outcome.total_recharge_power.as_watts() - min.as_watts()).abs() < 1e-6);
        assert_eq!(outcome.remaining_power, Watts::ZERO);
    }

    #[test]
    fn throttled_rack_keeps_lenient_sla() {
        // Fig 14(a): a P3 rack at medium discharge throttled to 1 A still
        // meets its 90-minute SLA; `sla_met` must be recomputed, not cleared.
        let m = model();
        let assignments = vec![ChargeAssignment {
            rack: RackId::new(0),
            priority: Priority::P3,
            dod: Dod::new(0.5),
            current: Amperes::new(3.0),
            sla_met: true,
        }];
        let outcome =
            throttle_on_overload(&assignments, Watts::from_kilowatts(10.0), &policy(), &m);
        assert_eq!(outcome.assignments[0].current, Amperes::MIN_CHARGE);
        assert!(outcome.assignments[0].sla_met);
    }

    #[test]
    fn throttle_is_idempotent_on_residual() {
        // Re-throttling against the uncovered residual sheds nothing more:
        // every rack is already at the 1 A floor.
        let m = model();
        let p = policy();
        let assignments = vec![
            ChargeAssignment {
                rack: RackId::new(0),
                priority: Priority::P1,
                dod: Dod::new(0.5),
                current: Amperes::new(4.0),
                sla_met: true,
            },
            ChargeAssignment {
                rack: RackId::new(1),
                priority: Priority::P3,
                dod: Dod::new(0.7),
                current: Amperes::new(2.0),
                sla_met: true,
            },
        ];
        let overload = Watts::from_kilowatts(50.0);
        let once = throttle_on_overload(&assignments, overload, &p, &m);
        assert!(
            once.residual_overload > Watts::ZERO,
            "overload should exhaust the fleet"
        );
        let again = throttle_on_overload(&once.assignments, once.residual_overload, &p, &m);
        assert_eq!(again.assignments, once.assignments);
        assert_eq!(again.power_shed, Watts::ZERO);
        assert_eq!(again.residual_overload, once.residual_overload);
    }

    /// Builds an index over the given states with zero commanded currents.
    fn index_of(racks: &[RackChargeState]) -> ChargeIndex {
        let mut index = ChargeIndex::new();
        for r in racks {
            index.upsert(r.rack, r.priority, r.dod, Amperes::ZERO);
        }
        index
    }

    #[test]
    fn indexed_assign_matches_sorted_assign() {
        // Distinct DOD buckets: the index order and the exact-DOD sort agree
        // rack for rack, so the assignments must match exactly.
        let racks = vec![
            rack(0, Priority::P3, 0.62),
            rack(1, Priority::P1, 0.41),
            rack(2, Priority::P2, 0.83),
            rack(3, Priority::P1, 0.77),
            rack(4, Priority::P2, 0.15),
        ];
        let index = index_of(&racks);
        for budget_kw in [0.0, 2.0, 4.0, 8.0, 100.0] {
            let budget = Watts::from_kilowatts(budget_kw);
            let plain = assign_priority_aware(&racks, budget, &policy(), &model());
            let indexed = assign_priority_aware_indexed(&index, budget, &policy(), &model());
            assert_eq!(plain.total_recharge_power, indexed.total_recharge_power);
            assert_eq!(plain.remaining_power, indexed.remaining_power);
            assert_eq!(
                plain.sla_met_count(None),
                indexed.sla_met_count(None),
                "budget {budget}"
            );
            // Same per-rack currents, modulo output order.
            let mut plain_by_rack: Vec<(RackId, Amperes)> = plain
                .assignments
                .iter()
                .map(|a| (a.rack, a.current))
                .collect();
            let mut indexed_by_rack: Vec<(RackId, Amperes)> = indexed
                .assignments
                .iter()
                .map(|a| (a.rack, a.current))
                .collect();
            plain_by_rack.sort_by_key(|&(r, _)| r);
            indexed_by_rack.sort_by_key(|&(r, _)| r);
            assert_eq!(plain_by_rack, indexed_by_rack, "budget {budget}");
        }
    }

    #[test]
    fn indexed_assign_output_is_in_charge_order() {
        let racks = vec![
            rack(0, Priority::P3, 0.3),
            rack(1, Priority::P1, 0.6),
            rack(2, Priority::P2, 0.4),
        ];
        let index = index_of(&racks);
        let outcome =
            assign_priority_aware_indexed(&index, Watts::from_megawatts(1.0), &policy(), &model());
        let order: Vec<u32> = outcome.assignments.iter().map(|a| a.rack.index()).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn indexed_throttle_matches_sorted_throttle() {
        let m = model();
        let p = policy();
        let racks = vec![
            rack(0, Priority::P1, 0.5),
            rack(1, Priority::P3, 0.4),
            rack(2, Priority::P3, 0.8),
            rack(3, Priority::P2, 0.66),
        ];
        let assigned = assign_priority_aware(&racks, Watts::from_megawatts(1.0), &p, &m);
        let mut index = index_of(&racks);
        for a in &assigned.assignments {
            index.set_current(a.rack, a.current);
        }
        let one_rack = m.rack_power(Amperes::new(3.0)) - m.rack_power(Amperes::MIN_CHARGE);
        for overload in [
            Watts::ZERO,
            one_rack * 0.9,
            one_rack * 2.5,
            one_rack * 100.0,
        ] {
            let plain = throttle_on_overload(&assigned.assignments, overload, &p, &m);
            let indexed = throttle_on_overload_indexed(&index, overload, &p, &m);
            assert!(
                (plain.power_shed - indexed.power_shed).abs() < Watts::new(1e-9),
                "shed diverged at overload {overload}"
            );
            assert!(
                (plain.residual_overload - indexed.residual_overload).abs() < Watts::new(1e-9),
                "residual diverged at overload {overload}"
            );
            let mut plain_by_rack: Vec<(RackId, Amperes)> = plain
                .assignments
                .iter()
                .map(|a| (a.rack, a.current))
                .collect();
            let mut indexed_by_rack: Vec<(RackId, Amperes)> = indexed
                .assignments
                .iter()
                .map(|a| (a.rack, a.current))
                .collect();
            plain_by_rack.sort_by_key(|&(r, _)| r);
            indexed_by_rack.sort_by_key(|&(r, _)| r);
            assert_eq!(plain_by_rack, indexed_by_rack, "overload {overload}");
        }
    }

    #[test]
    fn indexed_throttle_breaks_ties_like_the_stable_sort() {
        // Identical racks tie on (priority, DOD); the stable descending sort
        // sheds them in input (rack-ascending) order, and the indexed pass
        // must pick the same victim when the overload only needs one.
        let m = model();
        let p = policy();
        let racks: Vec<RackChargeState> = (0..3).map(|i| rack(i, Priority::P1, 0.65)).collect();
        let assigned = assign_priority_aware(&racks, Watts::from_megawatts(1.0), &p, &m);
        assert!(assigned.assignments[0].current > Amperes::MIN_CHARGE);
        let mut index = index_of(&racks);
        for a in &assigned.assignments {
            index.set_current(a.rack, a.current);
        }
        let one_rack =
            m.rack_power(assigned.assignments[0].current) - m.rack_power(Amperes::MIN_CHARGE);
        let plain = throttle_on_overload(&assigned.assignments, one_rack * 0.5, &p, &m);
        let indexed = throttle_on_overload_indexed(&index, one_rack * 0.5, &p, &m);
        let mut plain_by_rack: Vec<(RackId, Amperes)> = plain
            .assignments
            .iter()
            .map(|a| (a.rack, a.current))
            .collect();
        let mut indexed_by_rack: Vec<(RackId, Amperes)> = indexed
            .assignments
            .iter()
            .map(|a| (a.rack, a.current))
            .collect();
        plain_by_rack.sort_by_key(|&(r, _)| r);
        indexed_by_rack.sort_by_key(|&(r, _)| r);
        assert_eq!(plain_by_rack, indexed_by_rack);
        // Exactly one rack demoted, and it is the lowest rack id of the tie.
        let demoted: Vec<RackId> = indexed_by_rack
            .iter()
            .filter(|&&(_, c)| c == Amperes::MIN_CHARGE)
            .map(|&(r, _)| r)
            .collect();
        assert_eq!(demoted, vec![RackId::new(0)]);
    }

    #[test]
    fn sla_met_count_filters_by_priority() {
        let racks = vec![
            rack(0, Priority::P1, 0.2),
            rack(1, Priority::P2, 0.2),
            rack(2, Priority::P3, 0.2),
        ];
        let outcome =
            assign_priority_aware(&racks, Watts::from_megawatts(1.0), &policy(), &model());
        assert_eq!(outcome.sla_met_count(Some(Priority::P1)), 1);
        assert_eq!(outcome.sla_met_count(None), 3);
    }
}
