//! The global equal-rate charging baseline (§V-B3).

use recharge_units::{Amperes, Watts};

use crate::algorithm::{AssignmentOutcome, ChargeAssignment, RackChargeState};
use crate::policy::SlaCurrentPolicy;
use crate::power_model::RechargePowerModel;

/// The baseline **global charging algorithm**: coordinates against the power
/// limit but ignores rack priority and DOD, charging every rack at the same
/// current — the largest hardware-legal rate that fits the available power.
///
/// The paper uses this baseline to demonstrate why priority awareness matters
/// (Figs 14, 15): under pressure it penalizes P1 racks first, because their
/// stricter SLA needs more current than the uniform rate provides.
///
/// # Examples
///
/// ```
/// use recharge_core::{assign_global, RackChargeState, RechargePowerModel, SlaCurrentPolicy};
/// use recharge_units::{Dod, Priority, RackId, Watts};
///
/// let policy = SlaCurrentPolicy::production();
/// let model = RechargePowerModel::production();
/// let racks = vec![
///     RackChargeState { rack: RackId::new(0), priority: Priority::P1, dod: Dod::new(0.5) },
///     RackChargeState { rack: RackId::new(1), priority: Priority::P3, dod: Dod::new(0.5) },
/// ];
/// let outcome = assign_global(&racks, Watts::from_kilowatts(1.5), &policy, &model);
/// // Everyone gets the same current.
/// assert_eq!(outcome.assignments[0].current, outcome.assignments[1].current);
/// ```
#[must_use]
pub fn assign_global(
    racks: &[RackChargeState],
    available_power: Watts,
    policy: &SlaCurrentPolicy,
    model: &RechargePowerModel,
) -> AssignmentOutcome {
    let uniform = if racks.is_empty() {
        Amperes::MIN_CHARGE
    } else {
        let per_rack = available_power / racks.len() as f64;
        model
            .current_for_power(per_rack)
            .clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE)
    };

    let assignments: Vec<ChargeAssignment> = racks
        .iter()
        .map(|r| ChargeAssignment {
            rack: r.rack,
            priority: r.priority,
            dod: r.dod,
            current: uniform,
            sla_met: policy.meets_sla(r.priority, r.dod, uniform),
        })
        .collect();

    let total: Watts = assignments
        .iter()
        .map(|a| model.rack_power(a.current))
        .sum();
    AssignmentOutcome {
        assignments,
        total_recharge_power: total,
        remaining_power: (available_power - total).max(Watts::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_units::{Dod, Priority, RackId};

    fn racks_mixed(dod: f64) -> Vec<RackChargeState> {
        (0..9)
            .map(|i| RackChargeState {
                rack: RackId::new(i),
                priority: Priority::ALL[(i % 3) as usize],
                dod: Dod::new(dod),
            })
            .collect()
    }

    #[test]
    fn uniform_current_fits_budget() {
        let model = RechargePowerModel::production();
        let policy = SlaCurrentPolicy::production();
        let racks = racks_mixed(0.5);
        let budget = Watts::from_kilowatts(9.0);
        let outcome = assign_global(&racks, budget, &policy, &model);
        let currents: Vec<_> = outcome.assignments.iter().map(|a| a.current).collect();
        assert!(
            currents.windows(2).all(|w| w[0] == w[1]),
            "currents must be uniform"
        );
        assert!(currents[0] > Amperes::MIN_CHARGE && currents[0] < Amperes::MAX_CHARGE);
        assert!(outcome.total_recharge_power <= budget);
    }

    #[test]
    fn generous_budget_clamps_at_5a() {
        let outcome = assign_global(
            &racks_mixed(0.5),
            Watts::from_megawatts(1.0),
            &SlaCurrentPolicy::production(),
            &RechargePowerModel::production(),
        );
        assert!(outcome
            .assignments
            .iter()
            .all(|a| a.current == Amperes::MAX_CHARGE));
    }

    #[test]
    fn starved_budget_clamps_at_1a() {
        let outcome = assign_global(
            &racks_mixed(0.5),
            Watts::ZERO,
            &SlaCurrentPolicy::production(),
            &RechargePowerModel::production(),
        );
        assert!(outcome
            .assignments
            .iter()
            .all(|a| a.current == Amperes::MIN_CHARGE));
    }

    #[test]
    fn p1_racks_suffer_first_under_pressure() {
        // §V-B3: "P1 racks are the first ones to get penalized by the global
        // charging algorithm" — their stricter SLA needs more current than
        // the uniform rate.
        let policy = SlaCurrentPolicy::production();
        let model = RechargePowerModel::production();
        let racks = racks_mixed(0.6);
        // A uniform rate between P3's requirement and P1's requirement.
        let p3_need = policy.sla_current(Priority::P3, Dod::new(0.6));
        let budget = model.rack_power(p3_need + Amperes::new(0.3)) * racks.len() as f64;
        let outcome = assign_global(&racks, budget, &policy, &model);
        let met = |p| outcome.sla_met_count(Some(p));
        assert_eq!(
            met(Priority::P1),
            0,
            "P1 should be starved by the uniform rate"
        );
        assert!(
            met(Priority::P3) > 0,
            "P3 should be satisfied by the uniform rate"
        );
    }

    #[test]
    fn empty_fleet() {
        let outcome = assign_global(
            &[],
            Watts::from_kilowatts(1.0),
            &SlaCurrentPolicy::production(),
            &RechargePowerModel::production(),
        );
        assert!(outcome.assignments.is_empty());
        assert_eq!(outcome.total_recharge_power, Watts::ZERO);
    }
}
