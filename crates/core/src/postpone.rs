//! Charge postponing: the paper's stated future-work extension (§IV-A).
//!
//! The deployed charger hardware bottoms out at 1 A, so under extreme power
//! constraint the controller must cap servers once every rack is at the
//! floor. With hardware that can *hold* charging at zero, the controller can
//! instead defer whole racks — trading their redundancy (a relaxed AOR) for
//! zero performance impact. This module plans which racks to defer.

use serde::{Deserialize, Serialize};

use recharge_units::{Amperes, RackId, Watts};

use crate::algorithm::ChargeAssignment;
use crate::power_model::RechargePowerModel;

/// The result of a postponement pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PostponeOutcome {
    /// Updated assignments: postponed racks carry a zero current.
    pub assignments: Vec<ChargeAssignment>,
    /// Racks whose charging was deferred, in deferral order.
    pub postponed: Vec<RackId>,
    /// Recharge power shed by the deferrals.
    pub power_shed: Watts,
    /// Deficit that remains even with every rack deferred (server capping is
    /// then genuinely unavoidable).
    pub residual_deficit: Watts,
}

/// Defers whole racks — lowest priority first, highest DOD first within a
/// priority — until `deficit` is covered.
///
/// Postponing follows the same reverse order as throttling
/// ([`throttle_on_overload`](crate::throttle_on_overload)) because it is the
/// same trade, taken further: the deferred rack keeps *no* recharge power at
/// all, so its SLA is forfeited for the benefit of higher-priority racks and
/// the servers.
///
/// # Examples
///
/// ```
/// use recharge_core::{postpone_on_deficit, ChargeAssignment, RechargePowerModel};
/// use recharge_units::{Amperes, Dod, Priority, RackId, Watts};
///
/// let model = RechargePowerModel::production();
/// let assignments = vec![ChargeAssignment {
///     rack: RackId::new(0),
///     priority: Priority::P3,
///     dod: Dod::new(0.5),
///     current: Amperes::new(1.0),
///     sla_met: true,
/// }];
/// let outcome = postpone_on_deficit(&assignments, Watts::new(200.0), &model);
/// assert_eq!(outcome.postponed, vec![RackId::new(0)]);
/// assert_eq!(outcome.assignments[0].current, Amperes::ZERO);
/// ```
#[must_use]
pub fn postpone_on_deficit(
    assignments: &[ChargeAssignment],
    deficit: Watts,
    model: &RechargePowerModel,
) -> PostponeOutcome {
    let mut updated = assignments.to_vec();
    if deficit <= Watts::ZERO {
        return PostponeOutcome {
            assignments: updated,
            postponed: Vec::new(),
            power_shed: Watts::ZERO,
            residual_deficit: Watts::ZERO,
        };
    }

    let mut order: Vec<usize> = (0..updated.len()).collect();
    order.sort_by(|&a, &b| {
        updated[b]
            .priority
            .cmp(&updated[a].priority)
            .then(updated[b].dod.value().total_cmp(&updated[a].dod.value()))
    });

    let mut postponed = Vec::new();
    let mut shed = Watts::ZERO;
    for &idx in &order {
        if shed >= deficit {
            break;
        }
        let a = &mut updated[idx];
        if a.current > Amperes::ZERO {
            shed += model.rack_power(a.current);
            a.current = Amperes::ZERO;
            a.sla_met = false;
            postponed.push(a.rack);
        }
    }

    PostponeOutcome {
        assignments: updated,
        postponed,
        power_shed: shed,
        residual_deficit: (deficit - shed).max(Watts::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_units::{Dod, Priority};

    fn assignment(i: u32, priority: Priority, dod: f64, amps: f64) -> ChargeAssignment {
        ChargeAssignment {
            rack: RackId::new(i),
            priority,
            dod: Dod::new(dod),
            current: Amperes::new(amps),
            sla_met: true,
        }
    }

    #[test]
    fn defers_lowest_priority_highest_dod_first() {
        let model = RechargePowerModel::production();
        let assignments = vec![
            assignment(0, Priority::P1, 0.9, 1.0),
            assignment(1, Priority::P3, 0.3, 1.0),
            assignment(2, Priority::P3, 0.8, 1.0),
        ];
        let one_rack = model.rack_power(Amperes::new(1.0));
        let outcome = postpone_on_deficit(&assignments, one_rack * 0.5, &model);
        assert_eq!(outcome.postponed, vec![RackId::new(2)]);
        assert_eq!(outcome.assignments[2].current, Amperes::ZERO);
        assert!(!outcome.assignments[2].sla_met);
        assert_eq!(outcome.assignments[0].current, Amperes::new(1.0));
        assert_eq!(outcome.residual_deficit, Watts::ZERO);
    }

    #[test]
    fn escalates_through_the_whole_fleet() {
        let model = RechargePowerModel::production();
        let assignments = vec![
            assignment(0, Priority::P1, 0.5, 1.0),
            assignment(1, Priority::P2, 0.5, 1.0),
        ];
        let outcome = postpone_on_deficit(&assignments, Watts::from_kilowatts(10.0), &model);
        assert_eq!(outcome.postponed.len(), 2);
        assert_eq!(outcome.postponed[0], RackId::new(1), "P2 before P1");
        assert!(outcome.residual_deficit > Watts::ZERO);
        let shed_expected = model.rack_power(Amperes::new(1.0)) * 2.0;
        assert!((outcome.power_shed - shed_expected).abs() < Watts::new(1e-9));
    }

    #[test]
    fn zero_deficit_is_a_no_op() {
        let model = RechargePowerModel::production();
        let assignments = vec![assignment(0, Priority::P3, 0.5, 2.0)];
        let outcome = postpone_on_deficit(&assignments, Watts::ZERO, &model);
        assert!(outcome.postponed.is_empty());
        assert_eq!(outcome.assignments, assignments);
    }

    #[test]
    fn already_postponed_racks_shed_nothing() {
        let model = RechargePowerModel::production();
        let mut zero = assignment(0, Priority::P3, 0.5, 0.0);
        zero.current = Amperes::ZERO;
        let outcome = postpone_on_deficit(&[zero], Watts::new(100.0), &model);
        assert!(outcome.postponed.is_empty());
        assert_eq!(outcome.power_shed, Watts::ZERO);
        assert_eq!(outcome.residual_deficit, Watts::new(100.0));
    }
}
