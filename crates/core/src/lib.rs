//! Coordinated priority-aware battery charging (§IV of the paper).
//!
//! This crate is the paper's primary contribution, as a pure algorithm
//! library:
//!
//! * [`SlaTable`] — the per-priority charging-time SLAs of Table II
//!   (P1: 30 min, P2: 60 min, P3: 90 min).
//! * [`SlaCurrentPolicy`] — Fig 9(b): the charging current a rack needs to
//!   meet its SLA given its battery depth of discharge, obtained by inverting
//!   the Fig 5 charge-time surface, with per-priority hardware floors.
//! * [`RechargePowerModel`] — rack recharge power as a function of charging
//!   current (≈0.37 kW per ampere with the calibrated battery).
//! * [`assign_priority_aware`] — **Algorithm 1**, the
//!   highest-priority-lowest-discharge-first assignment under an available
//!   power budget.
//! * [`throttle_on_overload`] — the reverse
//!   (lowest-priority-highest-discharge-first) throttling pass used when a
//!   breaker overloads mid-charge.
//! * [`ChargeIndex`] — an incrementally maintained (priority, DOD-bucket)
//!   ordering of the fleet, fed by battery-state deltas, that lets the
//!   `_indexed` variants of both passes skip the per-tick `O(n log n)` sort.
//! * [`assign_global`] — the priority-oblivious equal-rate baseline the paper
//!   compares against (§V-B3).
//!
//! # Examples
//!
//! ```
//! use recharge_core::{assign_priority_aware, RackChargeState, RechargePowerModel, SlaCurrentPolicy};
//! use recharge_units::{Dod, Priority, RackId, Watts};
//!
//! let policy = SlaCurrentPolicy::production();
//! let model = RechargePowerModel::production();
//! let racks = vec![
//!     RackChargeState { rack: RackId::new(0), priority: Priority::P1, dod: Dod::new(0.4) },
//!     RackChargeState { rack: RackId::new(1), priority: Priority::P3, dod: Dod::new(0.9) },
//! ];
//! let outcome = assign_priority_aware(&racks, Watts::from_kilowatts(3.0), &policy, &model);
//! assert_eq!(outcome.assignments.len(), 2);
//! // The budget covers both SLA currents here, so no rack is left at minimum.
//! assert!(outcome.assignments.iter().all(|a| a.sla_met));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod global;
mod index;
mod policy;
mod postpone;
mod power_model;
mod sla;

pub use algorithm::{
    assign_priority_aware, assign_priority_aware_indexed, throttle_on_overload,
    throttle_on_overload_indexed, AssignmentOutcome, ChargeAssignment, RackChargeState,
    ThrottleOutcome,
};
pub use global::assign_global;
pub use index::{ChargeIndex, IndexedCharge};
pub use policy::{SlaCurrentPolicy, SLA_MEMO_DOD_BINS};
pub use postpone::{postpone_on_deficit, PostponeOutcome};
pub use power_model::RechargePowerModel;
pub use sla::SlaTable;
