//! The SLA-current policy of Fig 9(b): charging current required to meet a
//! rack's charging-time SLA given its battery depth of discharge.

use serde::{Deserialize, Serialize};

use recharge_battery::ChargeTimeTable;
use recharge_units::{Amperes, Dod, Priority};

use crate::sla::SlaTable;

/// Quantization of the memoized DOD axis: `sla_current` answers from a
/// precomputed table of this many equal bins over `[0, 1]`, rounding the
/// queried DOD *up* to the next bin edge (conservative: never undershoots the
/// exact current by construction).
pub const SLA_MEMO_DOD_BINS: usize = 1024;

/// Computes the per-rack SLA charging current (Fig 9b).
///
/// The policy inverts the charge-time surface of Fig 5 ("by linearly
/// interpolating the BBU charging time data", §IV-A): the SLA current is the
/// smallest current that charges back within the priority's Table II budget.
/// Two hardware-informed adjustments match the deployed behaviour:
///
/// * **Per-priority floors.** The §V-A prototype assigns 2 A to P1 racks and
///   1 A to P2/P3 racks even at <5% DOD, so P1 never drops below the variable
///   charger's 2 A automatic minimum while lower priorities may be relaxed to
///   the 1 A hardware floor.
/// * **Saturation.** When even 5 A cannot meet the budget (deep discharge
///   against a 30-minute SLA), the policy saturates at 5 A — the SLA is then
///   unattainable but the rack charges as fast as the hardware allows.
///
/// A DOD outside the charge-time table's sampled span is resolved by
/// position, not conflated with unattainability: below the grid the rack
/// needs nothing beyond its priority floor, above the grid it is treated as
/// the deepest sampled discharge.
///
/// Construction precomputes [`sla_current`](Self::sla_current) over a
/// quantized priority × DOD grid ([`SLA_MEMO_DOD_BINS`] ceil-rounded bins),
/// so the per-call cost on the controller's planning path is one table read;
/// [`sla_current_exact`](Self::sla_current_exact) keeps the unquantized
/// inversion. [`meets_sla`](Self::meets_sla) keeps its exact semantics and
/// uses a precomputed threshold-current table to answer most queries without
/// touching the interpolator.
///
/// # Examples
///
/// ```
/// use recharge_core::SlaCurrentPolicy;
/// use recharge_units::{Amperes, Dod, Priority};
///
/// let policy = SlaCurrentPolicy::production();
/// // Fig 10: at <5% DOD, P1 charges at 2 A while P2/P3 charge at 1 A.
/// assert_eq!(policy.sla_current(Priority::P1, Dod::new(0.04)), Amperes::new(2.0));
/// assert_eq!(policy.sla_current(Priority::P2, Dod::new(0.04)), Amperes::new(1.0));
/// assert_eq!(policy.sla_current(Priority::P3, Dod::new(0.04)), Amperes::new(1.0));
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct SlaCurrentPolicy {
    table: ChargeTimeTable,
    sla: SlaTable,
    floors: [Amperes; 3],
    /// `memo_current[p][b]` = exact SLA current at DOD `b / SLA_MEMO_DOD_BINS`
    /// for priority rank `p + 1`.
    memo_current: Vec<Vec<Amperes>>,
    /// `memo_meets_threshold[p][b]` = smallest current meeting the priority's
    /// (unmargined) SLA at DOD `b / SLA_MEMO_DOD_BINS`, `f64::INFINITY` when
    /// unattainable at 5 A. Used as a sound fast accept/reject for
    /// [`meets_sla`](Self::meets_sla).
    memo_meets_threshold: Vec<Vec<f64>>,
}

impl PartialEq for SlaCurrentPolicy {
    fn eq(&self, other: &Self) -> bool {
        // The memo tables are derived data; comparing them would also make a
        // policy over a partial grid unequal to itself (NaN sentinel bins).
        self.table == other.table && self.sla == other.sla && self.floors == other.floors
    }
}

impl core::fmt::Debug for SlaCurrentPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SlaCurrentPolicy")
            .field("table", &self.table)
            .field("sla", &self.sla)
            .field("floors", &self.floors)
            .finish_non_exhaustive()
    }
}

impl SlaCurrentPolicy {
    /// The deployed configuration: the production charge-time table, Table II
    /// SLAs, and floors of 2 A (P1) / 1 A (P2, P3).
    #[must_use]
    pub fn production() -> Self {
        SlaCurrentPolicy::new(ChargeTimeTable::production().clone(), SlaTable::table2())
    }

    /// Creates a policy from a charge-time table and SLA table with the
    /// standard floors.
    #[must_use]
    pub fn new(table: ChargeTimeTable, sla: SlaTable) -> Self {
        let mut policy = SlaCurrentPolicy {
            table,
            sla,
            floors: [Amperes::new(2.0), Amperes::MIN_CHARGE, Amperes::MIN_CHARGE],
            memo_current: Vec::new(),
            memo_meets_threshold: Vec::new(),
        };
        policy.rebuild_memo();
        policy
    }

    /// Overrides the per-priority minimum currents.
    ///
    /// # Panics
    ///
    /// Panics if any floor lies outside the 1–5 A hardware range.
    #[must_use]
    pub fn with_floors(mut self, floors: [Amperes; 3]) -> Self {
        for f in floors {
            assert!(
                (Amperes::MIN_CHARGE..=Amperes::MAX_CHARGE).contains(&f),
                "floors must lie within the 1-5 A hardware range"
            );
        }
        self.floors = floors;
        self.rebuild_memo();
        self
    }

    /// Recomputes the quantized lookup tables after any change to the table,
    /// SLA budgets, or floors.
    fn rebuild_memo(&mut self) {
        let bins = SLA_MEMO_DOD_BINS;
        let mut memo_current = Vec::with_capacity(Priority::ALL.len());
        let mut memo_threshold = Vec::with_capacity(Priority::ALL.len());
        for prio in Priority::ALL {
            let budget = self.sla.charge_time_budget(prio);
            let mut currents = Vec::with_capacity(bins + 1);
            let mut thresholds = Vec::with_capacity(bins + 1);
            for b in 0..=bins {
                let dod = Dod::new(b as f64 / bins as f64);
                currents.push(self.sla_current_exact(prio, dod));
                // Threshold against the *unmargined* budget so the fast
                // accept/reject agrees with `meets_sla`'s exact semantics:
                // +inf = unattainable even at 5 A, NaN = bin outside a
                // partial grid (neither accept nor reject from it).
                thresholds.push(match self.table.required_current(dod, budget) {
                    Ok(Some(c)) => c.as_amps(),
                    Ok(None) => f64::INFINITY,
                    Err(_) => f64::NAN,
                });
            }
            memo_current.push(currents);
            memo_threshold.push(thresholds);
        }
        self.memo_current = memo_current;
        self.memo_meets_threshold = memo_threshold;
    }

    /// The SLA table in force.
    #[must_use]
    pub fn sla(&self) -> &SlaTable {
        &self.sla
    }

    /// The charge-time table in force.
    #[must_use]
    pub fn charge_time_table(&self) -> &ChargeTimeTable {
        &self.table
    }

    /// The minimum current for a priority.
    #[must_use]
    pub fn floor(&self, priority: Priority) -> Amperes {
        self.floors[(priority.rank() - 1) as usize]
    }

    /// Planning safety margin: SLA currents are sized against 97% of the
    /// budget so that model/physics mismatch and control-loop latency cannot
    /// push a boundary rack just past its SLA.
    pub const SLA_SAFETY_MARGIN: f64 = 0.97;

    /// The Fig 9(b) SLA charging current for a rack of the given priority
    /// whose battery discharged to `dod`, clamped to the hardware range.
    ///
    /// Answers from the precomputed grid by rounding `dod` *up* to the next
    /// of [`SLA_MEMO_DOD_BINS`] bin edges, so the result never undershoots
    /// [`sla_current_exact`](Self::sla_current_exact) and differs from it by
    /// at most one bin step of discharge depth.
    #[must_use]
    pub fn sla_current(&self, priority: Priority, dod: Dod) -> Amperes {
        // Dod is clamped to [0, 1] on construction, so ceil lands in 0..=BINS;
        // min() guards the 1.0 * BINS float edge only.
        let bin = (dod.value() * SLA_MEMO_DOD_BINS as f64).ceil() as usize;
        self.memo_current[(priority.rank() - 1) as usize][bin.min(SLA_MEMO_DOD_BINS)]
    }

    /// The unquantized Fig 9(b) SLA current: inverts the charge-time table
    /// directly instead of reading the memoized grid.
    #[must_use]
    pub fn sla_current_exact(&self, priority: Priority, dod: Dod) -> Amperes {
        let budget = self.sla.charge_time_budget(priority) * Self::SLA_SAFETY_MARGIN;
        let required = match self.table.required_current(dod, budget) {
            Ok(Some(c)) => c,
            // Even the maximum sampled current misses the budget: saturate.
            Ok(None) => Amperes::MAX_CHARGE,
            // The DOD lies outside a partial table's sampled span. This is
            // *not* unattainability: below the span the battery is shallower
            // than any sample (the floor suffices), above it charge as for
            // the deepest sampled discharge.
            Err(_) => {
                let (shallowest, deepest) = self.table.dod_domain();
                if dod < shallowest {
                    self.floor(priority)
                } else {
                    self.table
                        .required_current(deepest, budget)
                        .ok()
                        .flatten()
                        .unwrap_or(Amperes::MAX_CHARGE)
                }
            }
        };
        required
            .max(self.floor(priority))
            .clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE)
    }

    /// Whether a rack charging at `current` from `dod` meets its priority's
    /// charging-time SLA.
    ///
    /// Semantics are exact (unquantized), but the query is fully memoized:
    /// because the table's charge-time interpolation is monotone in DOD
    /// between grid rows (nondecreasing minutes down every current column, a
    /// property the charge-time physics guarantees and the workspace property
    /// tests pin), the precomputed threshold currents at the two enclosing
    /// 1/[`SLA_MEMO_DOD_BINS`] bin edges bracket the answer. The interpolator
    /// is consulted only inside that one-bin ambiguity band — `current`
    /// strictly between the two edge thresholds — or when a bin edge lies
    /// outside a partial grid's sampled span (NaN sentinel).
    #[must_use]
    pub fn meets_sla(&self, priority: Priority, dod: Dod, current: Amperes) -> bool {
        let current = current.clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE);
        let thresholds = &self.memo_meets_threshold[(priority.rank() - 1) as usize];
        let scaled = dod.value() * SLA_MEMO_DOD_BINS as f64;
        let bin_lo = (scaled.floor() as usize).min(SLA_MEMO_DOD_BINS);
        let bin_hi = (scaled.ceil() as usize).min(SLA_MEMO_DOD_BINS);
        // Fast accept: enough current for the *deeper* bin edge also meets
        // the SLA at `dod` (charge time rises with DOD). Only valid when the
        // exact path would answer from the table at all, i.e. `dod` is inside
        // the sampled span. A NaN threshold (bin outside a partial grid)
        // fails the comparison and falls through.
        let (shallowest, deepest) = self.table.dod_domain();
        let in_span = dod >= shallowest && dod <= deepest;
        if in_span && current.as_amps() >= thresholds[bin_hi] {
            return true;
        }
        // Fast reject: unattainable even at 5 A for the *shallower* bin edge
        // is unattainable at `dod` too.
        if thresholds[bin_lo].is_infinite() {
            return false;
        }
        // Fast reject: by the same monotonicity, less current than the
        // *shallower* bin edge needs cannot charge the deeper `dod` back in
        // budget either. A NaN threshold fails the `<` and falls through.
        if in_span && current.as_amps() < thresholds[bin_lo] {
            return false;
        }
        let budget = self.sla.charge_time_budget(priority);
        self.table
            .charge_time(dod, current)
            .map(|t| t <= budget)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SlaCurrentPolicy {
        SlaCurrentPolicy::production()
    }

    #[test]
    fn current_rises_with_dod() {
        let p = policy();
        for prio in Priority::ALL {
            let mut prev = Amperes::ZERO;
            for i in 0..=10 {
                let dod = Dod::new(f64::from(i) / 10.0);
                let c = p.sla_current(prio, dod);
                assert!(c >= prev, "{prio} current decreased at {dod}");
                assert!((Amperes::MIN_CHARGE..=Amperes::MAX_CHARGE).contains(&c));
                prev = c;
            }
        }
    }

    #[test]
    fn stricter_sla_needs_more_current() {
        let p = policy();
        for i in 0..=10 {
            let dod = Dod::new(f64::from(i) / 10.0);
            let c1 = p.sla_current(Priority::P1, dod);
            let c2 = p.sla_current(Priority::P2, dod);
            let c3 = p.sla_current(Priority::P3, dod);
            assert!(
                c1 >= c2,
                "P1 ({c1}) must not need less than P2 ({c2}) at {dod}"
            );
            assert!(
                c2 >= c3,
                "P2 ({c2}) must not need less than P3 ({c3}) at {dod}"
            );
        }
    }

    #[test]
    fn prototype_floor_behaviour() {
        // Fig 10: at ~5% DOD, P1 → 2 A, P2/P3 → 1 A.
        let p = policy();
        assert_eq!(
            p.sla_current(Priority::P1, Dod::new(0.05)),
            Amperes::new(2.0)
        );
        assert_eq!(
            p.sla_current(Priority::P2, Dod::new(0.05)),
            Amperes::MIN_CHARGE
        );
        assert_eq!(
            p.sla_current(Priority::P3, Dod::new(0.05)),
            Amperes::MIN_CHARGE
        );
    }

    #[test]
    fn p1_saturates_at_5a_for_deep_discharge() {
        let p = policy();
        let c = p.sla_current(Priority::P1, Dod::FULL);
        assert_eq!(c, Amperes::MAX_CHARGE);
        // At 100% DOD the 30-minute SLA is unattainable even at 5 A.
        assert!(!p.meets_sla(Priority::P1, Dod::FULL, Amperes::MAX_CHARGE));
    }

    #[test]
    fn assigned_sla_current_meets_sla_when_attainable() {
        let p = policy();
        for prio in Priority::ALL {
            for i in 0..=10 {
                let dod = Dod::new(f64::from(i) / 10.0);
                let c = p.sla_current(prio, dod);
                let attainable = p.meets_sla(prio, dod, Amperes::MAX_CHARGE);
                if attainable {
                    assert!(
                        p.meets_sla(prio, dod, c),
                        "{prio} at {dod}: SLA current {c} should meet the SLA"
                    );
                }
            }
        }
    }

    #[test]
    fn p3_meets_sla_at_floor_for_medium_discharge() {
        // The Fig 14(a) observation: P3 racks charging at the 1 A minimum
        // still meet their 90-minute SLA at medium (≈50%) discharge.
        let p = policy();
        assert!(p.meets_sla(Priority::P3, Dod::new(0.5), Amperes::MIN_CHARGE));
        // But not at high (≈70%) discharge — Fig 14(c).
        assert!(!p.meets_sla(Priority::P3, Dod::new(0.7), Amperes::MIN_CHARGE));
    }

    #[test]
    fn custom_floors() {
        let p = policy().with_floors([Amperes::new(3.0); 3]);
        assert_eq!(
            p.sla_current(Priority::P3, Dod::new(0.01)),
            Amperes::new(3.0)
        );
        assert_eq!(p.floor(Priority::P2), Amperes::new(3.0));
    }

    #[test]
    #[should_panic(expected = "hardware range")]
    fn out_of_range_floor_panics() {
        let _ = policy().with_floors([Amperes::new(0.5), Amperes::new(1.0), Amperes::new(1.0)]);
    }

    #[test]
    fn accessors() {
        let p = policy();
        assert_eq!(p.sla(), &SlaTable::table2());
        assert_eq!(p.floor(Priority::P1), Amperes::new(2.0));
        assert!(p.charge_time_table().grid().dods.len() >= 2);
    }

    /// Builds a policy whose charge-time table only samples DODs in
    /// [0.2, 0.8] — the configuration that exposes the out-of-span bug.
    fn partial_grid_policy() -> SlaCurrentPolicy {
        use recharge_battery::{BbuParams, ChargeTimeGrid};
        use recharge_units::Seconds;
        let table = ChargeTimeTable::generate(
            &BbuParams::production(),
            ChargeTimeGrid {
                dods: vec![0.2, 0.5, 0.8],
                currents: vec![1.0, 2.0, 3.0, 4.0, 5.0],
                step: Seconds::new(1.0),
            },
        )
        .unwrap();
        SlaCurrentPolicy::new(table, SlaTable::table2())
    }

    #[test]
    fn below_grid_dod_gets_floor_not_saturation() {
        // Regression for the `Err`/`Ok(None)` conflation: a DOD below a
        // partial table's sampled span used to be treated as unattainable and
        // assigned the full 5 A, starving the rest of the fleet's budget.
        let p = partial_grid_policy();
        assert_eq!(
            p.sla_current_exact(Priority::P2, Dod::new(0.05)),
            Amperes::MIN_CHARGE
        );
        assert_eq!(
            p.sla_current_exact(Priority::P1, Dod::new(0.05)),
            Amperes::new(2.0)
        );
        // The memoized path agrees.
        assert_eq!(
            p.sla_current(Priority::P2, Dod::new(0.05)),
            Amperes::MIN_CHARGE
        );
        assert_eq!(
            p.sla_current(Priority::P1, Dod::new(0.05)),
            Amperes::new(2.0)
        );
    }

    #[test]
    fn above_grid_dod_charges_like_deepest_sample() {
        let p = partial_grid_policy();
        let (_, deepest) = p.charge_time_table().dod_domain();
        for prio in Priority::ALL {
            assert_eq!(
                p.sla_current_exact(prio, Dod::new(0.95)),
                p.sla_current_exact(prio, deepest),
                "{prio}: DOD above the sampled span should behave like the deepest sample"
            );
        }
    }

    #[test]
    fn partial_grid_meets_sla_matches_plain_interpolation() {
        // The memo fast paths must not change answers near or beyond the
        // partial span's edges, where bins carry the NaN sentinel.
        let p = partial_grid_policy();
        for prio in Priority::ALL {
            let budget = p.sla().charge_time_budget(prio);
            for i in 0..=40 {
                let dod = Dod::new(f64::from(i) / 40.0);
                for amps in [1.0, 2.5, 5.0] {
                    let current = Amperes::new(amps);
                    let plain = p
                        .charge_time_table()
                        .charge_time(dod, current)
                        .map(|t| t <= budget)
                        .unwrap_or(false);
                    assert_eq!(
                        p.meets_sla(prio, dod, current),
                        plain,
                        "{prio} at {dod} / {current}"
                    );
                }
            }
        }
    }

    #[test]
    fn memoized_current_matches_exact_on_bin_edges() {
        let p = policy();
        for prio in Priority::ALL {
            for b in (0..=SLA_MEMO_DOD_BINS).step_by(7) {
                let dod = Dod::new(b as f64 / SLA_MEMO_DOD_BINS as f64);
                assert_eq!(
                    p.sla_current(prio, dod),
                    p.sla_current_exact(prio, dod),
                    "{prio} at bin {b}"
                );
            }
        }
    }

    #[test]
    fn memoized_current_is_conservative_within_one_bin() {
        let p = policy();
        let step = 1.0 / SLA_MEMO_DOD_BINS as f64;
        for prio in Priority::ALL {
            for i in 0..=1000 {
                let dod = Dod::new(f64::from(i) / 1000.0 * 0.999 + 0.0003);
                let memo = p.sla_current(prio, dod);
                let exact = p.sla_current_exact(prio, dod);
                let next = p.sla_current_exact(prio, Dod::new((dod.value() + step).min(1.0)));
                assert!(
                    memo >= exact,
                    "{prio} at {dod}: memo {memo} < exact {exact}"
                );
                assert!(
                    memo <= next,
                    "{prio} at {dod}: memo {memo} > one-bin-deeper {next}"
                );
            }
        }
    }

    #[test]
    fn meets_sla_agrees_with_plain_interpolation_on_production_table() {
        let p = policy();
        for prio in Priority::ALL {
            let budget = p.sla().charge_time_budget(prio);
            for i in 0..=100 {
                let dod = Dod::new(f64::from(i) / 100.0);
                for tenths in 10..=50 {
                    let current = Amperes::new(f64::from(tenths) / 10.0);
                    let plain = p
                        .charge_time_table()
                        .charge_time(dod, current)
                        .map(|t| t <= budget)
                        .unwrap_or(false);
                    assert_eq!(
                        p.meets_sla(prio, dod, current),
                        plain,
                        "{prio} at {dod} / {current}"
                    );
                }
            }
        }
    }
}
