//! The SLA-current policy of Fig 9(b): charging current required to meet a
//! rack's charging-time SLA given its battery depth of discharge.

use serde::{Deserialize, Serialize};

use recharge_battery::ChargeTimeTable;
use recharge_units::{Amperes, Dod, Priority};

use crate::sla::SlaTable;

/// Computes the per-rack SLA charging current (Fig 9b).
///
/// The policy inverts the charge-time surface of Fig 5 ("by linearly
/// interpolating the BBU charging time data", §IV-A): the SLA current is the
/// smallest current that charges back within the priority's Table II budget.
/// Two hardware-informed adjustments match the deployed behaviour:
///
/// * **Per-priority floors.** The §V-A prototype assigns 2 A to P1 racks and
///   1 A to P2/P3 racks even at <5% DOD, so P1 never drops below the variable
///   charger's 2 A automatic minimum while lower priorities may be relaxed to
///   the 1 A hardware floor.
/// * **Saturation.** When even 5 A cannot meet the budget (deep discharge
///   against a 30-minute SLA), the policy saturates at 5 A — the SLA is then
///   unattainable but the rack charges as fast as the hardware allows.
///
/// # Examples
///
/// ```
/// use recharge_core::SlaCurrentPolicy;
/// use recharge_units::{Amperes, Dod, Priority};
///
/// let policy = SlaCurrentPolicy::production();
/// // Fig 10: at <5% DOD, P1 charges at 2 A while P2/P3 charge at 1 A.
/// assert_eq!(policy.sla_current(Priority::P1, Dod::new(0.04)), Amperes::new(2.0));
/// assert_eq!(policy.sla_current(Priority::P2, Dod::new(0.04)), Amperes::new(1.0));
/// assert_eq!(policy.sla_current(Priority::P3, Dod::new(0.04)), Amperes::new(1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaCurrentPolicy {
    table: ChargeTimeTable,
    sla: SlaTable,
    floors: [Amperes; 3],
}

impl SlaCurrentPolicy {
    /// The deployed configuration: the production charge-time table, Table II
    /// SLAs, and floors of 2 A (P1) / 1 A (P2, P3).
    #[must_use]
    pub fn production() -> Self {
        SlaCurrentPolicy::new(ChargeTimeTable::production().clone(), SlaTable::table2())
    }

    /// Creates a policy from a charge-time table and SLA table with the
    /// standard floors.
    #[must_use]
    pub fn new(table: ChargeTimeTable, sla: SlaTable) -> Self {
        SlaCurrentPolicy {
            table,
            sla,
            floors: [Amperes::new(2.0), Amperes::MIN_CHARGE, Amperes::MIN_CHARGE],
        }
    }

    /// Overrides the per-priority minimum currents.
    ///
    /// # Panics
    ///
    /// Panics if any floor lies outside the 1–5 A hardware range.
    #[must_use]
    pub fn with_floors(mut self, floors: [Amperes; 3]) -> Self {
        for f in floors {
            assert!(
                (Amperes::MIN_CHARGE..=Amperes::MAX_CHARGE).contains(&f),
                "floors must lie within the 1-5 A hardware range"
            );
        }
        self.floors = floors;
        self
    }

    /// The SLA table in force.
    #[must_use]
    pub fn sla(&self) -> &SlaTable {
        &self.sla
    }

    /// The charge-time table in force.
    #[must_use]
    pub fn charge_time_table(&self) -> &ChargeTimeTable {
        &self.table
    }

    /// The minimum current for a priority.
    #[must_use]
    pub fn floor(&self, priority: Priority) -> Amperes {
        self.floors[(priority.rank() - 1) as usize]
    }

    /// Planning safety margin: SLA currents are sized against 97% of the
    /// budget so that model/physics mismatch and control-loop latency cannot
    /// push a boundary rack just past its SLA.
    pub const SLA_SAFETY_MARGIN: f64 = 0.97;

    /// The Fig 9(b) SLA charging current for a rack of the given priority
    /// whose battery discharged to `dod`, clamped to the hardware range.
    #[must_use]
    pub fn sla_current(&self, priority: Priority, dod: Dod) -> Amperes {
        let budget = self.sla.charge_time_budget(priority) * Self::SLA_SAFETY_MARGIN;
        let required = self
            .table
            .required_current(dod, budget)
            .ok()
            .flatten()
            .unwrap_or(Amperes::MAX_CHARGE);
        required
            .max(self.floor(priority))
            .clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE)
    }

    /// Whether a rack charging at `current` from `dod` meets its priority's
    /// charging-time SLA.
    #[must_use]
    pub fn meets_sla(&self, priority: Priority, dod: Dod, current: Amperes) -> bool {
        let budget = self.sla.charge_time_budget(priority);
        self.table
            .charge_time(dod, current.clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE))
            .map(|t| t <= budget)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SlaCurrentPolicy {
        SlaCurrentPolicy::production()
    }

    #[test]
    fn current_rises_with_dod() {
        let p = policy();
        for prio in Priority::ALL {
            let mut prev = Amperes::ZERO;
            for i in 0..=10 {
                let dod = Dod::new(f64::from(i) / 10.0);
                let c = p.sla_current(prio, dod);
                assert!(c >= prev, "{prio} current decreased at {dod}");
                assert!((Amperes::MIN_CHARGE..=Amperes::MAX_CHARGE).contains(&c));
                prev = c;
            }
        }
    }

    #[test]
    fn stricter_sla_needs_more_current() {
        let p = policy();
        for i in 0..=10 {
            let dod = Dod::new(f64::from(i) / 10.0);
            let c1 = p.sla_current(Priority::P1, dod);
            let c2 = p.sla_current(Priority::P2, dod);
            let c3 = p.sla_current(Priority::P3, dod);
            assert!(c1 >= c2, "P1 ({c1}) must not need less than P2 ({c2}) at {dod}");
            assert!(c2 >= c3, "P2 ({c2}) must not need less than P3 ({c3}) at {dod}");
        }
    }

    #[test]
    fn prototype_floor_behaviour() {
        // Fig 10: at ~5% DOD, P1 → 2 A, P2/P3 → 1 A.
        let p = policy();
        assert_eq!(p.sla_current(Priority::P1, Dod::new(0.05)), Amperes::new(2.0));
        assert_eq!(p.sla_current(Priority::P2, Dod::new(0.05)), Amperes::MIN_CHARGE);
        assert_eq!(p.sla_current(Priority::P3, Dod::new(0.05)), Amperes::MIN_CHARGE);
    }

    #[test]
    fn p1_saturates_at_5a_for_deep_discharge() {
        let p = policy();
        let c = p.sla_current(Priority::P1, Dod::FULL);
        assert_eq!(c, Amperes::MAX_CHARGE);
        // At 100% DOD the 30-minute SLA is unattainable even at 5 A.
        assert!(!p.meets_sla(Priority::P1, Dod::FULL, Amperes::MAX_CHARGE));
    }

    #[test]
    fn assigned_sla_current_meets_sla_when_attainable() {
        let p = policy();
        for prio in Priority::ALL {
            for i in 0..=10 {
                let dod = Dod::new(f64::from(i) / 10.0);
                let c = p.sla_current(prio, dod);
                let attainable = p.meets_sla(prio, dod, Amperes::MAX_CHARGE);
                if attainable {
                    assert!(
                        p.meets_sla(prio, dod, c),
                        "{prio} at {dod}: SLA current {c} should meet the SLA"
                    );
                }
            }
        }
    }

    #[test]
    fn p3_meets_sla_at_floor_for_medium_discharge() {
        // The Fig 14(a) observation: P3 racks charging at the 1 A minimum
        // still meet their 90-minute SLA at medium (≈50%) discharge.
        let p = policy();
        assert!(p.meets_sla(Priority::P3, Dod::new(0.5), Amperes::MIN_CHARGE));
        // But not at high (≈70%) discharge — Fig 14(c).
        assert!(!p.meets_sla(Priority::P3, Dod::new(0.7), Amperes::MIN_CHARGE));
    }

    #[test]
    fn custom_floors() {
        let p = policy().with_floors([Amperes::new(3.0); 3]);
        assert_eq!(p.sla_current(Priority::P3, Dod::new(0.01)), Amperes::new(3.0));
        assert_eq!(p.floor(Priority::P2), Amperes::new(3.0));
    }

    #[test]
    #[should_panic(expected = "hardware range")]
    fn out_of_range_floor_panics() {
        let _ = policy().with_floors([Amperes::new(0.5), Amperes::new(1.0), Amperes::new(1.0)]);
    }

    #[test]
    fn accessors() {
        let p = policy();
        assert_eq!(p.sla(), &SlaTable::table2());
        assert_eq!(p.floor(Priority::P1), Amperes::new(2.0));
        assert!(p.charge_time_table().grid().dods.len() >= 2);
    }
}
