//! End-to-end observability smoke: force a breaker trip with the black box
//! armed, then answer "why" from the dump alone — in-process through
//! [`recharge_ops::explain`] and out-of-process through the real
//! `recharge-ops` binary.
//!
//! A single `#[test]` on purpose: it owns the process-wide `RECHARGE_BLACKBOX`
//! variable, the trigger latch, and the flight rings.

use recharge_battery::ChargePolicy;
use recharge_dynamo::Strategy;
use recharge_sim::{DischargeLevel, Scenario};
use recharge_telemetry::{FlightKind, NO_BUCKET};
use recharge_units::{Seconds, Watts};

fn small(strategy: Strategy, limit_kw: f64) -> Scenario {
    Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(limit_kw))
        .strategy(strategy)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5))
}

#[test]
fn forced_trip_dump_explains_algorithm1_decisions() {
    let path = std::env::temp_dir().join(format!("recharge_obs_smoke_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var(recharge_telemetry::BLACKBOX_ENV_VAR, &path);
    recharge_telemetry::reset_blackbox_trigger();
    recharge_telemetry::set_recorder_enabled(true);

    // Probe the fleet's IT load, then drain the probe's journal.
    let probe = small(Strategy::PriorityAware, 190.0).build().run();
    let it_peak = probe.it_load_before_ot;
    let _ = recharge_telemetry::take_flight_events();

    // Decision-rich priority-aware run under a tight limit, then an
    // unmanaged run whose recharge spike must trip the breaker. The first
    // trigger (a phase 1 SLA miss, or phase 2's trip) writes the dump; the
    // rings are shared, so either dump carries phase 1's decisions.
    let _ = small(Strategy::PriorityAware, it_peak.as_kilowatts() + 3.6)
        .build()
        .run();
    let metrics = small(Strategy::Uncoordinated, it_peak.as_kilowatts() * 0.85)
        .charge_policy(ChargePolicy::Original)
        .build()
        .without_mitigation()
        .run();
    assert!(metrics.breaker_tripped, "smoke failed to trip the breaker");

    // The dump exists, parses, and carries Algorithm 1 decisions.
    let doc = std::fs::read_to_string(&path).expect("trigger wrote the dump");
    let dump = recharge_telemetry::parse_blackbox(&doc).expect("dump parses");
    assert!(
        dump.trigger == "breaker_trip" || dump.trigger == "sla_miss",
        "unexpected trigger {:?}",
        dump.trigger
    );
    let admit = dump
        .events
        .iter()
        .find(|e| e.kind == FlightKind::Admit)
        .expect("dump holds Algorithm 1 admit decisions");
    assert!((1..=3).contains(&admit.priority), "admit carries priority");
    assert_ne!(admit.bucket, NO_BUCKET, "admit carries a DOD bucket");

    // In-process explain: the latest decision for that rack names the exact
    // reason with priority, DOD bucket, and the decision's inputs.
    let report = recharge_ops::explain(&dump, admit.rack, f64::INFINITY, 4)
        .expect("explain finds a decision");
    assert!(report.contains("priority"), "{report}");
    assert!(report.contains("dod_bucket"), "{report}");
    assert!(
        report.contains("admit_")
            || report.contains("throttle_overload")
            || report.contains("postpone_deficit"),
        "{report}"
    );

    // Out-of-process: the shipped CLI reads the same dump and agrees.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_recharge-ops"))
        .args(["explain", "--rack", &admit.rack.to_string(), "--at", "1e12"])
        .arg(&path)
        .output()
        .expect("recharge-ops runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "recharge-ops explain failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("dod_bucket"), "{stdout}");

    let summary = std::process::Command::new(env!("CARGO_BIN_EXE_recharge-ops"))
        .arg("summary")
        .arg(&path)
        .output()
        .expect("recharge-ops runs");
    assert!(summary.status.success());
    let summary = String::from_utf8_lossy(&summary.stdout);
    assert!(summary.contains("admit"), "{summary}");

    std::env::remove_var(recharge_telemetry::BLACKBOX_ENV_VAR);
    recharge_telemetry::reset_blackbox_trigger();
    let _ = std::fs::remove_file(&path);
}
