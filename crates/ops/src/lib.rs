//! `recharge-ops`: the post-mortem half of the observability plane.
//!
//! The flight recorder (`recharge_telemetry::recorder`) journals every
//! Algorithm 1 decision with a machine-readable reason code and its exact
//! inputs; a trigger (breaker trip, first SLA miss, panic) dumps the merged
//! timeline to the `RECHARGE_BLACKBOX` path. This crate turns such a dump
//! back into answers:
//!
//! - [`explain`] — *why is rack N in this state at time T?* Reports the
//!   latest decision for the rack at or before T (kind, reason, priority,
//!   DOD bucket, and the decision's exact inputs), plus the rack's recent
//!   decision history leading up to it.
//! - [`timeline`] — the merged event timeline, optionally filtered to one
//!   rack and truncated to the last K events.
//! - [`summary`] — dump-wide shape: trigger, time range, event counts by
//!   kind and reason, racks involved, ring overwrites.
//!
//! Everything renders from the dump alone — no simulation state is needed,
//! which is the point of a black box.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

use recharge_telemetry::{BlackboxDump, FlightEvent, FlightKind, NO_BUCKET, NO_RACK};

/// Kinds that represent controller *decisions* about a specific rack — the
/// ones `explain` answers with. Pure observations (margin crossings, SLA
/// verdicts, wire edges) are context, not decisions.
const DECISION_KINDS: [FlightKind; 8] = [
    FlightKind::Admit,
    FlightKind::Postpone,
    FlightKind::Park,
    FlightKind::Resume,
    FlightKind::Throttle,
    FlightKind::Override,
    FlightKind::Cap,
    FlightKind::Uncap,
];

fn is_decision(e: &FlightEvent) -> bool {
    DECISION_KINDS.contains(&e.kind)
}

/// Renders an event's kind-specific payload words as the quantities they
/// carry (see the payload conventions in `DESIGN.md` §15).
#[must_use]
pub fn describe_payload(e: &FlightEvent) -> String {
    let (v0, v1) = (e.v0_f64(), e.v1_f64());
    match e.kind {
        FlightKind::BreakerMargin | FlightKind::BreakerTrip => {
            format!("draw {v0:.1} W vs limit {v1:.1} W")
        }
        FlightKind::SlaOutcome => {
            if v0.is_infinite() {
                format!("never completed within the horizon (budget {v1:.0} s)")
            } else {
                format!("charged in {v0:.1} s vs budget {v1:.0} s")
            }
        }
        FlightKind::Admit => format!("current {v0:.2} A, budget left {v1:.1} W"),
        FlightKind::Postpone => format!("was at {v0:.2} A, residual deficit {v1:.1} W"),
        FlightKind::Park => format!("parked at DOD {v0:.3}"),
        FlightKind::Resume => format!("headroom {v0:.1} W, reserve {v1:.1} W"),
        FlightKind::Throttle => format!("demoted from {v0:.2} A, overload left {v1:.1} W"),
        FlightKind::Override => format!("commanded {v0:.2} A (was {v1:.2} A)"),
        FlightKind::Cap => format!("capped to {v0:.1} W, shedding {v1:.1} W"),
        FlightKind::Uncap => format!("uncapped under {v0:.1} W headroom"),
        FlightKind::LeaseGrant => {
            format!("granted at tick {}, lease {} ticks", e.v0, e.v1)
        }
        FlightKind::LeaseExpire => {
            format!("last contact tick {}, lease {} ticks", e.v0, e.v1)
        }
        FlightKind::RpcRetry => format!("attempt {}, shard {}", e.v0, e.v1),
        FlightKind::PartitionEdge => {
            let edge = if e.v0 == 1 { "opened" } else { "healed" };
            format!("partition {edge}, shard {}", e.v1)
        }
        FlightKind::FastForward => {
            format!(
                "fast-forwarded {} sub-steps, woke at sub-step {}",
                e.v0, e.v1
            )
        }
        FlightKind::LeaderElected => format!("controller {} won term {}", e.v0, e.v1),
        FlightKind::LeaderLost => format!("controller {} lost term {}", e.v0, e.v1),
        FlightKind::SnapshotTaken => format!("term {}, {} bytes", e.v0, e.v1),
        FlightKind::SnapshotRestored => format!("term {}, {} bytes", e.v0, e.v1),
        FlightKind::TakeoverComplete => {
            format!("controller {} leading, term {}", e.v0, e.v1)
        }
        FlightKind::StaleLeaderFenced => {
            format!("stale term {} < current {}", e.v0, e.v1)
        }
    }
}

/// One-line rendering of an event: time, kind, reason, rack identity
/// (priority and DOD bucket when they apply), payload.
#[must_use]
pub fn render_event(e: &FlightEvent) -> String {
    let mut line = format!(
        "t={:<10.3} {:<14} {:<22}",
        e.at(),
        e.kind.name(),
        e.reason.name()
    );
    if e.rack == NO_RACK {
        line.push_str(" fleet     ");
    } else {
        let _ = write!(line, " rack {:<4}", e.rack);
    }
    if e.priority != 0 {
        let _ = write!(line, " P{}", e.priority);
    }
    if e.bucket != NO_BUCKET {
        let _ = write!(line, " dod_bucket {}", e.bucket);
    }
    let _ = write!(line, "  {}", describe_payload(e));
    line
}

/// Answers "why is rack `rack` in this state at time `at`": the latest
/// decision event for the rack at or before `at`, with up to `history`
/// earlier decisions for context. Returns `None` when the dump holds no
/// decision for that rack in `[0, at]`.
#[must_use]
pub fn explain(dump: &BlackboxDump, rack: u32, at: f64, history: usize) -> Option<String> {
    // The dump is timeline-sorted; collect the rack's decisions up to `at`.
    let decisions: Vec<&FlightEvent> = dump
        .events
        .iter()
        .filter(|e| e.rack == rack && e.at() <= at && is_decision(e))
        .collect();
    let last = decisions.last()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "rack {rack} at t={at}: {} ({})",
        last.kind.name(),
        last.reason.name()
    );
    let _ = writeln!(
        out,
        "  decided at t={:.3} with priority {} dod_bucket {}: {}",
        last.at(),
        last.priority,
        if last.bucket == NO_BUCKET {
            "-".to_owned()
        } else {
            last.bucket.to_string()
        },
        describe_payload(last)
    );
    let lead_in = decisions.len().saturating_sub(1);
    if lead_in > 0 {
        let _ = writeln!(out, "  history (most recent last):");
        for e in &decisions[lead_in.saturating_sub(history)..lead_in] {
            let _ = writeln!(out, "    {}", render_event(e));
        }
    }
    Some(out)
}

/// Renders the merged timeline, optionally filtered to one rack, truncated
/// to the last `last` events (0 = all).
#[must_use]
pub fn timeline(dump: &BlackboxDump, rack: Option<u32>, last: usize) -> String {
    let selected: Vec<&FlightEvent> = dump
        .events
        .iter()
        .filter(|e| rack.is_none_or(|r| e.rack == r))
        .collect();
    let skip = if last > 0 {
        selected.len().saturating_sub(last)
    } else {
        0
    };
    let mut out = String::new();
    if skip > 0 {
        let _ = writeln!(out, "... {skip} earlier events elided ...");
    }
    for e in &selected[skip..] {
        let _ = writeln!(out, "{}", render_event(e));
    }
    if selected.is_empty() {
        out.push_str("(no events)\n");
    }
    out
}

/// Dump-wide shape: trigger, window, per-kind/per-reason counts, racks.
#[must_use]
pub fn summary(dump: &BlackboxDump) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trigger: {}  events: {}  overwritten: {}",
        dump.trigger,
        dump.events.len(),
        dump.overwritten
    );
    if let (Some(first), Some(last)) = (dump.events.first(), dump.events.last()) {
        let _ = writeln!(out, "window: t={:.3} .. t={:.3}", first.at(), last.at());
    }
    let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_reason: BTreeMap<&str, usize> = BTreeMap::new();
    let mut racks: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for e in &dump.events {
        *by_kind.entry(e.kind.name()).or_default() += 1;
        *by_reason.entry(e.reason.name()).or_default() += 1;
        if e.rack != NO_RACK {
            racks.insert(e.rack);
        }
    }
    let _ = writeln!(out, "racks involved: {}", racks.len());
    out.push_str("by kind:\n");
    for (kind, n) in &by_kind {
        let _ = writeln!(out, "  {kind:<16} {n}");
    }
    out.push_str("by reason:\n");
    for (reason, n) in &by_reason {
        let _ = writeln!(out, "  {reason:<24} {n}");
    }
    let leadership = leader_timeline(dump);
    if !leadership.is_empty() {
        out.push_str("leader timeline:\n");
        out.push_str(&leadership);
    }
    out
}

/// Renders the HA leadership history: every election, loss, and takeover
/// in dump order. Empty when the run had no HA events (single-controller).
#[must_use]
pub fn leader_timeline(dump: &BlackboxDump) -> String {
    let mut out = String::new();
    for e in &dump.events {
        let line = match e.kind {
            FlightKind::LeaderElected => {
                format!("controller {} elected for term {}", e.v0, e.v1)
            }
            FlightKind::LeaderLost => {
                format!("controller {} lost leadership of term {}", e.v0, e.v1)
            }
            FlightKind::TakeoverComplete => {
                format!("controller {} completed takeover in term {}", e.v0, e.v1)
            }
            _ => continue,
        };
        let _ = writeln!(out, "  t={:<10.3} {} ({})", e.at(), line, e.reason.name());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_telemetry::ReasonCode;

    #[allow(clippy::too_many_arguments)] // mirrors the FlightEvent fields
    fn event(
        at: f64,
        kind: FlightKind,
        reason: ReasonCode,
        rack: u32,
        priority: u8,
        bucket: u16,
        v0: f64,
        v1: f64,
    ) -> FlightEvent {
        FlightEvent {
            at_bits: at.to_bits(),
            kind,
            reason,
            priority,
            bucket,
            rack,
            v0: v0.to_bits(),
            v1: v1.to_bits(),
        }
    }

    fn dump() -> BlackboxDump {
        BlackboxDump {
            trigger: "breaker_trip".to_owned(),
            overwritten: 0,
            events: vec![
                event(
                    10.0,
                    FlightKind::Admit,
                    ReasonCode::AdmitFloor,
                    41,
                    2,
                    512,
                    1.0,
                    900.0,
                ),
                event(
                    20.0,
                    FlightKind::Admit,
                    ReasonCode::AdmitUpgraded,
                    41,
                    2,
                    512,
                    16.4,
                    300.0,
                ),
                event(
                    30.0,
                    FlightKind::Throttle,
                    ReasonCode::ThrottleOverload,
                    41,
                    2,
                    480,
                    16.4,
                    120.0,
                ),
                event(
                    30.0,
                    FlightKind::SlaOutcome,
                    ReasonCode::SlaMissed,
                    41,
                    2,
                    480,
                    4000.0,
                    3600.0,
                ),
                event(
                    35.0,
                    FlightKind::BreakerTrip,
                    ReasonCode::Observed,
                    NO_RACK,
                    0,
                    NO_BUCKET,
                    191_000.0,
                    190_000.0,
                ),
            ],
        }
    }

    #[test]
    fn explain_picks_latest_decision_at_or_before() {
        let d = dump();
        // At t=25 the latest decision is the t=20 upgrade.
        let report = explain(&d, 41, 25.0, 8).expect("decision exists");
        assert!(report.contains("admit (admit_upgraded)"), "{report}");
        assert!(report.contains("priority 2"), "{report}");
        assert!(report.contains("dod_bucket 512"), "{report}");
        assert!(report.contains("16.40 A"), "{report}");
        // At t=30 the throttle wins; the SLA outcome is not a decision.
        let report = explain(&d, 41, 30.0, 8).expect("decision exists");
        assert!(report.contains("throttle (throttle_overload)"), "{report}");
        // Unknown rack or too-early time: no answer.
        assert!(explain(&d, 7, 30.0, 8).is_none());
        assert!(explain(&d, 41, 5.0, 8).is_none());
    }

    #[test]
    fn timeline_filters_and_truncates() {
        let d = dump();
        let all = timeline(&d, None, 0);
        assert_eq!(all.lines().count(), 5);
        let rack41 = timeline(&d, Some(41), 0);
        assert_eq!(rack41.lines().count(), 4);
        assert!(!rack41.contains("breaker_trip"));
        let last2 = timeline(&d, Some(41), 2);
        assert!(last2.starts_with("... 2 earlier events elided ..."));
        assert_eq!(last2.lines().count(), 3);
    }

    #[test]
    fn summary_counts_by_kind_and_reason() {
        let s = summary(&dump());
        assert!(s.contains("trigger: breaker_trip"), "{s}");
        assert!(s.contains("racks involved: 1"), "{s}");
        assert!(
            s.contains("admit             2") || s.contains("admit            2"),
            "{s}"
        );
        assert!(s.contains("sla_missed"), "{s}");
        // No HA events in this dump: the leader timeline section is absent.
        assert!(!s.contains("leader timeline"), "{s}");
    }

    fn ha_event(at: f64, kind: FlightKind, reason: ReasonCode, v0: u64, v1: u64) -> FlightEvent {
        FlightEvent {
            at_bits: at.to_bits(),
            kind,
            reason,
            priority: 0,
            bucket: NO_BUCKET,
            rack: NO_RACK,
            v0,
            v1,
        }
    }

    fn ha_dump() -> BlackboxDump {
        BlackboxDump {
            trigger: "manual".to_owned(),
            overwritten: 0,
            events: vec![
                ha_event(
                    0.0,
                    FlightKind::LeaderElected,
                    ReasonCode::HaCampaignWon,
                    0,
                    1,
                ),
                ha_event(
                    100.0,
                    FlightKind::SnapshotTaken,
                    ReasonCode::HaSnapshotCadence,
                    1,
                    68,
                ),
                ha_event(600.0, FlightKind::LeaderLost, ReasonCode::HaCrashed, 0, 1),
                ha_event(
                    630.0,
                    FlightKind::LeaderElected,
                    ReasonCode::HaCampaignWon,
                    2,
                    2,
                ),
                ha_event(
                    630.0,
                    FlightKind::SnapshotRestored,
                    ReasonCode::HaTakeover,
                    2,
                    68,
                ),
                ha_event(
                    631.0,
                    FlightKind::TakeoverComplete,
                    ReasonCode::HaTakeover,
                    2,
                    2,
                ),
                ha_event(
                    632.0,
                    FlightKind::StaleLeaderFenced,
                    ReasonCode::HaStaleTerm,
                    1,
                    2,
                ),
            ],
        }
    }

    #[test]
    fn ha_events_render_in_timeline() {
        let t = timeline(&ha_dump(), None, 0);
        assert!(t.contains("controller 0 won term 1"), "{t}");
        assert!(t.contains("controller 0 lost term 1"), "{t}");
        assert!(t.contains("term 1, 68 bytes"), "{t}");
        assert!(t.contains("term 2, 68 bytes"), "{t}");
        assert!(t.contains("controller 2 leading, term 2"), "{t}");
        assert!(t.contains("stale term 1 < current 2"), "{t}");
        assert!(t.contains("ha_campaign_won"), "{t}");
    }

    #[test]
    fn summary_prints_leader_timeline() {
        let s = summary(&ha_dump());
        assert!(s.contains("leader timeline:"), "{s}");
        assert!(s.contains("controller 0 elected for term 1"), "{s}");
        assert!(
            s.contains("controller 0 lost leadership of term 1 (ha_crashed)"),
            "{s}"
        );
        assert!(s.contains("controller 2 elected for term 2"), "{s}");
        assert!(
            s.contains("controller 2 completed takeover in term 2"),
            "{s}"
        );
        // Snapshots and fencing are not leadership transitions.
        assert!(!leader_timeline(&ha_dump()).contains("bytes"));
    }
}
