//! `recharge-ops`: inspect a flight-recorder black-box dump.
//!
//! ```text
//! recharge-ops explain  --rack N --at T [--history K] [DUMP]
//! recharge-ops timeline [--rack N] [--last K]        [DUMP]
//! recharge-ops summary                               [DUMP]
//! ```
//!
//! `DUMP` defaults to the path in `RECHARGE_BLACKBOX`, so the same
//! environment that armed the recorder also locates its dump. Exit codes:
//! 0 success, 1 no matching decision / unreadable dump, 2 usage error.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use recharge_ops::{explain, summary, timeline};
use recharge_telemetry::{parse_blackbox, BlackboxDump};

const USAGE: &str = "usage:
  recharge-ops explain  --rack N --at T [--history K] [DUMP]
  recharge-ops timeline [--rack N] [--last K]        [DUMP]
  recharge-ops summary                               [DUMP]

DUMP defaults to the path in RECHARGE_BLACKBOX.";

fn usage(problem: &str) -> ExitCode {
    eprintln!("recharge-ops: {problem}\n{USAGE}");
    ExitCode::from(2)
}

/// Pulls `--flag value` out of `args`, parsing the value with `parse`.
fn take_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let raw = args.remove(pos + 1);
    args.remove(pos);
    raw.parse()
        .map(Some)
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

fn load_dump(args: &[String]) -> Result<BlackboxDump, String> {
    let path = match args {
        [] => recharge_telemetry::env_blackbox_path()
            .ok_or("no DUMP argument and RECHARGE_BLACKBOX is unset")?,
        [path] => path.into(),
        more => return Err(format!("unexpected arguments: {more:?}")),
    };
    let doc = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_blackbox(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage("missing subcommand");
    }
    let command = args.remove(0);

    let rack = match take_flag::<u32>(&mut args, "--rack") {
        Ok(rack) => rack,
        Err(e) => return usage(&e),
    };
    let result = match command.as_str() {
        "explain" => {
            let (at, history) = match (
                take_flag::<f64>(&mut args, "--at"),
                take_flag::<usize>(&mut args, "--history"),
            ) {
                (Ok(at), Ok(history)) => (at, history),
                (Err(e), _) | (_, Err(e)) => return usage(&e),
            };
            let (Some(rack), Some(at)) = (rack, at) else {
                return usage("explain needs --rack and --at");
            };
            load_dump(&args).and_then(|dump| {
                explain(&dump, rack, at, history.unwrap_or(8))
                    .ok_or(format!("no decision for rack {rack} at or before t={at}"))
            })
        }
        "timeline" => {
            let last = match take_flag::<usize>(&mut args, "--last") {
                Ok(last) => last,
                Err(e) => return usage(&e),
            };
            load_dump(&args).map(|dump| timeline(&dump, rack, last.unwrap_or(0)))
        }
        "summary" => load_dump(&args).map(|dump| summary(&dump)),
        other => return usage(&format!("unknown subcommand {other:?}")),
    };

    match result {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(problem) => {
            eprintln!("recharge-ops: {problem}");
            ExitCode::FAILURE
        }
    }
}
