//! Energy quantities.

use serde::{Deserialize, Serialize};

use crate::macros::scalar_newtype;
use crate::power::Watts;
use crate::time::Seconds;

/// Energy in joules (watt-seconds).
///
/// Battery capacity, discharged energy, and recharged energy are all tracked in
/// joules. Watt-hour accessors are provided because battery data sheets quote
/// capacity in Wh (a full BBU discharge in the paper is 3,300 W × 90 s = 82.5 Wh).
///
/// # Examples
///
/// ```
/// use recharge_units::{Joules, Watts, Seconds};
///
/// let full_discharge = Watts::new(3_300.0) * Seconds::new(90.0);
/// assert!((full_discharge.as_watt_hours() - 82.5).abs() < 1e-9);
/// assert_eq!(full_discharge, Joules::from_watt_hours(82.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Joules(pub(crate) f64);

scalar_newtype!(Joules, "J");

impl Joules {
    /// Creates an energy value from joules.
    #[must_use]
    pub const fn new(joules: f64) -> Self {
        Joules(joules)
    }

    /// Creates an energy value from watt-hours.
    #[must_use]
    pub fn from_watt_hours(wh: f64) -> Self {
        Joules(wh * 3_600.0)
    }

    /// Creates an energy value from kilowatt-hours.
    #[must_use]
    pub fn from_kilowatt_hours(kwh: f64) -> Self {
        Joules(kwh * 3.6e6)
    }

    /// The value in joules.
    #[must_use]
    pub const fn as_joules(self) -> f64 {
        self.0
    }

    /// The value in watt-hours.
    #[must_use]
    pub fn as_watt_hours(self) -> f64 {
        self.0 / 3_600.0
    }

    /// The value in kilowatt-hours.
    #[must_use]
    pub fn as_kilowatt_hours(self) -> f64 {
        self.0 / 3.6e6
    }
}

impl core::ops::Div<Seconds> for Joules {
    type Output = Watts;

    /// Energy spread over a duration yields average power.
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.0 / rhs.as_secs())
    }
}

impl core::ops::Div<Watts> for Joules {
    type Output = Seconds;

    /// Energy delivered at a constant power yields the time required.
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.0 / rhs.as_watts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watt_hour_round_trip() {
        let e = Joules::from_watt_hours(82.5);
        assert_eq!(e.as_joules(), 297_000.0);
        assert_eq!(e.as_watt_hours(), 82.5);
        assert!((Joules::from_kilowatt_hours(1.0).as_kilowatt_hours() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_over_time_is_power() {
        let e = Joules::new(1_200.0);
        assert_eq!(e / Seconds::new(60.0), Watts::new(20.0));
    }

    #[test]
    fn energy_over_power_is_time() {
        let e = Joules::new(297_000.0);
        let t = e / Watts::new(3_300.0);
        assert_eq!(t, Seconds::new(90.0));
    }

    #[test]
    fn arithmetic() {
        let a = Joules::new(10.0);
        let b = Joules::new(4.0);
        assert_eq!(a + b, Joules::new(14.0));
        assert_eq!(a - b, Joules::new(6.0));
        assert_eq!(a / b, 2.5);
        assert_eq!((a * 0.5).as_joules(), 5.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Joules::new(2.0)), "2.000 J");
    }
}
