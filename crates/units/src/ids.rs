//! Identifiers for racks, BBUs, and power-hierarchy devices.

use serde::{Deserialize, Serialize};

/// Identifier of a server rack within a simulated fleet.
///
/// # Examples
///
/// ```
/// use recharge_units::RackId;
///
/// let id = RackId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(format!("{id}"), "rack-7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RackId(u32);

impl RackId {
    /// Creates a rack identifier from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        RackId(index)
    }

    /// The dense index backing this identifier.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl core::fmt::Display for RackId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rack-{}", self.0)
    }
}

impl From<u32> for RackId {
    fn from(index: u32) -> Self {
        RackId(index)
    }
}

/// Identifier of a battery backup unit: a rack plus a slot index.
///
/// Open Rack V2 racks carry six BBUs (two power zones × three units).
///
/// # Examples
///
/// ```
/// use recharge_units::{BbuId, RackId};
///
/// let id = BbuId::new(RackId::new(3), 5);
/// assert_eq!(format!("{id}"), "rack-3/bbu-5");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BbuId {
    rack: RackId,
    slot: u8,
}

impl BbuId {
    /// Creates a BBU identifier for the given rack and slot.
    #[must_use]
    pub const fn new(rack: RackId, slot: u8) -> Self {
        BbuId { rack, slot }
    }

    /// The rack hosting this BBU.
    #[must_use]
    pub const fn rack(self) -> RackId {
        self.rack
    }

    /// The slot index within the rack (0-based).
    #[must_use]
    pub const fn slot(self) -> u8 {
        self.slot
    }
}

impl core::fmt::Display for BbuId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/bbu-{}", self.rack, self.slot)
    }
}

/// Identifier of a device (breaker, board, panel…) in the power hierarchy tree.
///
/// `DeviceId`s are dense indices handed out by the topology arena in
/// `recharge-power`; they are only meaningful relative to the topology that
/// created them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct DeviceId(u32);

impl DeviceId {
    /// Creates a device identifier from a dense arena index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        DeviceId(index)
    }

    /// The dense arena index backing this identifier.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl core::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "dev-{}", self.0)
    }
}

impl From<u32> for DeviceId {
    fn from(index: u32) -> Self {
        DeviceId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_id_round_trip() {
        let id = RackId::from(42u32);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "rack-42");
    }

    #[test]
    fn bbu_id_components() {
        let id = BbuId::new(RackId::new(1), 2);
        assert_eq!(id.rack(), RackId::new(1));
        assert_eq!(id.slot(), 2);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(RackId::new(1));
        set.insert(RackId::new(1));
        assert_eq!(set.len(), 1);
        assert!(RackId::new(1) < RackId::new(2));
        assert!(BbuId::new(RackId::new(1), 0) < BbuId::new(RackId::new(1), 1));
        assert!(DeviceId::new(3) < DeviceId::new(4));
    }

    #[test]
    fn device_display() {
        assert_eq!(format!("{}", DeviceId::new(9)), "dev-9");
    }
}
