//! Typed physical quantities, identifiers, and service priorities used across the
//! `recharge` workspace.
//!
//! The data-center battery-charging domain mixes many physically distinct `f64`
//! quantities: wall power in watts, battery energy in joules, charging current in
//! amperes, depth of discharge as a fraction, and simulated time in seconds. This
//! crate gives each of them a dedicated newtype so that the compiler rejects unit
//! confusion (multiplying volts by volts, comparing watts to amperes, and so on),
//! following the newtype guidance of the Rust API guidelines (C-NEWTYPE).
//!
//! # Examples
//!
//! ```
//! use recharge_units::{Amperes, Volts, Watts, Seconds};
//!
//! // Ohm's-law style arithmetic is expressed through operator overloads that
//! // produce the physically correct result type.
//! let charging_power: Watts = Volts::new(52.0) * Amperes::new(5.0);
//! assert_eq!(charging_power, Watts::new(260.0));
//!
//! // Power integrated over time yields energy.
//! let energy = charging_power * Seconds::from_minutes(1.0);
//! assert!((energy.as_joules() - 15_600.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod electrical;
mod energy;
mod fraction;
mod ids;
mod macros;
mod power;
mod priority;
mod time;

pub use electrical::{AmpereHours, Amperes, Coulombs, Ohms, Volts};
pub use energy::Joules;
pub use fraction::{Dod, Fraction, Soc};
pub use ids::{BbuId, DeviceId, RackId};
pub use power::Watts;
pub use priority::{ParsePriorityError, Priority};
pub use time::{Seconds, SimTime};
