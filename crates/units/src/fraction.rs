//! Dimensionless fractions: state of charge and depth of discharge.

use serde::{Deserialize, Serialize};

/// A dimensionless fraction guaranteed to lie in `[0, 1]`.
///
/// Used as the common representation behind [`Soc`] and [`Dod`]. Construction
/// clamps out-of-range inputs rather than failing, because fractions in this
/// workspace are the result of physical integration where tiny numerical
/// overshoot is expected; NaN is rejected.
///
/// # Examples
///
/// ```
/// use recharge_units::Fraction;
///
/// assert_eq!(Fraction::new(0.25).value(), 0.25);
/// assert_eq!(Fraction::new(1.0000001).value(), 1.0); // clamped
/// assert_eq!(Fraction::new(-0.1).value(), 0.0); // clamped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Fraction(f64);

impl Fraction {
    /// The zero fraction.
    pub const ZERO: Fraction = Fraction(0.0);

    /// The unit fraction.
    pub const ONE: Fraction = Fraction(1.0);

    /// Creates a fraction, clamping the input into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN: a NaN fraction always indicates an upstream
    /// arithmetic bug and must not propagate silently.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "fraction must not be NaN");
        Fraction(value.clamp(0.0, 1.0))
    }

    /// The underlying value in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The complementary fraction `1 − self`.
    #[must_use]
    pub fn complement(self) -> Fraction {
        Fraction(1.0 - self.0)
    }

    /// The value expressed in percent (`0..=100`).
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Creates a fraction from a percentage (`0..=100`), clamping.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is NaN.
    #[must_use]
    pub fn from_percent(percent: f64) -> Self {
        Fraction::new(percent / 100.0)
    }
}

impl core::fmt::Display for Fraction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

/// Battery **state of charge**: the fraction of usable capacity currently held.
///
/// `Soc` and [`Dod`] are complementary views of the same physical state;
/// convert with [`Soc::to_dod`] / [`Dod::to_soc`].
///
/// # Examples
///
/// ```
/// use recharge_units::{Dod, Soc};
///
/// let soc = Soc::new(0.3);
/// assert_eq!(soc.to_dod(), Dod::new(0.7));
/// assert!(soc.to_dod().is_at_least_half());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Soc(Fraction);

impl Soc {
    /// A fully charged battery.
    pub const FULL: Soc = Soc(Fraction::ONE);

    /// A fully discharged battery.
    pub const EMPTY: Soc = Soc(Fraction::ZERO);

    /// Creates a state of charge from a fraction in `[0, 1]` (clamped).
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[must_use]
    pub fn new(value: f64) -> Self {
        Soc(Fraction::new(value))
    }

    /// The state of charge as a fraction in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0.value()
    }

    /// The complementary depth of discharge.
    #[must_use]
    pub fn to_dod(self) -> Dod {
        Dod(self.0.complement())
    }
}

impl Default for Soc {
    /// Batteries enter service fully charged.
    fn default() -> Self {
        Soc::FULL
    }
}

impl core::fmt::Display for Soc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SoC {}", self.0)
    }
}

/// Battery **depth of discharge**: the fraction of usable capacity that has
/// been drained.
///
/// The paper defines 100% DOD as a 3,300 W discharge sustained for 90 seconds
/// (§III-A, footnote 1). The variable charger's behaviour branches at 50% DOD
/// (Eq. 1), exposed here as [`Dod::is_at_least_half`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Dod(Fraction);

impl Dod {
    /// No discharge at all.
    pub const ZERO: Dod = Dod(Fraction::ZERO);

    /// A full discharge (3,300 W × 90 s in the paper's definition).
    pub const FULL: Dod = Dod(Fraction::ONE);

    /// Creates a depth of discharge from a fraction in `[0, 1]` (clamped).
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[must_use]
    pub fn new(value: f64) -> Self {
        Dod(Fraction::new(value))
    }

    /// Creates a depth of discharge from a percentage (`0..=100`, clamped).
    ///
    /// # Panics
    ///
    /// Panics if `percent` is NaN.
    #[must_use]
    pub fn from_percent(percent: f64) -> Self {
        Dod(Fraction::from_percent(percent))
    }

    /// The depth of discharge as a fraction in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0.value()
    }

    /// The depth of discharge in percent.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0.as_percent()
    }

    /// The complementary state of charge.
    #[must_use]
    pub fn to_soc(self) -> Soc {
        Soc(self.0.complement())
    }

    /// Whether the battery is at least 50% discharged — the branch point of the
    /// variable charger's current-selection formula (Eq. 1).
    #[must_use]
    pub fn is_at_least_half(self) -> bool {
        self.value() >= 0.5
    }
}

impl core::fmt::Display for Dod {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DOD {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_clamps() {
        assert_eq!(Fraction::new(2.0).value(), 1.0);
        assert_eq!(Fraction::new(-2.0).value(), 0.0);
        assert_eq!(Fraction::from_percent(150.0).value(), 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn fraction_rejects_nan() {
        let _ = Fraction::new(f64::NAN);
    }

    #[test]
    fn complement_round_trips() {
        let f = Fraction::new(0.3);
        assert!((f.complement().complement().value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn soc_dod_duality() {
        let dod = Dod::from_percent(70.0);
        assert!((dod.to_soc().value() - 0.3).abs() < 1e-12);
        assert_eq!(Soc::FULL.to_dod(), Dod::ZERO);
        assert_eq!(Soc::EMPTY.to_dod(), Dod::FULL);
        assert_eq!(Soc::default(), Soc::FULL);
    }

    #[test]
    fn half_discharge_branch() {
        assert!(Dod::new(0.5).is_at_least_half());
        assert!(Dod::new(0.7).is_at_least_half());
        assert!(!Dod::new(0.49).is_at_least_half());
    }

    #[test]
    fn percent_accessors() {
        assert_eq!(Dod::from_percent(25.0).as_percent(), 25.0);
        assert_eq!(Fraction::new(0.5).as_percent(), 50.0);
    }

    #[test]
    fn ordering() {
        assert!(Dod::new(0.2) < Dod::new(0.3));
        assert!(Soc::new(0.9) > Soc::new(0.1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Dod::new(0.25)), "DOD 25.0%");
        assert_eq!(format!("{}", Soc::new(0.25)), "SoC 25.0%");
    }
}
