//! Internal helper macro implementing the shared arithmetic surface of scalar
//! `f64` newtypes (addition and subtraction with itself, scaling by `f64`, and
//! ratio against itself).

/// Implements the common scalar-quantity trait surface for an `f64` newtype.
///
/// Generated impls: `Add`, `Sub`, `AddAssign`, `SubAssign`, `Neg`,
/// `Mul<f64>`, `f64 * T`, `Div<f64>`, `Div<T> -> f64`, `Sum`, and `Display`
/// with the given unit suffix.
macro_rules! scalar_newtype {
    ($ty:ident, $unit:literal) => {
        impl core::ops::Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }

        impl core::ops::AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Neg for $ty {
            type Output = $ty;
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$ty> for f64 {
            type Output = $ty;
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }

        impl core::ops::Div<$ty> for $ty {
            type Output = f64;
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty(0.0), |acc, x| acc + x)
            }
        }

        impl<'a> core::iter::Sum<&'a $ty> for $ty {
            fn sum<I: Iterator<Item = &'a $ty>>(iter: I) -> $ty {
                iter.fold($ty(0.0), |acc, x| acc + *x)
            }
        }

        impl core::fmt::Display for $ty {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl $ty {
            /// The zero quantity.
            pub const ZERO: $ty = $ty(0.0);

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: $ty) -> $ty {
                $ty(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: $ty) -> $ty {
                $ty(self.0.min(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: $ty, hi: $ty) -> $ty {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                $ty(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value of the quantity.
            #[must_use]
            pub fn abs(self) -> $ty {
                $ty(self.0.abs())
            }

            /// Whether the underlying value is finite (neither NaN nor infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }
    };
}

pub(crate) use scalar_newtype;
