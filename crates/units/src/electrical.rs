//! Electrical quantities: current, voltage, resistance, and charge.

use serde::{Deserialize, Serialize};

use crate::macros::scalar_newtype;
use crate::power::Watts;
use crate::time::Seconds;

/// Electric current in amperes.
///
/// Battery charging currents in the paper live in the hardware range
/// **1 A – 5 A**; the named constants [`Amperes::MIN_CHARGE`] and
/// [`Amperes::MAX_CHARGE`] capture that range.
///
/// # Examples
///
/// ```
/// use recharge_units::{Amperes, Volts};
///
/// let current = Amperes::new(5.0).clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE);
/// let power = Volts::new(52.0) * current;
/// assert_eq!(power.as_watts(), 260.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Amperes(pub(crate) f64);

scalar_newtype!(Amperes, "A");

impl Amperes {
    /// Minimum charging current the variable charger hardware supports (1 A).
    pub const MIN_CHARGE: Amperes = Amperes(1.0);

    /// Maximum charging current the variable charger hardware supports (5 A).
    pub const MAX_CHARGE: Amperes = Amperes(5.0);

    /// Creates a current value from amperes.
    #[must_use]
    pub const fn new(amps: f64) -> Self {
        Amperes(amps)
    }

    /// The value in amperes.
    #[must_use]
    pub const fn as_amps(self) -> f64 {
        self.0
    }

    /// The value in milliamperes.
    #[must_use]
    pub fn as_milliamps(self) -> f64 {
        self.0 * 1e3
    }
}

/// Electric potential in volts.
///
/// The BBU charger transitions from constant-current to constant-voltage mode at
/// 52 V and holds 52.5 V during the constant-voltage phase.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Volts(pub(crate) f64);

scalar_newtype!(Volts, "V");

impl Volts {
    /// Creates a potential value from volts.
    #[must_use]
    pub const fn new(volts: f64) -> Self {
        Volts(volts)
    }

    /// The value in volts.
    #[must_use]
    pub const fn as_volts(self) -> f64 {
        self.0
    }
}

/// Electrical resistance in ohms.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ohms(pub(crate) f64);

scalar_newtype!(Ohms, "Ω");

impl Ohms {
    /// Creates a resistance value from ohms.
    #[must_use]
    pub const fn new(ohms: f64) -> Self {
        Ohms(ohms)
    }

    /// The value in ohms.
    #[must_use]
    pub const fn as_ohms(self) -> f64 {
        self.0
    }
}

/// Electric charge in coulombs (ampere-seconds).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Coulombs(pub(crate) f64);

scalar_newtype!(Coulombs, "C");

impl Coulombs {
    /// Creates a charge value from coulombs.
    #[must_use]
    pub const fn new(coulombs: f64) -> Self {
        Coulombs(coulombs)
    }

    /// The value in coulombs.
    #[must_use]
    pub const fn as_coulombs(self) -> f64 {
        self.0
    }

    /// The value converted to ampere-hours.
    #[must_use]
    pub fn as_ampere_hours(self) -> AmpereHours {
        AmpereHours(self.0 / 3_600.0)
    }
}

/// Electric charge in ampere-hours, the customary battery-capacity unit.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AmpereHours(pub(crate) f64);

scalar_newtype!(AmpereHours, "Ah");

impl AmpereHours {
    /// Creates a charge value from ampere-hours.
    #[must_use]
    pub const fn new(ah: f64) -> Self {
        AmpereHours(ah)
    }

    /// The value in ampere-hours.
    #[must_use]
    pub const fn as_ampere_hours(self) -> f64 {
        self.0
    }

    /// The value converted to coulombs.
    #[must_use]
    pub fn as_coulombs(self) -> Coulombs {
        Coulombs(self.0 * 3_600.0)
    }
}

// --- Physical relations -----------------------------------------------------

impl core::ops::Mul<Amperes> for Volts {
    type Output = Watts;

    /// P = V · I.
    fn mul(self, rhs: Amperes) -> Watts {
        Watts::new(self.0 * rhs.0)
    }
}

impl core::ops::Mul<Volts> for Amperes {
    type Output = Watts;

    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl core::ops::Div<Ohms> for Volts {
    type Output = Amperes;

    /// I = V / R.
    fn div(self, rhs: Ohms) -> Amperes {
        Amperes(self.0 / rhs.0)
    }
}

impl core::ops::Mul<Ohms> for Amperes {
    type Output = Volts;

    /// V = I · R.
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl core::ops::Mul<Seconds> for Amperes {
    type Output = Coulombs;

    /// Q = I · t.
    fn mul(self, rhs: Seconds) -> Coulombs {
        Coulombs(self.0 * rhs.as_secs())
    }
}

impl core::ops::Div<Volts> for Watts {
    type Output = Amperes;

    /// I = P / V.
    fn div(self, rhs: Volts) -> Amperes {
        Amperes(self.as_watts() / rhs.0)
    }
}

impl core::ops::Div<Amperes> for Watts {
    type Output = Volts;

    /// V = P / I.
    fn div(self, rhs: Amperes) -> Volts {
        Volts(self.as_watts() / rhs.0)
    }
}

impl core::ops::Div<Amperes> for Coulombs {
    type Output = Seconds;

    /// t = Q / I.
    fn div(self, rhs: Amperes) -> Seconds {
        Seconds::new(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_relations() {
        let v = Volts::new(52.0);
        let r = Ohms::new(0.5);
        let i = v / r;
        assert_eq!(i, Amperes::new(104.0));
        assert_eq!(i * r, v);
    }

    #[test]
    fn power_relations() {
        let p = Volts::new(52.0) * Amperes::new(5.0);
        assert_eq!(p, Watts::new(260.0));
        assert_eq!(Amperes::new(5.0) * Volts::new(52.0), p);
        assert_eq!(p / Volts::new(52.0), Amperes::new(5.0));
        assert_eq!(p / Amperes::new(5.0), Volts::new(52.0));
    }

    #[test]
    fn charge_relations() {
        let q = Amperes::new(5.0) * Seconds::from_minutes(60.0);
        assert_eq!(q.as_ampere_hours(), AmpereHours::new(5.0));
        assert_eq!(AmpereHours::new(2.0).as_coulombs(), Coulombs::new(7_200.0));
        assert_eq!(
            Coulombs::new(3_600.0) / Amperes::new(1.0),
            Seconds::new(3_600.0)
        );
    }

    #[test]
    fn hardware_charge_range_constants() {
        assert_eq!(Amperes::MIN_CHARGE.as_amps(), 1.0);
        assert_eq!(Amperes::MAX_CHARGE.as_amps(), 5.0);
        assert_eq!(
            Amperes::new(7.0).clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE),
            Amperes::MAX_CHARGE
        );
    }

    #[test]
    fn milliamp_accessor() {
        assert_eq!(Amperes::new(0.4).as_milliamps(), 400.0);
    }
}
