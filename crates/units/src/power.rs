//! Electrical power quantities.

use serde::{Deserialize, Serialize};

use crate::energy::Joules;
use crate::macros::scalar_newtype;
use crate::time::Seconds;

/// Electrical power in watts.
///
/// `Watts` is the workhorse quantity of the workspace: rack IT load, battery
/// recharge power, breaker limits, and capping amounts are all expressed in it.
/// Kilowatt and megawatt constructors/accessors are provided because the paper
/// quotes rack-level numbers in kW and breaker-level numbers in MW.
///
/// # Examples
///
/// ```
/// use recharge_units::Watts;
///
/// let rack_limit = Watts::from_kilowatts(12.6);
/// let msb_limit = Watts::from_megawatts(2.5);
/// assert!((msb_limit / rack_limit - 198.4126984126984).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Watts(pub(crate) f64);

scalar_newtype!(Watts, "W");

impl Watts {
    /// Creates a power value from watts.
    #[must_use]
    pub const fn new(watts: f64) -> Self {
        Watts(watts)
    }

    /// Creates a power value from kilowatts.
    #[must_use]
    pub fn from_kilowatts(kw: f64) -> Self {
        Watts(kw * 1e3)
    }

    /// Creates a power value from megawatts.
    #[must_use]
    pub fn from_megawatts(mw: f64) -> Self {
        Watts(mw * 1e6)
    }

    /// The value in watts.
    #[must_use]
    pub const fn as_watts(self) -> f64 {
        self.0
    }

    /// The value in kilowatts.
    #[must_use]
    pub fn as_kilowatts(self) -> f64 {
        self.0 / 1e3
    }

    /// The value in megawatts.
    #[must_use]
    pub fn as_megawatts(self) -> f64 {
        self.0 / 1e6
    }
}

impl core::ops::Mul<Seconds> for Watts {
    type Output = Joules;

    /// Power sustained for a duration yields energy.
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.0 * rhs.as_secs())
    }
}

impl core::ops::Mul<Watts> for Seconds {
    type Output = Joules;

    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Watts::from_kilowatts(12.6).as_watts(), 12_600.0);
        assert_eq!(Watts::from_megawatts(2.5).as_kilowatts(), 2_500.0);
        assert_eq!(Watts::new(190_000.0).as_megawatts(), 0.19);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Watts::new(100.0);
        let b = Watts::new(40.0);
        assert_eq!(a + b, Watts::new(140.0));
        assert_eq!(a - b, Watts::new(60.0));
        assert_eq!(a * 2.0, Watts::new(200.0));
        assert_eq!(2.0 * a, Watts::new(200.0));
        assert_eq!(a / 4.0, Watts::new(25.0));
        assert_eq!(a / b, 2.5);
        assert_eq!(-a, Watts::new(-100.0));
    }

    #[test]
    fn assign_ops() {
        let mut p = Watts::new(1.0);
        p += Watts::new(2.0);
        p -= Watts::new(0.5);
        assert_eq!(p, Watts::new(2.5));
    }

    #[test]
    fn sum_over_iterator() {
        let racks = [Watts::new(1.0), Watts::new(2.0), Watts::new(3.0)];
        let total: Watts = racks.iter().sum();
        assert_eq!(total, Watts::new(6.0));
        let total_owned: Watts = racks.into_iter().sum();
        assert_eq!(total_owned, Watts::new(6.0));
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(260.0) * Seconds::from_minutes(20.0);
        assert_eq!(e, Joules::new(260.0 * 1200.0));
        let e2 = Seconds::from_minutes(20.0) * Watts::new(260.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn min_max_clamp() {
        let a = Watts::new(5.0);
        let b = Watts::new(9.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Watts::new(11.0).clamp(a, b), b);
        assert_eq!(Watts::new(-1.0).clamp(a, b), a);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Watts::new(1.5)), "1.500 W");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Watts::ZERO).is_empty());
    }
}
