//! Service priority of racks.

use serde::{Deserialize, Serialize};

/// The priority class of the services running on a rack (§IV of the paper).
///
/// Racks are categorized into three priorities based on their workload:
///
/// * [`Priority::P1`] — high; stateful workloads such as database servers that
///   want battery redundancy available essentially all the time.
/// * [`Priority::P2`] — normal.
/// * [`Priority::P3`] — low; stateless compute such as web tier.
///
/// The derived ordering places more-important priorities **first**
/// (`P1 < P2 < P3`), so sorting racks by `priority` ascending produces the
/// "highest priority first" order that Algorithm 1 requires.
///
/// # Examples
///
/// ```
/// use recharge_units::Priority;
///
/// let mut racks = vec![Priority::P3, Priority::P1, Priority::P2];
/// racks.sort();
/// assert_eq!(racks, vec![Priority::P1, Priority::P2, Priority::P3]);
/// assert!(Priority::P1.outranks(Priority::P2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// High priority (stateful services, e.g. databases).
    P1,
    /// Normal priority.
    #[default]
    P2,
    /// Low priority (stateless services, e.g. web tier).
    P3,
}

impl Priority {
    /// All priorities, from most to least important.
    pub const ALL: [Priority; 3] = [Priority::P1, Priority::P2, Priority::P3];

    /// Numeric rank: 1 for P1, 2 for P2, 3 for P3. Lower rank = more important.
    #[must_use]
    pub const fn rank(self) -> u8 {
        match self {
            Priority::P1 => 1,
            Priority::P2 => 2,
            Priority::P3 => 3,
        }
    }

    /// Whether `self` is strictly more important than `other`.
    #[must_use]
    pub const fn outranks(self, other: Priority) -> bool {
        self.rank() < other.rank()
    }

    /// Parses `"P1"`, `"P2"`, or `"P3"` (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParsePriorityError`] if the input is not one of the three
    /// priority names.
    pub fn parse(s: &str) -> Result<Self, ParsePriorityError> {
        match s.trim().to_ascii_uppercase().as_str() {
            "P1" => Ok(Priority::P1),
            "P2" => Ok(Priority::P2),
            "P3" => Ok(Priority::P3),
            _ => Err(ParsePriorityError),
        }
    }
}

impl core::fmt::Display for Priority {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Priority::P1 => "P1",
            Priority::P2 => "P2",
            Priority::P3 => "P3",
        };
        f.write_str(name)
    }
}

impl core::str::FromStr for Priority {
    type Err = ParsePriorityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Priority::parse(s)
    }
}

/// Error returned when parsing a [`Priority`] from a string fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsePriorityError;

impl core::fmt::Display for ParsePriorityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("priority was not one of `P1`, `P2`, `P3`")
    }
}

impl std::error::Error for ParsePriorityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_importance_first() {
        assert!(Priority::P1 < Priority::P2);
        assert!(Priority::P2 < Priority::P3);
        assert!(Priority::P1.outranks(Priority::P3));
        assert!(!Priority::P3.outranks(Priority::P3));
    }

    #[test]
    fn rank_values() {
        assert_eq!(Priority::P1.rank(), 1);
        assert_eq!(Priority::P2.rank(), 2);
        assert_eq!(Priority::P3.rank(), 3);
    }

    #[test]
    fn parse_round_trip() {
        for p in Priority::ALL {
            let parsed: Priority = p.to_string().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert_eq!("p2".parse::<Priority>().unwrap(), Priority::P2);
        assert!(" bogus ".parse::<Priority>().is_err());
    }

    #[test]
    fn default_is_normal_priority() {
        assert_eq!(Priority::default(), Priority::P2);
    }

    #[test]
    fn error_display() {
        let err = "x".parse::<Priority>().unwrap_err();
        assert!(err.to_string().contains("P1"));
    }
}
