//! Simulated time: durations and instants.
//!
//! The simulators in this workspace integrate physics and replay traces over
//! spans from seconds (open transitions) to 10⁵ years (Monte-Carlo reliability
//! runs), so time is represented as `f64` seconds rather than `std::time`
//! types, which makes the arithmetic with power and charge direct.

use serde::{Deserialize, Serialize};

use crate::macros::scalar_newtype;

/// A span of simulated time, in seconds.
///
/// # Examples
///
/// ```
/// use recharge_units::Seconds;
///
/// let open_transition = Seconds::new(45.0);
/// let charge_sla = Seconds::from_minutes(30.0);
/// assert!(open_transition < charge_sla);
/// assert_eq!(charge_sla.as_minutes(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Seconds(pub(crate) f64);

scalar_newtype!(Seconds, "s");

impl Seconds {
    /// Creates a duration from seconds.
    #[must_use]
    pub const fn new(secs: f64) -> Self {
        Seconds(secs)
    }

    /// Creates a duration from minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Seconds(minutes * 60.0)
    }

    /// Creates a duration from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Seconds(hours * 3_600.0)
    }

    /// Creates a duration from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Seconds(days * 86_400.0)
    }

    /// Creates a duration from (365-day) years.
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        Seconds(years * 365.0 * 86_400.0)
    }

    /// The value in seconds.
    #[must_use]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in minutes.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The value in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3_600.0
    }

    /// The value in (365-day) years.
    #[must_use]
    pub fn as_years(self) -> f64 {
        self.0 / (365.0 * 86_400.0)
    }
}

/// An absolute instant on the simulation clock, as seconds since the start of
/// the run.
///
/// `SimTime` and [`Seconds`] are kept distinct so that instants cannot be
/// accidentally added together; only `SimTime ± Seconds` and
/// `SimTime − SimTime → Seconds` are provided.
///
/// # Examples
///
/// ```
/// use recharge_units::{Seconds, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + Seconds::from_minutes(30.0);
/// assert_eq!(later - start, Seconds::from_minutes(30.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant from seconds since simulation start.
    #[must_use]
    pub const fn from_secs(secs: f64) -> Self {
        SimTime(secs)
    }

    /// Seconds since simulation start.
    #[must_use]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Elapsed time since `earlier`.
    ///
    /// Equivalent to `self - earlier` but reads better at call sites that want
    /// to emphasize direction.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Seconds {
        Seconds(self.0 - earlier.0)
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl core::ops::Add<Seconds> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Seconds) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<Seconds> for SimTime {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub<Seconds> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Seconds) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl core::ops::Sub<SimTime> for SimTime {
    type Output = Seconds;
    fn sub(self, rhs: SimTime) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(Seconds::from_minutes(1.5).as_secs(), 90.0);
        assert_eq!(Seconds::from_hours(2.0).as_minutes(), 120.0);
        assert_eq!(Seconds::from_days(1.0).as_hours(), 24.0);
        assert_eq!(Seconds::from_years(1.0).as_secs(), 31_536_000.0);
        assert!((Seconds::from_years(2.0).as_years() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::from_secs(100.0);
        let t1 = t0 + Seconds::new(20.0);
        assert_eq!(t1.as_secs(), 120.0);
        assert_eq!(t1 - t0, Seconds::new(20.0));
        assert_eq!(t1.since(t0), Seconds::new(20.0));
        assert_eq!(t1 - Seconds::new(120.0), SimTime::ZERO);
    }

    #[test]
    fn instant_add_assign() {
        let mut t = SimTime::ZERO;
        t += Seconds::new(3.0);
        assert_eq!(t.as_secs(), 3.0);
    }

    #[test]
    fn instant_min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Seconds::new(1.0)), "1.000 s");
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "t=2.000s");
    }
}
