//! Property-based tests for the arithmetic laws of the unit newtypes.

use proptest::prelude::*;
use recharge_units::{Amperes, Dod, Joules, Ohms, Seconds, SimTime, Soc, Volts, Watts};

fn finite() -> impl Strategy<Value = f64> {
    -1e9..1e9f64
}

fn positive() -> impl Strategy<Value = f64> {
    1e-6..1e9f64
}

proptest! {
    #[test]
    fn watts_addition_commutes(a in finite(), b in finite()) {
        prop_assert_eq!(Watts::new(a) + Watts::new(b), Watts::new(b) + Watts::new(a));
    }

    #[test]
    fn watts_sub_is_add_of_negation(a in finite(), b in finite()) {
        let lhs = Watts::new(a) - Watts::new(b);
        let rhs = Watts::new(a) + (-Watts::new(b));
        prop_assert!((lhs - rhs).abs() <= Watts::new(1e-9));
    }

    #[test]
    fn kilowatt_round_trip(kw in finite()) {
        let w = Watts::from_kilowatts(kw);
        prop_assert!((w.as_kilowatts() - kw).abs() <= kw.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn power_time_energy_consistency(p in positive(), t in positive()) {
        let e = Watts::new(p) * Seconds::new(t);
        let back = e / Seconds::new(t);
        prop_assert!((back.as_watts() - p).abs() <= p * 1e-9);
        let t_back = e / Watts::new(p);
        prop_assert!((t_back.as_secs() - t).abs() <= t * 1e-9);
    }

    #[test]
    fn ohms_law_round_trip(v in positive(), r in positive()) {
        let i = Volts::new(v) / Ohms::new(r);
        let v_back = i * Ohms::new(r);
        prop_assert!((v_back.as_volts() - v).abs() <= v * 1e-9);
    }

    #[test]
    fn electrical_power_consistency(v in positive(), i in positive()) {
        let p = Volts::new(v) * Amperes::new(i);
        prop_assert!((p.as_watts() - v * i).abs() <= (v * i).abs() * 1e-12);
        let i_back = p / Volts::new(v);
        prop_assert!((i_back.as_amps() - i).abs() <= i * 1e-9);
    }

    #[test]
    fn soc_dod_complement_round_trip(x in 0.0..=1.0f64) {
        let soc = Soc::new(x);
        let back = soc.to_dod().to_soc();
        prop_assert!((back.value() - x).abs() <= 1e-12);
    }

    #[test]
    fn dod_is_clamped(x in finite()) {
        let d = Dod::new(x);
        prop_assert!((0.0..=1.0).contains(&d.value()));
    }

    #[test]
    fn simtime_elapsed_consistency(start in finite(), dt in 0.0..1e9f64) {
        let t0 = SimTime::from_secs(start);
        let t1 = t0 + Seconds::new(dt);
        prop_assert!(((t1 - t0).as_secs() - dt).abs() <= dt.abs() * 1e-12 + 1e-6);
        prop_assert!(t1.since(t0).as_secs() >= 0.0);
    }

    #[test]
    fn clamp_stays_in_bounds(x in finite(), lo in -100.0..0.0f64, hi in 0.0..100.0f64) {
        let c = Watts::new(x).clamp(Watts::new(lo), Watts::new(hi));
        prop_assert!(c >= Watts::new(lo) && c <= Watts::new(hi));
    }

    #[test]
    fn joules_sum_matches_fold(values in proptest::collection::vec(-1e6..1e6f64, 0..20)) {
        let sum: Joules = values.iter().map(|&v| Joules::new(v)).sum();
        let fold = values.iter().fold(0.0, |a, b| a + b);
        prop_assert!((sum.as_joules() - fold).abs() <= 1e-6);
    }
}
