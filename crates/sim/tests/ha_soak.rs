//! Kill-the-leader chaos soak over the hot-standby control plane: the
//! headline controller-HA claims.
//!
//! 1. **Fault-free equivalence**: with no process faults injected, a full
//!    scenario run over a 3-replica [`ControllerSet`] — with the telemetry
//!    registry *and* the flight recorder enabled — produces **bit-identical**
//!    `RunMetrics` to the plain single-controller run with all telemetry
//!    off. Election, snapshotting, and journaling never touch the bus.
//! 2. **Kill the leader mid-recharge**: crash the elected leader deep inside
//!    the recharge period. A standby must take over within one lease width
//!    (plus one control interval of detection slack), the run must end with
//!    zero breaker trips and every Table II SLA met, and the flight recorder
//!    must journal the full failover timeline.
//!
//! `quick_kill_the_leader_soak` (sparse control ticks) runs in every test
//! pass; the per-tick-control full profile is `#[ignore]`d and run by the
//! `ha-soak` CI job.

use std::sync::{Mutex, MutexGuard, PoisonError};

use recharge_dynamo::Strategy;
use recharge_ha::{ControllerSet, HaConfig};
use recharge_net::ProcessFault;
use recharge_sim::{DischargeLevel, RunMetrics, Scenario};
use recharge_telemetry::{FlightKind, ReasonCode};
use recharge_units::{Seconds, Watts};

/// Serializes the soaks: they flip the global telemetry flags and drain the
/// global flight-recorder rings.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn scenario() -> Scenario {
    Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(190.0))
        .strategy(Strategy::PriorityAware)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5))
}

fn ha_config() -> HaConfig {
    HaConfig::default().seed(0x0000_4A5E)
}

/// The deterministic tick-0 election winner for [`ha_config`], probed on a
/// throwaway set (the draw depends only on the seed, never on the bus), so
/// the chaos schedule can aim its crash at the replica that actually leads.
fn elected_leader() -> u32 {
    use recharge_dynamo::{ControllerConfig, InMemoryBus, SimRackAgent};
    use recharge_units::{DeviceId, Priority, RackId, SimTime};
    let agents = vec![SimRackAgent::builder(RackId::new(0), Priority::P1)
        .offered_load(Watts::from_kilowatts(6.0))
        .build()];
    let mut bus = InMemoryBus::new(agents);
    let mut probe = ControllerSet::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
        ha_config(),
    );
    probe.tick(0, SimTime::ZERO, &mut bus);
    probe.leader().expect("probe election must succeed")
}

fn assert_clean(metrics: &RunMetrics) {
    assert!(
        !metrics.breaker_tripped,
        "breaker tripped under controller chaos (max draw {})",
        metrics.max_total_draw
    );
    for outcome in &metrics.rack_outcomes {
        assert!(
            outcome.sla_met,
            "rack {} ({:?}) missed its SLA across the failover: charged in {:?}",
            outcome.rack, outcome.priority, outcome.charge_duration
        );
    }
}

/// Runs the kill-the-leader scenario and asserts the takeover window from
/// the journaled failover timeline. Callers hold [`telemetry_lock`].
fn kill_the_leader(control_every: usize) -> RunMetrics {
    recharge_telemetry::set_enabled(true);
    recharge_telemetry::set_recorder_enabled(true);
    let _ = recharge_telemetry::take_flight_events();
    let failovers = recharge_telemetry::counter("ha.failovers_total");
    let failovers_before = failovers.value();

    // Crash the leader at tick 600: one warmup minute plus the open
    // transition puts that deep inside the recharge period for the Low
    // discharge profile, with charging coordination in full swing.
    let crash_tick = 600u64;
    let ha = ha_config().fault(ProcessFault::CrashController {
        controller: elected_leader(),
        at_tick: crash_tick,
    });
    let lease = ha.lease_ticks;
    let metrics = scenario().ha(ha).control_every(control_every).build().run();

    recharge_telemetry::set_recorder_enabled(false);
    recharge_telemetry::set_enabled(false);
    let events = recharge_telemetry::take_flight_events();

    // The chaos actually bit, and exactly once.
    assert_eq!(failovers.value() - failovers_before, 1, "one failover");

    // The journaled timeline: leader lost to the crash, a standby elected,
    // takeover completed within one lease width plus one control interval
    // (the standby can only detect expiry at its next control tick).
    let lost = events
        .iter()
        .find(|e| e.kind == FlightKind::LeaderLost && e.reason == ReasonCode::HaCrashed)
        .expect("crash must journal LeaderLost");
    let takeover = events
        .iter()
        .find(|e| e.kind == FlightKind::TakeoverComplete)
        .expect("a standby must complete takeover");
    let elapsed_ticks = takeover.at() - lost.at(); // 1 s ticks
    let slack = lease + control_every as u64;
    assert!(
        elapsed_ticks > 0.0 && elapsed_ticks <= slack as f64,
        "takeover took {elapsed_ticks} ticks; budget is lease {lease} + interval {control_every}"
    );
    assert_eq!(takeover.v1, 2, "takeover lands in term 2");
    assert!(
        events
            .iter()
            .any(|e| e.kind == FlightKind::SnapshotRestored),
        "takeover must restore the replicated brain snapshot"
    );
    assert!(
        events
            .iter()
            .any(|e| e.kind == FlightKind::SnapshotTaken && e.v0 == 2),
        "the new leader must resume snapshot replication in its own term"
    );

    assert_clean(&metrics);
    metrics
}

/// Fault-free HA is bit-identical to the single-controller run, with the
/// whole observability plane (registry + flight recorder) enabled on the HA
/// side only — journaling is provably free of simulation side effects.
#[test]
fn fault_free_ha_run_is_bit_identical_to_single_controller() {
    let _lock = telemetry_lock();
    recharge_telemetry::set_enabled(false);
    recharge_telemetry::set_recorder_enabled(false);
    let single = scenario().control_every(5).build().run();

    recharge_telemetry::set_enabled(true);
    recharge_telemetry::set_recorder_enabled(true);
    let _ = recharge_telemetry::take_flight_events();
    let ha = scenario().ha(ha_config()).control_every(5).build().run();
    recharge_telemetry::set_recorder_enabled(false);
    recharge_telemetry::set_enabled(false);
    let events = recharge_telemetry::take_flight_events();

    assert_eq!(single, ha, "HA run must be bit-identical when fault-free");
    // One election, no failovers, snapshots on cadence.
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == FlightKind::LeaderElected)
            .count(),
        1
    );
    assert!(!events.iter().any(|e| e.kind == FlightKind::LeaderLost));
    assert!(events.iter().any(|e| e.kind == FlightKind::SnapshotTaken));
}

#[test]
fn quick_kill_the_leader_soak() {
    let _lock = telemetry_lock();
    kill_the_leader(5);
}

/// The full profile: per-tick control traffic across the failover. Slower
/// (every tick is a full control round); run by the `ha-soak` CI job or
/// `cargo test -p recharge-sim --test ha_soak -- --ignored`.
#[test]
#[ignore = "full per-tick-control soak; run by the ha-soak CI job"]
fn full_kill_the_leader_soak() {
    let _lock = telemetry_lock();
    kill_the_leader(1);
}
