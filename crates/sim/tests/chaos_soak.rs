//! Seeded chaos soak over the RPC mesh: the headline degraded-mode claim.
//!
//! With 10 % request drops, tail delays, duplicated frames, and a 60-tick
//! total controller partition injected into the link, a full scenario run
//! must still end with **zero breaker trips** and **every reachable rack
//! meeting its Table II SLA** — drops are absorbed by the bounded retries,
//! and the partition only pushes racks into the standalone variable-charger
//! fallback until the controller heals and re-coordinates them.
//!
//! `quick_chaos_soak` (drops and a partition, no injected latency, sparse
//! control ticks) runs in every test pass; the full profile — per-attempt
//! delay injection at a 50 ms p99 and per-tick control — is `#[ignore]`d and
//! run by the `net-soak` CI job.

use std::sync::{Mutex, MutexGuard, PoisonError};

use recharge_dynamo::Strategy;
use recharge_net::{FaultPlan, Partition, RpcMeshConfig};
use recharge_sim::{DischargeLevel, RunMetrics, Scenario};
use recharge_units::{Seconds, Watts};

/// Serializes the soaks: both flip the global telemetry flag and read the
/// global counter registry.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn scenario() -> Scenario {
    Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(190.0))
        .strategy(Strategy::PriorityAware)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5))
}

/// The run starts one warmup minute before the open transition, so step 600
/// is deep inside the recharge period for the Low discharge profile: the
/// 60-tick window partitions the controller away mid-charge and expires
/// every rack's coordination lease.
fn partition_mid_recharge() -> Vec<Partition> {
    vec![Partition::all(600, 660)]
}

fn soak(plan: FaultPlan, control_every: usize) -> RunMetrics {
    soak_mesh(RpcMeshConfig::with_fault(plan), control_every)
}

/// Callers hold [`telemetry_lock`] for the whole test, so counter deltas
/// observed around this run cannot race a concurrent soak.
fn soak_mesh(mesh: RpcMeshConfig, control_every: usize) -> RunMetrics {
    recharge_telemetry::set_enabled(true);
    let retries = recharge_telemetry::counter("net.rpc_retries");
    let fallbacks = recharge_telemetry::counter("net.standalone_fallbacks");
    let rejoins = recharge_telemetry::counter("net.rejoins");
    let (retries_before, fallbacks_before, rejoins_before) =
        (retries.value(), fallbacks.value(), rejoins.value());

    let metrics = scenario()
        .rpc(mesh)
        .control_every(control_every)
        .build()
        .run();
    recharge_telemetry::set_enabled(false);

    // The chaos actually bit: drops forced retries, the partition expired
    // leases into standalone fallback, and the heal re-coordinated racks.
    assert!(retries.value() > retries_before, "no retries injected");
    assert!(
        fallbacks.value() > fallbacks_before,
        "partition never pushed a rack standalone"
    );
    assert!(
        rejoins.value() > rejoins_before,
        "no rack rejoined after the heal"
    );

    // The degraded-mode guarantees: no breaker trip, every rack (all are
    // reachable once the partition lifts) still meets its charging SLA.
    assert!(
        !metrics.breaker_tripped,
        "breaker tripped under chaos (max draw {})",
        metrics.max_total_draw
    );
    for outcome in &metrics.rack_outcomes {
        assert!(
            outcome.sla_met,
            "rack {} ({:?}) missed its SLA under chaos: charged in {:?}",
            outcome.rack, outcome.priority, outcome.charge_duration
        );
    }
    metrics
}

/// The sharded-mesh degraded-mode claim: partition exactly one shard of a
/// two-shard mesh mid-recharge (plus fleet-wide drops) and only *that*
/// shard's racks fall back to standalone and later rejoin — the other shard
/// stays coordinated throughout — while the run still ends with zero breaker
/// trips and every Table II SLA met.
#[test]
fn sharded_single_shard_partition_soak() {
    use recharge_units::RackId;

    let _lock = telemetry_lock();
    // 7 racks under ShardPlan::Count(2) partition as [0,1,2] / [3,4,5,6];
    // the rack-scoped window projects to a total partition of shard 0 and is
    // dropped entirely from shard 1's plan.
    let shard0: Vec<RackId> = (0..3).map(RackId::new).collect();
    let plan = FaultPlan {
        seed: 0x000C_4A05,
        drop_request: 0.10,
        drop_response: 0.05,
        duplicate: 0.05,
        partitions: vec![Partition::racks(600, 660, shard0)],
        ..FaultPlan::default()
    };

    let fallbacks = recharge_telemetry::counter("net.standalone_fallbacks");
    let rejoins = recharge_telemetry::counter("net.rejoins");
    let (fallbacks_before, rejoins_before) = (fallbacks.value(), rejoins.value());

    soak_mesh(RpcMeshConfig::shard_count(2).faulted(plan), 5);

    // Exactly the partitioned shard's three racks fell back and rejoined;
    // shard 1 never missed a lease renewal, so no other rack transitioned.
    // (Every rack starts standalone, so the rejoin counter records the seven
    // initial joins plus the three post-heal rejoins.)
    assert_eq!(
        fallbacks.value() - fallbacks_before,
        3,
        "only shard 0's racks may fall back"
    );
    assert_eq!(
        rejoins.value() - rejoins_before,
        7 + 3,
        "all of shard 0's racks must rejoin after the heal"
    );
}

#[test]
fn quick_chaos_soak() {
    let _lock = telemetry_lock();
    let plan = FaultPlan {
        seed: 0x000C_4A05,
        drop_request: 0.10,
        drop_response: 0.05,
        duplicate: 0.05,
        partitions: partition_mid_recharge(),
        ..FaultPlan::default()
    };
    soak(plan, 5);
}

/// The full profile from the issue: 10 % drops, injected delays with a 50 ms
/// p99, and one 60-tick total partition, under per-tick control traffic.
/// Minutes of wall clock (the delays are real sleeps) — run via the
/// `net-soak` CI job or `cargo test -p recharge-sim --test chaos_soak --
/// --ignored`.
#[test]
#[ignore = "full soak with real injected latency; run by the net-soak CI job"]
fn full_chaos_soak() {
    let _lock = telemetry_lock();
    soak(
        FaultPlan::chaos(0x000C_4A05, 0.10, partition_mid_recharge()),
        1,
    );
}
