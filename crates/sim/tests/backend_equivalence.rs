//! Every fleet backend must produce bit-identical [`RunMetrics`].
//!
//! The matrix covers {serial, sharded per-tick, sharded batched,
//! struct-of-arrays serial, struct-of-arrays sharded, event-driven,
//! event-sharded, RPC mesh
//! over loopback TCP, sharded RPC mesh at 1/2/4 shards} × {telemetry off,
//! telemetry on} ×
//! {controller every tick, controller every 5 ticks}, plus a flight-recorder
//! on/off leg: the recorder journals every decision but must never feed back
//! into the result.
//! Batching, sharding, and the wire may only change who executes the
//! sub-step schedule and what transport the controller's reads and commands
//! cross — never a single bit of the result. The sharded mesh additionally
//! batches reads (`ReadAllReadings` snapshot) and defers commands
//! (`ApplyCommandBatch` flushed at the next schedule boundary), and must
//! *still* be bit-identical: nothing observes agent state between a
//! controller tick and the next schedule's first sub-step.
//! For the mesh this is the headline clean-link guarantee: the framed codec
//! carries every `f64` as its exact bit pattern, the lease never expires
//! under a healthy link, and the controller issues the identical call
//! sequence, so `RunMetrics` over [`RpcBus`](recharge_net::RpcBus) equals
//! the in-memory result exactly.
//!
//! This is a single-test integration binary because it toggles the global
//! telemetry enable flag — state no other concurrently running test may
//! share. The in-process shard count defaults to 2 and can be raised via the
//! `RECHARGE_TEST_SHARDS` environment variable (CI runs the matrix at 4 to
//! exercise real multi-core interleavings); the sharded-mesh loop defaults to
//! {1, 2, 4} servers and can be pinned to a single count via
//! `RECHARGE_MESH_SHARDS` (the `net-soak-sharded` CI matrix runs 2 and 4).

use recharge_dynamo::{FleetBackendKind, Strategy};
use recharge_net::RpcMeshConfig;
use recharge_sim::{DischargeLevel, RunMetrics, Scenario};
use recharge_units::{Seconds, Watts};

fn scenario() -> Scenario {
    Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(190.0))
        .strategy(Strategy::PriorityAware)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5))
}

fn test_shards() -> usize {
    std::env::var("RECHARGE_TEST_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

fn mesh_shard_counts() -> Vec<usize> {
    match std::env::var("RECHARGE_MESH_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(n) => vec![n],
        None => vec![1, 2, 4],
    }
}

fn run_matrix_row(backend: FleetBackendKind, control_every: usize) -> RunMetrics {
    scenario()
        .backend(backend)
        .control_every(control_every)
        .build()
        .run()
}

#[test]
fn run_metrics_are_bit_identical_across_backends() {
    let shards = test_shards();
    let backends = [
        FleetBackendKind::Serial,
        FleetBackendKind::Sharded { shards },
        FleetBackendKind::ShardedBatched { shards },
        FleetBackendKind::Soa,
        FleetBackendKind::SoaSharded { shards },
        FleetBackendKind::Event,
        FleetBackendKind::EventSharded { shards },
    ];

    for telemetry in [false, true] {
        recharge_telemetry::set_enabled(telemetry);
        for control_every in [1, 5] {
            let reference = run_matrix_row(backends[0], control_every);
            for &backend in &backends[1..] {
                let metrics = run_matrix_row(backend, control_every);
                assert_eq!(
                    metrics, reference,
                    "{backend:?} diverged from serial \
                     (telemetry={telemetry}, control_every={control_every}, \
                     shards={shards})"
                );
            }
            // The RPC mesh over a clean loopback link: every controller read
            // and command crosses a real TCP socket, yet the metrics must be
            // bit-identical to the in-process run.
            let rpc = scenario()
                .rpc(RpcMeshConfig::default())
                .control_every(control_every)
                .build()
                .run();
            assert_eq!(
                rpc, reference,
                "rpc-tcp diverged from serial \
                 (telemetry={telemetry}, control_every={control_every})"
            );
            // The sharded mesh: per-shard servers, batched reads, buffered
            // command batches, concurrent fan-out — and still bit-identical
            // to both serial and the single-server mesh.
            for mesh_shards in mesh_shard_counts() {
                let sharded_rpc = scenario()
                    .rpc(RpcMeshConfig::shard_count(mesh_shards))
                    .control_every(control_every)
                    .build()
                    .run();
                assert_eq!(
                    sharded_rpc, reference,
                    "rpc-sharded diverged from serial \
                     (telemetry={telemetry}, control_every={control_every}, \
                     mesh_shards={mesh_shards})"
                );
                assert_eq!(
                    sharded_rpc, rpc,
                    "rpc-sharded diverged from single-server rpc \
                     (telemetry={telemetry}, control_every={control_every}, \
                     mesh_shards={mesh_shards})"
                );
            }
        }
    }
    recharge_telemetry::set_enabled(false);

    // The flight recorder must be a pure observer: turning it off may not
    // change a bit of the result. The reference row above ran with the
    // recorder at its default (on); rerun a backend spread with it off.
    let reference = run_matrix_row(FleetBackendKind::Serial, 5);
    recharge_telemetry::set_recorder_enabled(false);
    for backend in [
        FleetBackendKind::Serial,
        FleetBackendKind::ShardedBatched { shards },
        FleetBackendKind::Soa,
        FleetBackendKind::Event,
        FleetBackendKind::EventSharded { shards },
    ] {
        let metrics = run_matrix_row(backend, 5);
        assert_eq!(
            metrics, reference,
            "{backend:?} diverged with the flight recorder off"
        );
    }
    let rpc = scenario()
        .rpc(RpcMeshConfig::default())
        .control_every(5)
        .build()
        .run();
    assert_eq!(
        rpc, reference,
        "rpc-tcp diverged with the flight recorder off"
    );
    recharge_telemetry::set_recorder_enabled(true);
    let _ = recharge_telemetry::take_flight_events();
}
