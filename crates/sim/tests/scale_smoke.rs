//! Campus-scale smoke: the struct-of-arrays backend must reproduce the
//! object path's `RunMetrics` exactly, at sizes where only the SoA kernel is
//! practical to run routinely.
//!
//! The small matrix below runs on every `cargo test`; the 10k-rack case is
//! `#[ignore]`d and executed by the `scale-smoke` CI job with
//! `--release -- --ignored`.

use recharge_sim::{DischargeLevel, RunMetrics, Scenario};
use recharge_units::{Seconds, Watts};

fn small_scenario() -> Scenario {
    // ~200 racks, short horizon, postponing enabled so the SoA postpone and
    // override flag paths both see controller traffic.
    Scenario::row(70, 70, 60, 11)
        .power_limit(Watts::from_kilowatts(1_300.0))
        .discharge(DischargeLevel::Medium)
        .allow_postponing()
        .max_horizon(Seconds::new(600.0))
}

fn campus_scenario() -> Scenario {
    // 10k racks under a proportionally scaled breaker; a short horizon keeps
    // the object-path reference run affordable in CI.
    Scenario::row(2_900, 4_300, 2_800, 23)
        .power_limit(Watts::from_megawatts(65.0))
        .discharge(DischargeLevel::Low)
        .max_horizon(Seconds::new(300.0))
}

#[test]
fn soa_backends_match_serial_at_row_scale() {
    let reference: RunMetrics = small_scenario().build().run();
    let soa = small_scenario().soa().build().run();
    assert_eq!(soa, reference, "soa diverged from serial");
    let sharded = small_scenario().soa_sharded(3).build().run();
    assert_eq!(sharded, reference, "soa-sharded diverged from serial");
}

#[test]
#[ignore = "campus-scale; run by the scale-smoke CI job with --release -- --ignored"]
fn soa_backends_match_serial_at_campus_scale() {
    let reference: RunMetrics = campus_scenario().build().run();
    let soa = campus_scenario().soa().build().run();
    assert_eq!(soa, reference, "soa diverged from serial at 10k racks");
    let sharded = campus_scenario().soa_sharded(4).build().run();
    assert_eq!(
        sharded, reference,
        "soa-sharded diverged from serial at 10k racks"
    );
}
