//! Telemetry must be a pure observer: enabling it cannot change simulation
//! results by a single bit.
//!
//! This is a single-test integration binary because it toggles the global
//! telemetry enable flag and drains the global trace buffers — state no other
//! concurrently running test may share.

use recharge_dynamo::Strategy;
use recharge_sim::{DischargeLevel, Scenario};
use recharge_units::{Seconds, Watts};

fn scenario() -> Scenario {
    Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(190.0))
        .strategy(Strategy::PriorityAware)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5))
}

#[test]
fn run_metrics_are_bit_identical_with_telemetry_on_or_off() {
    // Baseline: telemetry off.
    recharge_telemetry::set_enabled(false);
    let off_serial = scenario().build().run();
    let off_sharded = scenario().shards(2).build().run();

    // Instrumented: telemetry on. Spans only read clocks, so every metric —
    // series samples, SLA outcomes, float power maxima — must match exactly.
    recharge_telemetry::set_enabled(true);
    recharge_telemetry::reset_metrics();
    let _ = recharge_telemetry::take_records();
    let on_serial = scenario().build().run();
    let on_sharded = scenario().shards(2).build().run();
    let records = recharge_telemetry::take_records();
    let snapshot = recharge_telemetry::snapshot();
    recharge_telemetry::set_enabled(false);

    assert_eq!(on_serial, off_serial, "telemetry perturbed the serial run");
    assert_eq!(
        on_sharded, off_sharded,
        "telemetry perturbed the sharded run"
    );
    assert_eq!(on_sharded, on_serial, "backends diverged");

    // The instrumented runs actually recorded the end-to-end span set.
    let span_names: std::collections::BTreeSet<&str> = records.iter().map(|r| r.name).collect();
    for expected in [
        "sim.run",
        "sim.tick",
        "controller.tick",
        "controller.gather",
        "controller.assign",
        "fleet.step_all",
        "shard.step",
        "shard.cache_refresh",
    ] {
        assert!(
            span_names.contains(expected),
            "missing span {expected:?}; saw {span_names:?}"
        );
    }

    // Counters saw both runs; the SLA gauge family was published.
    let ticks = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "sim.ticks")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    assert!(ticks > 0, "sim.ticks counter never incremented");
    for gauge in ["sim.sla_met.p1", "sim.sla_met.p2", "sim.sla_met.p3"] {
        let value = snapshot
            .gauges
            .iter()
            .find(|(name, _)| name == gauge)
            .map(|&(_, v)| v);
        match value {
            Some(v) => assert!((0.0..=1.0).contains(&v), "{gauge} = {v} out of range"),
            None => panic!("gauge {gauge} never published"),
        }
    }
}
