//! Dense vs event-driven bit-identity under randomized schedules.
//!
//! The event-driven backend's whole contract is "skip only what provably
//! does nothing". These properties randomize the inputs that could break
//! that claim — load-transition timings, input-power edge placement, and
//! command streams that postpone/override/cap racks at arbitrary boundaries
//! — and pin readings and `RunMetrics` bit-identical to [`SerialBackend`].
//! The sharded event backend rides along at a randomized shard count
//! (1/2/4 by default, pinned via `RECHARGE_TEST_SHARDS`), with the command
//! stream deliberately landing on racks owned by different shards
//! mid-batch. On failure, proptest shrinks to the minimal divergent
//! schedule.

use proptest::prelude::*;

use recharge_dynamo::{
    EventDrivenBackend, EventShardedBackend, FleetBackend, SerialBackend, SimRackAgent,
};
use recharge_sim::{DischargeLevel, Scenario};
use recharge_units::{Amperes, Priority, RackId, Seconds, Watts};

const FLEET: u32 = 6;

/// Shard counts the sharded event backend is exercised at: `[1, 2, 4]` by
/// default, or a single pinned count from `RECHARGE_TEST_SHARDS` (the CI
/// `event-sharded-smoke` job pins 4).
fn shard_counts() -> Vec<usize> {
    match std::env::var("RECHARGE_TEST_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(n) => vec![n],
        None => vec![1, 2, 4],
    }
}

fn agents() -> Vec<SimRackAgent> {
    (0..FLEET)
        .map(|i| {
            SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                .offered_load(Watts::from_kilowatts(6.0))
                .build()
        })
        .collect()
}

fn apply_command(bus: &mut dyn recharge_dynamo::AgentBus, op: u8, rack: u32, magnitude: f64) {
    let rack = RackId::new(rack % FLEET);
    match op % 6 {
        0 => bus.set_charge_override(rack, Amperes::new(magnitude)),
        1 => bus.clear_charge_override(rack),
        2 => bus.set_charge_postponed(rack, true),
        3 => bus.set_charge_postponed(rack, false),
        4 => bus.cap_servers(rack, Watts::from_kilowatts(magnitude)),
        _ => bus.uncap_servers(rack),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Backend-level lockstep: arbitrary power-edge placement, per-round
    /// load levels, and command streams must leave the event backend
    /// bit-identical to serial at every schedule boundary.
    #[test]
    fn readings_are_bit_identical_under_random_schedules(
        rounds in proptest::collection::vec(
            (
                0u8..6,                                          // command op
                0u32..FLEET,                                     // target rack
                0.5f64..8.0,                                     // magnitude
                proptest::collection::vec(proptest::bool::ANY, 1..10), // power schedule
                3.0f64..8.0,                                     // base load (kW)
            ),
            1..16,
        ),
        dt in 1.0f64..45.0,
        shard_sel in 0usize..64,
    ) {
        let counts = shard_counts();
        let shards = counts[shard_sel % counts.len()];
        let mut reference = SerialBackend::new(agents());
        let mut event = EventDrivenBackend::new(agents());
        let mut sharded = EventShardedBackend::new(agents(), shards);
        for (round, (op, rack, magnitude, schedule, base_kw)) in
            rounds.iter().enumerate()
        {
            // Successive rounds target different racks, so with 2 or 4
            // shards the command stream lands on different shards mid-run.
            for backend in
                [&mut reference as &mut dyn FleetBackend, &mut event, &mut sharded]
            {
                apply_command(backend.bus_mut(), *op, *rack, *magnitude);
            }
            let base = *base_kw;
            let load = move |rack: RackId, i: usize| {
                Watts::from_kilowatts(
                    base + 0.3 * f64::from(rack.index()) + 0.1 * i as f64,
                )
            };
            reference.step_schedule(Seconds::new(dt), schedule, &load);
            event.step_schedule(Seconds::new(dt), schedule, &load);
            sharded.step_schedule(Seconds::new(dt), schedule, &load);
            prop_assert_eq!(
                reference.readings(),
                FleetBackend::readings(&event),
                "round {} diverged (schedule {:?})",
                round,
                schedule
            );
            prop_assert_eq!(
                reference.readings(),
                FleetBackend::readings(&sharded),
                "round {} diverged on {} shards (schedule {:?})",
                round,
                shards,
                schedule
            );
        }
        // Accounting must cover the dense schedule exactly — globally for
        // both event backends, and shard-by-shard for the sharded one.
        let total: u64 = rounds.iter().map(|r| r.3.len() as u64).sum();
        prop_assert_eq!(
            event.substeps_executed() + event.substeps_skipped(),
            total * u64::from(FLEET)
        );
        prop_assert_eq!(sharded.substeps_executed(), event.substeps_executed());
        // Per shard, executed + skipped must equal the dense schedule times
        // the shard's slot count — i.e. a whole multiple of `total` — and
        // the shards together must cover the fleet exactly.
        let mut fleet_executed = 0;
        let mut fleet_covered = 0;
        for (shard, (executed, skipped)) in
            sharded.per_shard_substeps().into_iter().enumerate()
        {
            prop_assert_eq!(
                (executed + skipped) % total,
                0,
                "shard {} of {} accounting", shard, shards
            );
            fleet_executed += executed;
            fleet_covered += executed + skipped;
        }
        prop_assert_eq!(fleet_executed, sharded.substeps_executed());
        prop_assert_eq!(fleet_covered, total * u64::from(FLEET));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: whole-run `RunMetrics` (series, SLA outcomes, peaks)
    /// bit-identical between dense, event-driven, and sharded event-driven
    /// stepping across random fleets, discharge depths, control cadences,
    /// and shard counts.
    #[test]
    fn run_metrics_are_bit_identical_end_to_end(
        seed in 0u64..1_000,
        control_every in 1usize..6,
        dod in 0.1f64..0.8,
        warmup in 0.0f64..600.0,
        shard_sel in 0usize..64,
    ) {
        let counts = shard_counts();
        let shards = counts[shard_sel % counts.len()];
        let base = Scenario::row(3, 2, 2, seed)
            .power_limit(Watts::from_kilowatts(190.0))
            .discharge(DischargeLevel::Custom(dod))
            .warmup(Seconds::new(warmup))
            .control_every(control_every)
            .max_horizon(Seconds::from_hours(2.5));
        let dense = base.clone().build().run();
        let event = base.clone().event_driven().build().run();
        prop_assert_eq!(
            &event,
            &dense,
            "seed {} control_every {} dod {} warmup {}",
            seed,
            control_every,
            dod,
            warmup
        );
        let sharded = base.event_sharded(shards).build().run();
        prop_assert_eq!(
            &sharded,
            &dense,
            "event-sharded:{} seed {} control_every {} dod {} warmup {}",
            shards,
            seed,
            control_every,
            dod,
            warmup
        );
    }
}
