//! Dense vs event-driven bit-identity under randomized schedules.
//!
//! The event-driven backend's whole contract is "skip only what provably
//! does nothing". These properties randomize the inputs that could break
//! that claim — load-transition timings, input-power edge placement, and
//! command streams that postpone/override/cap racks at arbitrary boundaries
//! — and pin readings and `RunMetrics` bit-identical to [`SerialBackend`].
//! On failure, proptest shrinks to the minimal divergent schedule.

use proptest::prelude::*;

use recharge_dynamo::{EventDrivenBackend, FleetBackend, SerialBackend, SimRackAgent};
use recharge_sim::{DischargeLevel, Scenario};
use recharge_units::{Amperes, Priority, RackId, Seconds, Watts};

const FLEET: u32 = 6;

fn agents() -> Vec<SimRackAgent> {
    (0..FLEET)
        .map(|i| {
            SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                .offered_load(Watts::from_kilowatts(6.0))
                .build()
        })
        .collect()
}

fn apply_command(bus: &mut dyn recharge_dynamo::AgentBus, op: u8, rack: u32, magnitude: f64) {
    let rack = RackId::new(rack % FLEET);
    match op % 6 {
        0 => bus.set_charge_override(rack, Amperes::new(magnitude)),
        1 => bus.clear_charge_override(rack),
        2 => bus.set_charge_postponed(rack, true),
        3 => bus.set_charge_postponed(rack, false),
        4 => bus.cap_servers(rack, Watts::from_kilowatts(magnitude)),
        _ => bus.uncap_servers(rack),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Backend-level lockstep: arbitrary power-edge placement, per-round
    /// load levels, and command streams must leave the event backend
    /// bit-identical to serial at every schedule boundary.
    #[test]
    fn readings_are_bit_identical_under_random_schedules(
        rounds in proptest::collection::vec(
            (
                0u8..6,                                          // command op
                0u32..FLEET,                                     // target rack
                0.5f64..8.0,                                     // magnitude
                proptest::collection::vec(proptest::bool::ANY, 1..10), // power schedule
                3.0f64..8.0,                                     // base load (kW)
            ),
            1..16,
        ),
        dt in 1.0f64..45.0,
    ) {
        let mut reference = SerialBackend::new(agents());
        let mut event = EventDrivenBackend::new(agents());
        for (round, (op, rack, magnitude, schedule, base_kw)) in
            rounds.iter().enumerate()
        {
            for backend in [&mut reference as &mut dyn FleetBackend, &mut event] {
                apply_command(backend.bus_mut(), *op, *rack, *magnitude);
            }
            let base = *base_kw;
            let load = move |rack: RackId, i: usize| {
                Watts::from_kilowatts(
                    base + 0.3 * f64::from(rack.index()) + 0.1 * i as f64,
                )
            };
            reference.step_schedule(Seconds::new(dt), schedule, &load);
            event.step_schedule(Seconds::new(dt), schedule, &load);
            prop_assert_eq!(
                reference.readings(),
                FleetBackend::readings(&event),
                "round {} diverged (schedule {:?})",
                round,
                schedule
            );
        }
        // Accounting must cover the dense schedule exactly.
        let total: u64 = rounds.iter().map(|r| r.3.len() as u64).sum();
        prop_assert_eq!(
            event.substeps_executed() + event.substeps_skipped(),
            total * u64::from(FLEET)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: whole-run `RunMetrics` (series, SLA outcomes, peaks)
    /// bit-identical between dense and event-driven stepping across random
    /// fleets, discharge depths, and control cadences.
    #[test]
    fn run_metrics_are_bit_identical_end_to_end(
        seed in 0u64..1_000,
        control_every in 1usize..6,
        dod in 0.1f64..0.8,
        warmup in 0.0f64..600.0,
    ) {
        let base = Scenario::row(3, 2, 2, seed)
            .power_limit(Watts::from_kilowatts(190.0))
            .discharge(DischargeLevel::Custom(dod))
            .warmup(Seconds::new(warmup))
            .control_every(control_every)
            .max_horizon(Seconds::from_hours(2.5));
        let dense = base.clone().build().run();
        let event = base.event_driven().build().run();
        prop_assert_eq!(
            event,
            dense,
            "seed {} control_every {} dod {} warmup {}",
            seed,
            control_every,
            dod,
            warmup
        );
    }
}
