//! Forces a breaker trip with the flight recorder armed.
//!
//! Run with `RECHARGE_BLACKBOX=<path>` set and the first trigger writes the
//! black-box dump there; the CI `obs-smoke` job then replays it through
//! `recharge-ops explain`. Two phases share the (undrained) flight rings:
//!
//! 1. A priority-aware run under a tight limit — every control tick journals
//!    Algorithm 1 admit/throttle/postpone decisions with reason codes.
//! 2. An unmanaged original-charger run under an undersized limit — the
//!    recharge spike sustains > 30 % overdraw for 30 s and trips the breaker,
//!    firing the `breaker_trip` trigger (unless phase 1 already missed an
//!    SLA and fired `sla_miss`; the black box keeps the *first* incident).

use recharge_battery::ChargePolicy;
use recharge_dynamo::Strategy;
use recharge_sim::{DischargeLevel, Scenario};
use recharge_units::{Seconds, Watts};

fn small(strategy: Strategy, limit_kw: f64) -> Scenario {
    Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(limit_kw))
        .strategy(strategy)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5))
}

fn main() {
    recharge_telemetry::reset_blackbox_trigger();

    // Probe the fleet's IT load with ample power, then drain the probe's
    // journal so the dump starts at the interesting runs.
    let probe = small(Strategy::PriorityAware, 190.0).build().run();
    let it_peak = probe.it_load_before_ot;
    let _ = recharge_telemetry::take_flight_events();

    // Phase 1: decision-rich. Headroom above the all-floor fleet draw but far
    // below the recharge spike, so Algorithm 1 admits, throttles, and
    // postpones every control tick.
    let tight = small(Strategy::PriorityAware, it_peak.as_kilowatts() + 3.6)
        .build()
        .run();
    println!(
        "phase 1 (priority-aware, tight limit): tripped={} sla_met={}/{}",
        tight.breaker_tripped,
        tight.total_sla_met(),
        tight.rack_outcomes.len()
    );

    // Phase 2: the incident. No mitigation and a limit the spike overflows.
    let metrics = small(Strategy::Uncoordinated, it_peak.as_kilowatts() * 0.85)
        .charge_policy(ChargePolicy::Original)
        .build()
        .without_mitigation()
        .run();
    assert!(
        metrics.breaker_tripped,
        "demo failed to trip the breaker (max draw {})",
        metrics.max_total_draw
    );
    println!("phase 2 (unmanaged): breaker tripped");

    match recharge_telemetry::env_blackbox_path() {
        Some(path) => println!("black box dumped to {}", path.display()),
        None => println!("set RECHARGE_BLACKBOX=<path> to capture the dump"),
    }
}
