//! The tick loop: trace → agents → controller → breaker → metrics.

use std::collections::HashMap;

use recharge_core::{ChargeIndex, SlaTable};
use recharge_dynamo::{Controller, ControllerConfig, EventScheduler, FleetBackend, SimRackAgent};
use recharge_power::{Breaker, BreakerStatus};
use recharge_telemetry::{flight, tcounter, tgauge, tspan, FlightKind, ReasonCode};
use recharge_trace::{RackPowerTrace, SyntheticFleet};
use recharge_units::{DeviceId, Priority, RackId, Seconds, SimTime, Watts};

use crate::metrics::{RackSlaOutcome, RunMetrics, SeriesPoint};
use crate::scenario::Scenario;

/// A runnable fleet simulation built from a [`Scenario`].
///
/// The open transition is injected at the first diurnal peak of the trace
/// (§V-B: "we simulate open transitions at the first peak in the trace as
/// this is when the available power for battery recharging is most
/// constrained"), and the run continues until every battery is fully charged
/// or the horizon expires.
pub struct FleetSimulation {
    scenario: Scenario,
    fleet: SyntheticFleet,
    mitigated: bool,
}

struct ChargeTrack {
    started: SimTime,
    priority: Priority,
    dod: recharge_units::Dod,
}

/// What the simulation's own event queue carries. The control-tick cadence
/// is a scheduled event rather than a hardcoded loop so that, like the
/// fleet backends, the run's timeline flows through one deterministic
/// next-event scheduler (DESIGN.md §16). Each tick reschedules the next;
/// the per-sub-step times still come from the same repeated-addition
/// recurrence, so the float sequence is unchanged.
enum SimEvent {
    /// Run `control_every` physical sub-steps, then the controller.
    ControlTick,
}

impl FleetSimulation {
    pub(crate) fn new(scenario: Scenario, fleet: SyntheticFleet) -> Self {
        FleetSimulation {
            scenario,
            fleet,
            mitigated: true,
        }
    }

    /// Disables the Dynamo controller entirely — no coordination, no capping.
    /// Used to demonstrate what the recharge spike does to an unprotected
    /// breaker (it trips).
    #[must_use]
    pub fn without_mitigation(mut self) -> Self {
        self.mitigated = false;
        self
    }

    /// The scenario this simulation will run.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs the simulation to completion and reports its metrics.
    ///
    /// When the `RECHARGE_TRACE` environment variable names a file path,
    /// telemetry is enabled for the run and a Chrome-trace JSON of every
    /// recorded span and event is written there when the outermost traced
    /// scope ends — including by unwind, so an aborted run still flushes its
    /// partial per-thread span buffers into a valid trace file. When
    /// `RECHARGE_BLACKBOX` names a path, a breaker trip, the first SLA miss,
    /// or a panic dumps the flight-recorder journal there. Instrumentation
    /// only reads clocks — the returned [`RunMetrics`] are bit-identical
    /// with telemetry and the flight recorder on or off.
    #[must_use]
    pub fn run(self) -> RunMetrics {
        let _trace = recharge_telemetry::env_trace_scope();
        if recharge_telemetry::env_blackbox_path().is_some() {
            recharge_telemetry::install_panic_blackbox_hook();
        }
        let metrics = self.run_inner();
        metrics.publish_sla_gauges();
        metrics
    }

    fn run_inner(&self) -> RunMetrics {
        let _run_span = tspan!("sim.run", "sim");
        let sla = SlaTable::table2();
        let tick = self.scenario.tick;

        // Place the open transition at the first diurnal peak.
        let ot_start = self.fleet.diurnal().first_peak_after(SimTime::ZERO);
        let rack_count = self.fleet.fleet().len();
        let mean_rack_load = self.fleet.aggregate_power(ot_start) / rack_count as f64;
        let ot_duration = self.scenario.ot_duration_for(mean_rack_load);
        let ot_end = ot_start + ot_duration;

        // Build the agents.
        let agents: Vec<SimRackAgent> = self
            .fleet
            .fleet()
            .iter()
            .map(|entry| {
                SimRackAgent::builder(entry.rack, entry.priority)
                    .charge_policy(self.scenario.charge_policy)
                    .offered_load(self.fleet.rack_power(entry.rack, SimTime::ZERO))
                    .build()
            })
            .collect();
        // Where the agents execute — serial in-process, sharded threads,
        // sharded with batched submission, or hosted behind the RPC mesh —
        // is a pluggable [`FleetBackend`]; every backend runs the identical
        // sub-step schedule, so metrics are bit-identical across them (for
        // the mesh: under a clean link).
        let mut backend: Box<dyn FleetBackend> = match &self.scenario.rpc {
            Some(mesh) => {
                // A leaf spec travels along even when leaf hosting is off:
                // `spawn_mesh` only installs server-side controllers when the
                // config asks for them.
                let leaf = recharge_net::LeafControlSpec {
                    limit: self.scenario.power_limit,
                    strategy: self.scenario.strategy,
                    allow_postponing: self.scenario.allow_postponing,
                };
                recharge_net::spawn_mesh(agents, mesh, Some(leaf))
                    .expect("spawning the RPC mesh backend")
            }
            None => self.scenario.backend.build(agents),
        };
        let mut config = ControllerConfig::new(DeviceId::new(0), self.scenario.power_limit);
        if self.scenario.allow_postponing {
            config = config.with_postponing();
        }
        let mut controller = Controller::new(config.clone(), self.scenario.strategy);
        // The hot-standby control plane, when the scenario asks for one.
        // Faults and leases run on the simulation-tick clock (the same clock
        // `FaultClock` uses), so chaos schedules line up across layers.
        let mut ha_set =
            self.scenario.ha.as_ref().map(|ha| {
                recharge_ha::ControllerSet::new(config, self.scenario.strategy, ha.clone())
            });
        let mut breaker = Breaker::new(self.scenario.power_limit);

        let mut t = ot_start - self.scenario.warmup;
        let hard_end = ot_end + self.scenario.max_horizon;
        let sample_every = self.scenario.sample_every;
        let mut next_sample = t;

        let mut series = Vec::new();
        let mut max_total = Watts::ZERO;
        let mut max_recharge = Watts::ZERO;
        let mut max_capped = Watts::ZERO;
        let mut it_before_ot = Watts::ZERO;
        let mut tripped = false;
        let mut tracks: HashMap<RackId, ChargeTrack> = HashMap::new();
        let mut outcomes: Vec<RackSlaOutcome> = Vec::new();

        // Between two controller interventions the run performs
        // `control_every` physical sub-steps. The schedule — per-sub-step
        // times and input-power states — is computed here by the same
        // repeated-addition recurrence regardless of backend, so the float
        // sequence every agent sees is structurally identical whether the
        // schedule executes serially, sharded per tick, or as one batch.
        let control_every = self.scenario.control_every;
        let mut times: Vec<SimTime> = Vec::with_capacity(control_every);
        let mut input_power: Vec<bool> = Vec::with_capacity(control_every);

        // The control cadence as a next-event queue: tick k fires at integer
        // time k and schedules k + 1 unless the run is over.
        let mut cadence: EventScheduler<SimEvent> = EventScheduler::new();
        cadence.schedule(0, SimEvent::ControlTick);

        while let Some((due, SimEvent::ControlTick)) = cadence.pop_next() {
            let _tick_span = tspan!("sim.tick", "sim");
            tcounter!("sim.events_fired").inc();
            tcounter!("sim.ticks").add(control_every as u64);
            times.clear();
            input_power.clear();
            let mut t_sub = t;
            for _ in 0..control_every {
                let in_ot = t_sub >= ot_start && t_sub < ot_end;
                times.push(t_sub);
                input_power.push(!in_ot);
                t_sub += tick;
            }
            // The controller observes the fleet at the interval's last
            // sub-step; commands flush at this schedule boundary.
            let now = times[control_every - 1];
            // Anchor ambient flight-recorder time even when no controller
            // runs (unmitigated or leaf-hosted ticks).
            recharge_telemetry::set_flight_now(now.as_secs());

            // Drive the physical layer through the whole schedule.
            backend.step_schedule(tick, &input_power, &|rack, i| {
                self.fleet.rack_power(rack, times[i])
            });
            let readings = backend.readings();

            // Control plane (or raw aggregation when unmitigated). A backend
            // hosting the leaf tier (sharded mesh with in-server leaf
            // control) runs the control tick itself — only aggregates come
            // back — otherwise the simulator's own controller drives the bus.
            let (it_load, recharge, capped) = if self.mitigated {
                if let Some(report) = backend.hosted_control_tick(now) {
                    (report.it_load, report.recharge_power, report.capped_power)
                } else if let Some(set) = ha_set.as_mut() {
                    // The interval ends at sim tick (due + 1) * control_every;
                    // that is the instant the leader's lease renews.
                    let tick_now = (due + 1) * control_every as u64;
                    match set.tick(tick_now, now, backend.bus_mut()) {
                        Some(report) => {
                            (report.it_load, report.recharge_power, report.capped_power)
                        }
                        None => {
                            // Leaderless gap: nobody may command, so this
                            // interval degrades to monitoring-only
                            // aggregation, exactly like an unmitigated tick.
                            let mut it = Watts::ZERO;
                            let mut re = Watts::ZERO;
                            for reading in &readings {
                                if reading.input_power_present {
                                    it += reading.it_load;
                                    re += reading.recharge_power;
                                }
                            }
                            (it, re, Watts::ZERO)
                        }
                    }
                } else {
                    let report = controller.tick(now, backend.bus_mut());
                    (report.it_load, report.recharge_power, report.capped_power)
                }
            } else {
                let mut it = Watts::ZERO;
                let mut re = Watts::ZERO;
                for reading in &readings {
                    if reading.input_power_present {
                        it += reading.it_load;
                        re += reading.recharge_power;
                    }
                }
                (it, re, Watts::ZERO)
            };
            let total = it_load + recharge;

            if breaker.observe(total, now) == BreakerStatus::Tripped {
                if !tripped {
                    // First trip: dump the flight journal if configured.
                    let _ = recharge_telemetry::trigger_blackbox("breaker_trip");
                }
                tripped = true;
            }
            tgauge!("power.breaker_headroom_w").set(breaker.available_power(total).as_watts());
            // Export the analytic trip horizon when one exists (a finite
            // lower bound only arises once the draw could sustain a trip).
            if let Some(horizon) = breaker.next_possible_trip_time(now, total) {
                tgauge!("power.breaker_trip_horizon_s").set(horizon.as_secs());
            }

            // Bookkeeping.
            if now < ot_start {
                it_before_ot = total;
            }
            max_total = max_total.max(total);
            max_recharge = max_recharge.max(recharge);
            max_capped = max_capped.max(capped);
            if now >= next_sample {
                series.push(SeriesPoint {
                    at: now,
                    it_load,
                    recharge_power: recharge,
                    capped_power: capped,
                });
                next_sample = now + sample_every;
            }

            // Track charge starts and completions from the telemetry the
            // control plane itself sees, so the bookkeeping is identical
            // across backends.
            let mut all_settled = true;
            for reading in &readings {
                match reading.bbu_state {
                    recharge_battery::BbuState::Charging => {
                        all_settled = false;
                        tracks.entry(reading.rack).or_insert(ChargeTrack {
                            started: now,
                            priority: reading.priority,
                            dod: reading.event_dod,
                        });
                    }
                    recharge_battery::BbuState::FullyCharged => {
                        if let Some(track) = tracks.remove(&reading.rack) {
                            let duration = now - track.started;
                            let budget = sla.charge_time_budget(track.priority);
                            let sla_met = duration <= budget;
                            flight(
                                FlightKind::SlaOutcome,
                                if sla_met {
                                    ReasonCode::SlaMet
                                } else {
                                    ReasonCode::SlaMissed
                                },
                                reading.rack.index(),
                                track.priority.rank(),
                                ChargeIndex::dod_bucket(track.dod),
                                duration.as_secs().to_bits(),
                                budget.as_secs().to_bits(),
                            );
                            if !sla_met {
                                let _ = recharge_telemetry::trigger_blackbox("sla_miss");
                            }
                            outcomes.push(RackSlaOutcome {
                                rack: reading.rack,
                                priority: track.priority,
                                event_dod: track.dod,
                                charge_duration: Some(duration),
                                sla_met,
                            });
                        }
                    }
                    _ => all_settled = false,
                }
            }

            t = t_sub;
            if tripped || (t >= ot_end + Seconds::new(60.0) && all_settled) || t >= hard_end {
                break;
            }
            cadence.schedule(due + 1, SimEvent::ControlTick);
        }

        // Racks that never completed within the horizon miss their SLA.
        // Journal order is irrelevant: the merged timeline is content-sorted.
        for (rack, track) in tracks {
            recharge_telemetry::flight_at(
                t.as_secs(),
                FlightKind::SlaOutcome,
                ReasonCode::SlaMissed,
                rack.index(),
                track.priority.rank(),
                ChargeIndex::dod_bucket(track.dod),
                f64::INFINITY.to_bits(),
                sla.charge_time_budget(track.priority).as_secs().to_bits(),
            );
            let _ = recharge_telemetry::trigger_blackbox("sla_miss");
            outcomes.push(RackSlaOutcome {
                rack,
                priority: track.priority,
                event_dod: track.dod,
                charge_duration: None,
                sla_met: false,
            });
        }
        outcomes.sort_by_key(|o| o.rack);

        RunMetrics {
            series,
            power_limit: self.scenario.power_limit,
            max_total_draw: max_total,
            max_recharge_power: max_recharge,
            max_capped_power: max_capped,
            it_load_before_ot: it_before_ot,
            breaker_tripped: tripped,
            rack_outcomes: outcomes,
            ot_start,
            ot_duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DischargeLevel;
    use recharge_battery::ChargePolicy;
    use recharge_dynamo::Strategy;

    /// A small fleet keeps the (debug-build) tests quick.
    fn small(strategy: Strategy, limit_kw: f64) -> Scenario {
        Scenario::row(3, 2, 2, 7)
            .power_limit(Watts::from_kilowatts(limit_kw))
            .strategy(strategy)
            .discharge(DischargeLevel::Low)
            .tick(Seconds::new(1.0))
            .max_horizon(Seconds::from_hours(2.5))
    }

    #[test]
    fn ample_power_run_charges_everyone_within_sla() {
        let metrics = small(Strategy::PriorityAware, 190.0).build().run();
        assert!(!metrics.breaker_tripped);
        assert_eq!(metrics.max_capped_power, Watts::ZERO);
        assert_eq!(metrics.rack_outcomes.len(), 7);
        assert_eq!(
            metrics.total_sla_met(),
            7,
            "outcomes: {:?}",
            metrics.rack_outcomes
        );
        // DOD landed near the low-discharge target.
        assert!((metrics.mean_event_dod().value() - 0.30).abs() < 0.06);
    }

    #[test]
    fn spike_is_visible_in_series() {
        let metrics = small(Strategy::Uncoordinated, 190.0)
            .charge_policy(ChargePolicy::Original)
            .build()
            .run();
        assert!(metrics.max_recharge_power > Watts::ZERO);
        // Original charger: 7 racks × ≈1.9 kW ≈ 13 kW spike.
        assert!(
            (10.0..16.0).contains(&metrics.spike_magnitude().as_kilowatts()),
            "spike {}",
            metrics.spike_magnitude()
        );
        // The series actually contains the spike.
        let peak_point = metrics
            .series
            .iter()
            .map(|p| p.recharge_power.as_kilowatts())
            .fold(0.0, f64::max);
        assert!(peak_point > 10.0);
    }

    #[test]
    fn variable_charger_reduces_spike_versus_original() {
        let original = small(Strategy::Uncoordinated, 190.0)
            .charge_policy(ChargePolicy::Original)
            .build()
            .run();
        let variable = small(Strategy::Uncoordinated, 190.0)
            .charge_policy(ChargePolicy::Variable)
            .build()
            .run();
        let ratio = original.spike_magnitude() / variable.spike_magnitude();
        // §III-B: ~60% reduction at low discharge (<50% DOD) ⇒ ratio ≈ 2.5.
        assert!((1.8..3.2).contains(&ratio), "spike ratio {ratio:.2}");
    }

    #[test]
    fn tight_limit_forces_capping_for_original_but_not_priority_aware() {
        // Limit barely above the IT load: the original charger must overflow
        // it, priority-aware coordination must not.
        let probe = small(Strategy::PriorityAware, 190.0).build().run();
        let it_peak = probe.it_load_before_ot;
        // Headroom above the 1 A minimum fleet draw (7 × ≈0.37 kW) but far
        // below the original charger's ≈13 kW spike.
        let limit_kw = it_peak.as_kilowatts() + 3.6;

        let original = small(Strategy::Uncoordinated, limit_kw)
            .charge_policy(ChargePolicy::Original)
            .build()
            .run();
        assert!(original.max_capped_power > Watts::ZERO, "original must cap");

        let aware = small(Strategy::PriorityAware, limit_kw).build().run();
        assert_eq!(
            aware.max_capped_power,
            Watts::ZERO,
            "priority-aware must avoid capping (max draw {} vs limit {})",
            aware.max_total_draw,
            aware.power_limit
        );
        assert!(!aware.breaker_tripped);
    }

    #[test]
    fn unmitigated_overload_trips_the_breaker() {
        // No Dynamo at all and a limit low enough that the recharge spike
        // exceeds 130% of it for 30 s.
        let probe = small(Strategy::PriorityAware, 190.0).build().run();
        let limit_kw = probe.it_load_before_ot.as_kilowatts() * 0.85;
        let metrics = small(Strategy::Uncoordinated, limit_kw)
            .charge_policy(ChargePolicy::Original)
            .build()
            .without_mitigation()
            .run();
        assert!(
            metrics.breaker_tripped,
            "max draw {}",
            metrics.max_total_draw
        );
    }

    #[test]
    fn priority_aware_beats_global_under_pressure() {
        // Medium discharge with tight headroom: the priority-aware algorithm
        // must satisfy at least as many P1 racks as the global baseline.
        let probe = small(Strategy::PriorityAware, 190.0)
            .discharge(DischargeLevel::Medium)
            .build()
            .run();
        let limit_kw = probe.it_load_before_ot.as_kilowatts() + 4.0;

        let aware = small(Strategy::PriorityAware, limit_kw)
            .discharge(DischargeLevel::Medium)
            .build()
            .run();
        let global = small(Strategy::Global, limit_kw)
            .discharge(DischargeLevel::Medium)
            .build()
            .run();
        let aware_p1 = aware.sla_summary(Priority::P1);
        let global_p1 = global.sla_summary(Priority::P1);
        assert!(
            aware_p1.met >= global_p1.met,
            "P1 met: aware {} vs global {}",
            aware_p1.met,
            global_p1.met
        );
        assert!(
            aware_p1.met > 0,
            "aware should protect at least one P1 rack"
        );
    }

    #[test]
    fn sharded_backend_matches_in_memory() {
        // `shards(n)` only moves agent stepping onto worker threads; the
        // physics, controller decisions, and bookkeeping must be identical.
        let base = small(Strategy::PriorityAware, 190.0);
        let serial = base.clone().build().run();
        for shards in [1, 3] {
            let sharded = base.clone().shards(shards).build().run();
            assert_eq!(sharded, serial, "diverged with {shards} shards");
        }
    }

    #[test]
    fn event_backend_matches_in_memory() {
        // The event-driven backend only changes *which* rack sub-steps
        // execute, never their results: RunMetrics must be bit-identical.
        let base = small(Strategy::PriorityAware, 190.0);
        let serial = base.clone().build().run();
        let event = base.clone().event_driven().build().run();
        assert_eq!(event, serial, "event-driven run diverged from serial");
        // And with a longer control interval (bigger batches to skip within).
        let serial5 = base.clone().control_every(5).build().run();
        let event5 = base.clone().control_every(5).event_driven().build().run();
        assert_eq!(event5, serial5, "event-driven diverged at control_every=5");
    }

    #[test]
    fn degenerate_shard_counts_clamp_to_the_fleet() {
        // `shards(0)` and `shards(99)` (more shards than the 7 racks) must
        // clamp to [1, rack_count] at build and run identically to serial —
        // no panic, no idle-worker divergence.
        let base = small(Strategy::PriorityAware, 190.0);
        let serial = base.clone().build().run();
        for shards in [0, 99] {
            let clamped = base.clone().shards(shards).build().run();
            assert_eq!(clamped, serial, "diverged with {shards} requested shards");
        }
    }

    #[test]
    fn ot_duration_hits_target_dod() {
        for (level, target) in [
            (DischargeLevel::Low, 0.30),
            (DischargeLevel::Medium, 0.50),
            (DischargeLevel::High, 0.70),
        ] {
            let metrics = small(Strategy::PriorityAware, 190.0)
                .discharge(level)
                .build()
                .run();
            let mean = metrics.mean_event_dod().value();
            assert!(
                (mean - target).abs() < 0.07,
                "{level:?}: mean DOD {mean:.3} vs target {target}"
            );
        }
    }
}
