//! What a simulation run records and reports.

use serde::{Deserialize, Serialize};

use recharge_units::{Dod, Priority, RackId, Seconds, SimTime, Watts};

/// One sampled point of the run's aggregate power series (the raw material of
/// Figs 2, 7, 10, 12, 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Sample instant.
    pub at: SimTime,
    /// IT load drawn from the breaker.
    pub it_load: Watts,
    /// Battery recharge power drawn from the breaker.
    pub recharge_power: Watts,
    /// Server power currently shed by capping.
    pub capped_power: Watts,
}

impl SeriesPoint {
    /// Total draw at the breaker.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.it_load + self.recharge_power
    }
}

/// The charging-time outcome of one rack for one open transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackSlaOutcome {
    /// The rack.
    pub rack: RackId,
    /// Its priority.
    pub priority: Priority,
    /// Battery DOD when charging began.
    pub event_dod: Dod,
    /// Time from charge start to fully charged; `None` if the run's horizon
    /// expired first.
    pub charge_duration: Option<Seconds>,
    /// Whether the charging-time SLA for this priority was met.
    pub sla_met: bool,
}

/// Per-priority SLA attainment (the Fig 14/15 y-axis).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PrioritySlaSummary {
    /// Racks of this priority that charged within their SLA.
    pub met: usize,
    /// Racks of this priority observed charging.
    pub total: usize,
}

impl PrioritySlaSummary {
    /// Fraction of racks meeting the SLA (1.0 for an empty class).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.met as f64 / self.total as f64
        }
    }
}

/// Everything one simulation run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Aggregate power series, sampled every few seconds.
    pub series: Vec<SeriesPoint>,
    /// The breaker's power limit during the run.
    pub power_limit: Watts,
    /// Maximum total draw observed.
    pub max_total_draw: Watts,
    /// Maximum battery recharge power observed.
    pub max_recharge_power: Watts,
    /// Maximum server power shed by capping at any instant (Table III).
    pub max_capped_power: Watts,
    /// IT load just before the open transition.
    pub it_load_before_ot: Watts,
    /// Whether the breaker tripped (only possible with no mitigation).
    pub breaker_tripped: bool,
    /// Per-rack charging outcomes.
    pub rack_outcomes: Vec<RackSlaOutcome>,
    /// When the open transition started.
    pub ot_start: SimTime,
    /// How long the open transition lasted.
    pub ot_duration: Seconds,
}

impl RunMetrics {
    /// Per-priority SLA attainment summary.
    #[must_use]
    pub fn sla_summary(&self, priority: Priority) -> PrioritySlaSummary {
        let mut summary = PrioritySlaSummary::default();
        for outcome in self.rack_outcomes.iter().filter(|o| o.priority == priority) {
            summary.total += 1;
            if outcome.sla_met {
                summary.met += 1;
            }
        }
        summary
    }

    /// Total racks meeting their SLA across all priorities.
    #[must_use]
    pub fn total_sla_met(&self) -> usize {
        self.rack_outcomes.iter().filter(|o| o.sla_met).count()
    }

    /// The recharge-power spike: maximum total draw minus the pre-transition
    /// IT load (what Figs 2 and 7 report).
    #[must_use]
    pub fn spike_magnitude(&self) -> Watts {
        (self.max_total_draw - self.it_load_before_ot).max(Watts::ZERO)
    }

    /// Maximum capping as a fraction of the pre-transition IT load (the
    /// percentage column of Table III).
    #[must_use]
    pub fn max_capped_fraction(&self) -> f64 {
        if self.it_load_before_ot <= Watts::ZERO {
            0.0
        } else {
            self.max_capped_power / self.it_load_before_ot
        }
    }

    /// Publishes the per-priority SLA attainment as a telemetry gauge family
    /// (`sim.sla_met.p1`/`p2`/`p3`, fractions in `[0, 1]`) plus
    /// `sim.sla_met.total` (count of racks meeting their SLA).
    ///
    /// A no-op when telemetry is disabled; never feeds back into the metrics.
    pub fn publish_sla_gauges(&self) {
        use recharge_telemetry::tgauge;
        tgauge!("sim.sla_met.p1").set(self.sla_summary(Priority::P1).fraction());
        tgauge!("sim.sla_met.p2").set(self.sla_summary(Priority::P2).fraction());
        tgauge!("sim.sla_met.p3").set(self.sla_summary(Priority::P3).fraction());
        tgauge!("sim.sla_met.total").set(self.total_sla_met() as f64);
    }

    /// Average depth of discharge across racks that charged.
    #[must_use]
    pub fn mean_event_dod(&self) -> Dod {
        if self.rack_outcomes.is_empty() {
            return Dod::ZERO;
        }
        let sum: f64 = self.rack_outcomes.iter().map(|o| o.event_dod.value()).sum();
        Dod::new(sum / self.rack_outcomes.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(priority: Priority, met: bool) -> RackSlaOutcome {
        RackSlaOutcome {
            rack: RackId::new(0),
            priority,
            event_dod: Dod::new(0.5),
            charge_duration: Some(Seconds::from_minutes(40.0)),
            sla_met: met,
        }
    }

    fn metrics(outcomes: Vec<RackSlaOutcome>) -> RunMetrics {
        RunMetrics {
            series: Vec::new(),
            power_limit: Watts::from_megawatts(2.5),
            max_total_draw: Watts::from_megawatts(2.4),
            max_recharge_power: Watts::from_kilowatts(200.0),
            max_capped_power: Watts::from_kilowatts(50.0),
            it_load_before_ot: Watts::from_megawatts(2.0),
            breaker_tripped: false,
            rack_outcomes: outcomes,
            ot_start: SimTime::ZERO,
            ot_duration: Seconds::new(141.0),
        }
    }

    #[test]
    fn sla_summary_counts_by_priority() {
        let m = metrics(vec![
            outcome(Priority::P1, true),
            outcome(Priority::P1, false),
            outcome(Priority::P2, true),
        ]);
        let p1 = m.sla_summary(Priority::P1);
        assert_eq!((p1.met, p1.total), (1, 2));
        assert_eq!(p1.fraction(), 0.5);
        assert_eq!(m.sla_summary(Priority::P3).fraction(), 1.0);
        assert_eq!(m.total_sla_met(), 2);
    }

    #[test]
    fn spike_and_capping_derivations() {
        let m = metrics(vec![]);
        assert_eq!(m.spike_magnitude(), Watts::from_kilowatts(400.0));
        assert!((m.max_capped_fraction() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn mean_event_dod() {
        let m = metrics(vec![
            outcome(Priority::P1, true),
            outcome(Priority::P2, true),
        ]);
        assert!((m.mean_event_dod().value() - 0.5).abs() < 1e-12);
        assert_eq!(metrics(vec![]).mean_event_dod(), Dod::ZERO);
    }

    #[test]
    fn series_point_total() {
        let p = SeriesPoint {
            at: SimTime::ZERO,
            it_load: Watts::new(10.0),
            recharge_power: Watts::new(5.0),
            capped_power: Watts::ZERO,
        };
        assert_eq!(p.total(), Watts::new(15.0));
    }
}
