//! Fixed-step fleet simulator: the §V-B evaluation harness.
//!
//! A [`Scenario`] describes one experiment — fleet composition, trace seed,
//! breaker limit, coordination strategy, charger policy, and the open
//! transition to inject. [`FleetSimulation::run`] replays it tick by tick:
//! trace → agents → controller → breaker, recording the power series, server
//! capping, breaker status, and per-rack charging-time SLA outcomes that the
//! paper's figures and tables report.
//!
//! # Examples
//!
//! ```no_run
//! use recharge_dynamo::Strategy;
//! use recharge_sim::{DischargeLevel, Scenario};
//! use recharge_units::Watts;
//!
//! // Fig 13(b): low discharge under a 2.3 MW limit, priority-aware.
//! let metrics = Scenario::paper_msb(42)
//!     .power_limit(Watts::from_megawatts(2.3))
//!     .discharge(DischargeLevel::Low)
//!     .strategy(Strategy::PriorityAware)
//!     .build()
//!     .run();
//! assert_eq!(metrics.max_capped_power, Watts::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod scenario;
mod simulation;

pub use metrics::{PrioritySlaSummary, RackSlaOutcome, RunMetrics, SeriesPoint};
pub use scenario::{DischargeLevel, Scenario};
pub use simulation::FleetSimulation;
