//! Scenario description: everything one simulated experiment needs.

use serde::{Deserialize, Serialize};

use recharge_battery::ChargePolicy;
use recharge_dynamo::{FleetBackendKind, Strategy};
use recharge_ha::HaConfig;
use recharge_net::RpcMeshConfig;
use recharge_trace::{DiurnalModel, SyntheticFleet, SyntheticFleetBuilder};
use recharge_units::{Seconds, Watts};

use crate::simulation::FleetSimulation;

/// The three battery-discharge levels of §V-B1, defined by the average BBU
/// depth of discharge the open transition should produce.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DischargeLevel {
    /// ≈30% average DOD.
    Low,
    /// ≈50% average DOD.
    Medium,
    /// ≈70% average DOD.
    High,
    /// A custom average DOD fraction.
    Custom(f64),
}

impl DischargeLevel {
    /// The average depth of discharge this level targets.
    #[must_use]
    pub fn target_dod(self) -> f64 {
        match self {
            DischargeLevel::Low => 0.30,
            DischargeLevel::Medium => 0.50,
            DischargeLevel::High => 0.70,
            DischargeLevel::Custom(f) => f.clamp(0.0, 1.0),
        }
    }
}

/// One experiment configuration (builder-style, consumed by
/// [`Scenario::build`]).
#[derive(Debug, Clone)]
pub struct Scenario {
    pub(crate) seed: u64,
    pub(crate) priority_counts: (usize, usize, usize),
    pub(crate) mean_rack_power: Watts,
    pub(crate) power_limit: Watts,
    pub(crate) strategy: Strategy,
    pub(crate) charge_policy: ChargePolicy,
    pub(crate) discharge: DischargeLevel,
    pub(crate) explicit_ot_duration: Option<Seconds>,
    pub(crate) tick: Seconds,
    pub(crate) sample_every: Seconds,
    pub(crate) warmup: Seconds,
    pub(crate) max_horizon: Seconds,
    pub(crate) allow_postponing: bool,
    pub(crate) backend: FleetBackendKind,
    pub(crate) rpc: Option<RpcMeshConfig>,
    pub(crate) control_every: usize,
    pub(crate) ha: Option<HaConfig>,
}

impl Scenario {
    /// The §V-B evaluation scenario: the paper's 316-rack MSB (89 P1 /
    /// 142 P2 / 85 P3) at its 2.5 MW limit, priority-aware coordination,
    /// medium discharge, with the open transition at the first diurnal peak.
    #[must_use]
    pub fn paper_msb(seed: u64) -> Self {
        Scenario {
            seed,
            priority_counts: (89, 142, 85),
            mean_rack_power: Watts::from_kilowatts(6.33),
            power_limit: Watts::from_megawatts(2.5),
            strategy: Strategy::PriorityAware,
            charge_policy: ChargePolicy::Variable,
            discharge: DischargeLevel::Medium,
            explicit_ot_duration: None,
            tick: Seconds::new(1.0),
            sample_every: Seconds::new(5.0),
            warmup: Seconds::new(60.0),
            max_horizon: Seconds::from_hours(3.0),
            allow_postponing: false,
            backend: FleetBackendKind::Serial,
            rpc: None,
            control_every: 1,
            ha: None,
        }
    }

    /// A small prototype-row scenario (Figs 7, 10, 11): `p1`/`p2`/`p3` racks
    /// under a 190 kW RPP.
    #[must_use]
    pub fn row(p1: usize, p2: usize, p3: usize, seed: u64) -> Self {
        let mut s = Scenario::paper_msb(seed);
        s.priority_counts = (p1, p2, p3);
        s.mean_rack_power = Watts::from_kilowatts(6.0);
        s.power_limit = Watts::from_kilowatts(190.0);
        s
    }

    /// Sets the fleet priority mix.
    #[must_use]
    pub fn priority_counts(mut self, p1: usize, p2: usize, p3: usize) -> Self {
        self.priority_counts = (p1, p2, p3);
        self
    }

    /// Sets the mean per-rack IT load.
    #[must_use]
    pub fn mean_rack_power(mut self, mean: Watts) -> Self {
        self.mean_rack_power = mean;
        self
    }

    /// Sets the protected breaker's power limit.
    #[must_use]
    pub fn power_limit(mut self, limit: Watts) -> Self {
        self.power_limit = limit;
        self
    }

    /// Sets the coordination strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the rack-local charger policy (meaningful mainly for
    /// [`Strategy::Uncoordinated`] runs comparing original vs variable).
    #[must_use]
    pub fn charge_policy(mut self, policy: ChargePolicy) -> Self {
        self.charge_policy = policy;
        self
    }

    /// Sets the battery-discharge level of the injected open transition.
    #[must_use]
    pub fn discharge(mut self, level: DischargeLevel) -> Self {
        self.discharge = level;
        self
    }

    /// Forces an explicit open-transition duration instead of deriving it
    /// from the discharge level.
    #[must_use]
    pub fn open_transition_duration(mut self, duration: Seconds) -> Self {
        self.explicit_ot_duration = Some(duration);
        self
    }

    /// Enables the charge-postponing controller extension (§IV-A future
    /// work): under extreme power constraint, defer low-priority racks
    /// entirely instead of capping servers.
    #[must_use]
    pub fn allow_postponing(mut self) -> Self {
        self.allow_postponing = true;
        self
    }

    /// Runs rack agents on `n` worker threads (a [`ThreadedFleet`] backend)
    /// instead of stepping them in-process, submitting one channel round-trip
    /// per tick. Agent physics and controller decisions are identical either
    /// way — sharding only changes who steps the agents — so metrics match
    /// the in-memory backend exactly.
    ///
    /// `n` is clamped to `[1, rack_count]` when the fleet is built: zero
    /// shards and more shards than racks both degenerate (an idle coordinator
    /// or empty workers), so neither is ever spawned.
    ///
    /// [`ThreadedFleet`]: recharge_dynamo::ThreadedFleet
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.backend = FleetBackendKind::Sharded { shards: n };
        self
    }

    /// Like [`shards`](Self::shards), but every schedule of sub-steps between
    /// controller interventions travels as a single batched round-trip per
    /// shard. Bit-identical to the per-tick submission; pair with
    /// [`control_every`](Self::control_every) to make batches longer than one
    /// sub-step.
    #[must_use]
    pub fn shards_batched(mut self, n: usize) -> Self {
        self.backend = FleetBackendKind::ShardedBatched { shards: n };
        self
    }

    /// Runs the fleet on the struct-of-arrays physics kernel
    /// ([`SoaBackend`]): one contiguous array pass per sub-step instead of
    /// per-rack object dispatch. Bit-identical to the object backends; the
    /// campus-scale choice.
    ///
    /// [`SoaBackend`]: recharge_dynamo::SoaBackend
    #[must_use]
    pub fn soa(mut self) -> Self {
        self.backend = FleetBackendKind::Soa;
        self
    }

    /// Like [`soa`](Self::soa), but the arrays are split into `n` contiguous
    /// shards stepped on scoped threads, one fan-out per schedule.
    #[must_use]
    pub fn soa_sharded(mut self, n: usize) -> Self {
        self.backend = FleetBackendKind::SoaSharded { shards: n };
        self
    }

    /// Runs the fleet on the event-driven backend
    /// ([`EventDrivenBackend`]): quiescent racks fast-forward between
    /// events instead of stepping every tick. Bit-identical to the dense
    /// backends; the cheap choice for long, mostly-idle horizons.
    ///
    /// [`EventDrivenBackend`]: recharge_dynamo::EventDrivenBackend
    #[must_use]
    pub fn event_driven(mut self) -> Self {
        self.backend = FleetBackendKind::Event;
        self
    }

    /// Like [`event_driven`](Self::event_driven), but the shards step on `n`
    /// persistent worker threads behind a merged wake queue
    /// ([`EventShardedBackend`]). Bit-identical to every other backend; the
    /// choice when the horizon is mostly idle *and* the fleet is
    /// campus-scale.
    ///
    /// [`EventShardedBackend`]: recharge_dynamo::EventShardedBackend
    #[must_use]
    pub fn event_sharded(mut self, n: usize) -> Self {
        self.backend = FleetBackendKind::EventSharded { shards: n };
        self
    }

    /// Selects the fleet-execution backend explicitly.
    #[must_use]
    pub fn backend(mut self, backend: FleetBackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Runs controller↔agent coordination over the RPC mesh: agents are
    /// hosted behind real sockets (loopback TCP or Unix-domain per the
    /// config) with the config's deadlines, retries, and optional seeded
    /// fault plan. Overrides [`backend`](Self::backend) — physics stepping
    /// stays local either way, so a clean-link run is bit-identical to the
    /// in-memory backends.
    ///
    /// The config picks the mesh shape ([`spawn_mesh`]): a single
    /// [`RpcFleetBackend`] server by default; with a shard plan
    /// ([`RpcMeshConfig::shard_count`] / `sharded_by_rpp`) one server per
    /// shard with batched reads/commands and concurrent fan-out
    /// ([`ShardedRpcFleetBackend`], still bit-identical under a clean link);
    /// with `with_leaf_control` the leaf tier additionally runs *inside*
    /// each shard's server and only per-group aggregates and budgets cross
    /// the wire.
    ///
    /// [`spawn_mesh`]: recharge_net::spawn_mesh
    /// [`RpcFleetBackend`]: recharge_net::RpcFleetBackend
    /// [`RpcMeshConfig::shard_count`]: recharge_net::RpcMeshConfig::shard_count
    /// [`ShardedRpcFleetBackend`]: recharge_net::ShardedRpcFleetBackend
    #[must_use]
    pub fn rpc(mut self, config: RpcMeshConfig) -> Self {
        self.rpc = Some(config);
        self
    }

    /// Sets how many physical sub-steps run between consecutive controller
    /// interventions (default 1: the controller runs every tick). The
    /// simulated schedule is identical for every backend; a batched backend
    /// collapses the interval into one channel round-trip per shard.
    ///
    /// Zero clamps to 1: the controller can run at most once per tick, and a
    /// zero-length schedule would never step the physics at all.
    #[must_use]
    pub fn control_every(mut self, n: usize) -> Self {
        self.control_every = n.max(1);
        self
    }

    /// Runs the upper control plane as a hot-standby
    /// [`ControllerSet`](recharge_ha::ControllerSet) instead of a single
    /// controller: lease-based leader election, deterministic snapshot
    /// replication, and fenced failover under the process faults carried in
    /// `config`. With no faults injected the run is bit-identical to the
    /// single-controller run (pinned by `tests/ha_soak.rs`).
    #[must_use]
    pub fn ha(mut self, config: HaConfig) -> Self {
        self.ha = Some(config);
        self
    }

    /// Sets the simulation tick (default 1 s).
    ///
    /// # Panics
    ///
    /// Panics if `tick` is not positive.
    #[must_use]
    pub fn tick(mut self, tick: Seconds) -> Self {
        assert!(tick > Seconds::ZERO, "tick must be positive");
        self.tick = tick;
        self
    }

    /// Sets the metrics sampling interval (default 5 s): how often the run
    /// records power/SLA samples into [`RunMetrics`].
    ///
    /// A non-positive interval clamps to 1 s — the densest cadence with a
    /// well-defined meaning (a zero interval would sample forever without
    /// advancing).
    ///
    /// [`RunMetrics`]: crate::metrics::RunMetrics
    #[must_use]
    pub fn sample_every(mut self, interval: Seconds) -> Self {
        self.sample_every = if interval > Seconds::ZERO {
            interval
        } else {
            Seconds::new(1.0)
        };
        self
    }

    /// Sets the pre-transition warmup (default 60 s): how long the run
    /// simulates normal wall-power operation before the open transition
    /// begins. Longer warmups exercise the diurnal trace's quiet stretches —
    /// the regime the event-driven backend fast-forwards.
    #[must_use]
    pub fn warmup(mut self, warmup: Seconds) -> Self {
        self.warmup = warmup.max(Seconds::ZERO);
        self
    }

    /// Sets the post-charge horizon cap (default 3 h past the transition).
    #[must_use]
    pub fn max_horizon(mut self, horizon: Seconds) -> Self {
        self.max_horizon = horizon;
        self
    }

    /// The configured breaker power limit.
    #[must_use]
    pub fn limit(&self) -> Watts {
        self.power_limit
    }

    /// The configured coordination strategy.
    #[must_use]
    pub fn configured_strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configured (P1, P2, P3) rack counts.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        self.priority_counts
    }

    /// Builds the runnable simulation.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is empty.
    #[must_use]
    pub fn build(self) -> FleetSimulation {
        let fleet: SyntheticFleet = SyntheticFleetBuilder::new(self.seed)
            .priority_counts(
                self.priority_counts.0,
                self.priority_counts.1,
                self.priority_counts.2,
            )
            .mean_rack_power(self.mean_rack_power)
            .diurnal(DiurnalModel::standard())
            // The trace resamples its per-rack noise once per simulation
            // tick; a fixed 3 s hold would silently disagree with any other
            // tick length.
            .noise_tick(self.tick.as_secs())
            .build();
        FleetSimulation::new(self, fleet)
    }

    /// The open-transition duration that produces the target average DOD at
    /// the given mean rack load: each of the six BBUs carries one sixth of
    /// the rack, and 100% DOD is 297 kJ per BBU.
    #[must_use]
    pub(crate) fn ot_duration_for(&self, mean_rack_load: Watts) -> Seconds {
        if let Some(explicit) = self.explicit_ot_duration {
            return explicit;
        }
        let params = recharge_battery::BbuParams::production();
        let per_bbu = mean_rack_load / f64::from(params.bbus_per_rack);
        let energy = params.full_discharge_energy * self.discharge.target_dod();
        energy / per_bbu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discharge_levels() {
        assert_eq!(DischargeLevel::Low.target_dod(), 0.30);
        assert_eq!(DischargeLevel::Medium.target_dod(), 0.50);
        assert_eq!(DischargeLevel::High.target_dod(), 0.70);
        assert_eq!(DischargeLevel::Custom(0.42).target_dod(), 0.42);
        assert_eq!(DischargeLevel::Custom(7.0).target_dod(), 1.0);
    }

    #[test]
    fn ot_duration_matches_hand_calculation() {
        let s = Scenario::paper_msb(0).discharge(DischargeLevel::Medium);
        // 6.33 kW rack → 1.055 kW per BBU; 50% × 297 kJ = 148.5 kJ → ≈141 s.
        let d = s.ot_duration_for(Watts::from_kilowatts(6.33));
        assert!((140.0..142.0).contains(&d.as_secs()), "{d}");
    }

    #[test]
    fn explicit_ot_duration_wins() {
        let s = Scenario::paper_msb(0).open_transition_duration(Seconds::new(5.0));
        assert_eq!(
            s.ot_duration_for(Watts::from_kilowatts(6.0)),
            Seconds::new(5.0)
        );
    }

    #[test]
    fn builder_chains() {
        let s = Scenario::row(9, 5, 3, 1)
            .power_limit(Watts::from_kilowatts(100.0))
            .strategy(Strategy::Global)
            .discharge(DischargeLevel::High)
            .tick(Seconds::new(3.0))
            .sample_every(Seconds::new(2.0));
        assert_eq!(s.priority_counts, (9, 5, 3));
        assert_eq!(s.power_limit, Watts::from_kilowatts(100.0));
        assert_eq!(s.strategy, Strategy::Global);
        assert_eq!(s.tick, Seconds::new(3.0));
        assert_eq!(s.sample_every, Seconds::new(2.0));
    }

    #[test]
    fn default_sample_interval_is_five_seconds() {
        assert_eq!(Scenario::paper_msb(0).sample_every, Seconds::new(5.0));
    }

    #[test]
    fn zero_sample_interval_clamps_to_one_second() {
        let s = Scenario::paper_msb(0).sample_every(Seconds::ZERO);
        assert_eq!(s.sample_every, Seconds::new(1.0));
        let s = Scenario::paper_msb(0).sample_every(Seconds::new(-3.0));
        assert_eq!(s.sample_every, Seconds::new(1.0));
        // Positive intervals pass through untouched.
        let s = Scenario::paper_msb(0).sample_every(Seconds::new(0.5));
        assert_eq!(s.sample_every, Seconds::new(0.5));
    }

    #[test]
    fn zero_control_interval_clamps_to_one() {
        assert_eq!(Scenario::paper_msb(0).control_every(0).control_every, 1);
        assert_eq!(Scenario::paper_msb(0).control_every(5).control_every, 5);
    }

    #[test]
    fn event_driven_selects_the_event_backend() {
        let s = Scenario::paper_msb(0).event_driven();
        assert_eq!(s.backend, FleetBackendKind::Event);
    }

    #[test]
    fn event_sharded_selects_the_sharded_event_backend() {
        let s = Scenario::paper_msb(0).event_sharded(4);
        assert_eq!(s.backend, FleetBackendKind::EventSharded { shards: 4 });
    }

    #[test]
    fn warmup_clamps_to_non_negative() {
        let s = Scenario::paper_msb(0).warmup(Seconds::from_hours(4.0));
        assert_eq!(s.warmup, Seconds::from_hours(4.0));
        let s = Scenario::paper_msb(0).warmup(Seconds::new(-5.0));
        assert_eq!(s.warmup, Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_panics() {
        let _ = Scenario::paper_msb(0).tick(Seconds::ZERO);
    }
}
