//! Deterministic link-fault injection: seeded drop/delay/duplicate/partition.
//!
//! Chaos scenarios must be reproducible — a flaky soak that cannot be
//! replayed is worse than no soak at all. A [`FaultPlan`] is a pure
//! description (seed + probabilities + partition windows); [`LinkFaults`]
//! turns it into per-call decisions with a `splitmix64` stream, so the same
//! plan over the same call sequence always injects the same faults.
//!
//! Time, for partitions, is **simulation ticks**, not wall clock: the fleet
//! backend publishes its tick through a shared [`FaultClock`], and a
//! partition window `[from_tick, to_tick)` cuts the link during exactly those
//! ticks of the run. This keeps chaos runs deterministic regardless of host
//! scheduling jitter.
//!
//! Injected *drops* are modelled as synthetic timeouts that fail the attempt
//! immediately instead of holding the caller for the full deadline — the
//! retry/backoff/fallback machinery exercises identically, and a 10 %-drop
//! soak finishes in seconds rather than minutes. Injected *delays* are real
//! sleeps, so deadline enforcement is exercised for real.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::splitmix64;
use recharge_units::RackId;

/// Shared simulation-tick clock between a fleet backend (writer) and the
/// fault layer (reader).
#[derive(Debug, Clone, Default)]
pub struct FaultClock(Arc<AtomicU64>);

impl FaultClock {
    /// A clock at tick 0.
    #[must_use]
    pub fn new() -> Self {
        FaultClock::default()
    }

    /// The current simulation tick.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.0.fetch_add(ticks, Ordering::AcqRel);
    }
}

/// Which racks a partition cuts off.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PartitionScope {
    /// The whole link: every rack behind it is unreachable.
    #[default]
    All,
    /// Only the listed racks are unreachable (plus rack-less calls such as
    /// discovery, which always fail under any active partition).
    Racks(Vec<RackId>),
}

/// A half-open window of simulation ticks during which the link is cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// First tick of the partition (inclusive).
    pub from_tick: u64,
    /// First tick after the partition (exclusive).
    pub to_tick: u64,
    /// Which racks the partition affects.
    pub scope: PartitionScope,
}

impl Partition {
    /// A whole-link partition over `[from_tick, to_tick)`.
    #[must_use]
    pub fn all(from_tick: u64, to_tick: u64) -> Self {
        Partition {
            from_tick,
            to_tick,
            scope: PartitionScope::All,
        }
    }

    /// A partition cutting only `racks` over `[from_tick, to_tick)`.
    #[must_use]
    pub fn racks(from_tick: u64, to_tick: u64, racks: Vec<RackId>) -> Self {
        Partition {
            from_tick,
            to_tick,
            scope: PartitionScope::Racks(racks),
        }
    }

    fn cuts(&self, tick: u64, rack: Option<RackId>) -> bool {
        if tick < self.from_tick || tick >= self.to_tick {
            return false;
        }
        match (&self.scope, rack) {
            (PartitionScope::All, _) => true,
            // Rack-less calls (discovery, ping) fail under any active
            // partition: the controller cannot tell a scoped cut from a full
            // one until it addresses a rack.
            (PartitionScope::Racks(_), None) => true,
            (PartitionScope::Racks(racks), Some(rack)) => racks.contains(&rack),
        }
    }
}

/// A process-level fault against one redundant upper controller.
///
/// Unlike link faults, which degrade the mesh, process faults kill the
/// *brain*: the HA layer (`recharge-ha`) polls these windows on the shared
/// [`FaultClock`] each control tick, so the same plan over the same run
/// always kills or freezes the same controller at the same tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessFault {
    /// SIGKILL-style: the controller dies at `at_tick` and never returns.
    CrashController {
        /// Replica id of the controller to kill.
        controller: u32,
        /// Simulation tick at which it dies.
        at_tick: u64,
    },
    /// SIGSTOP/SIGCONT-style: the controller is frozen (holds its lease but
    /// makes no progress) over `[from_tick, to_tick)`, then resumes.
    FreezeController {
        /// Replica id of the controller to freeze.
        controller: u32,
        /// First frozen tick (inclusive).
        from_tick: u64,
        /// First tick after the freeze (exclusive).
        to_tick: u64,
    },
}

impl ProcessFault {
    /// The replica id this fault targets.
    #[must_use]
    pub fn controller(&self) -> u32 {
        match self {
            ProcessFault::CrashController { controller, .. }
            | ProcessFault::FreezeController { controller, .. } => *controller,
        }
    }
}

/// A reproducible schedule of link faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-call fault stream.
    pub seed: u64,
    /// Probability an attempt's request frame is dropped.
    pub drop_request: f64,
    /// Probability an attempt's response frame is dropped.
    pub drop_response: f64,
    /// Probability an attempt's request frame is duplicated on the wire.
    pub duplicate: f64,
    /// Probability an attempt is delayed before sending.
    pub delay_prob: f64,
    /// Typical injected delay (drawn for most delayed attempts).
    pub delay_typical: Duration,
    /// Tail injected delay (drawn for roughly 1-in-50 delayed attempts, so
    /// it lands near the p99 of the overall delay distribution).
    pub delay_p99: Duration,
    /// Tick windows during which the link is cut.
    pub partitions: Vec<Partition>,
    /// Tick-scheduled process faults against redundant upper controllers.
    pub process_faults: Vec<ProcessFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x0005_eed1_u64,
            drop_request: 0.0,
            drop_response: 0.0,
            duplicate: 0.0,
            delay_prob: 0.0,
            delay_typical: Duration::from_millis(1),
            delay_p99: Duration::from_millis(50),
            partitions: Vec::new(),
            process_faults: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that only injects partitions (no probabilistic faults).
    #[must_use]
    pub fn partitions_only(partitions: Vec<Partition>) -> Self {
        FaultPlan {
            partitions,
            ..FaultPlan::default()
        }
    }

    /// The seeded chaos profile used by the soak: `drop` request-drop
    /// probability, 50 ms p99 delay on 20 % of attempts, plus `partitions`.
    #[must_use]
    pub fn chaos(seed: u64, drop: f64, partitions: Vec<Partition>) -> Self {
        FaultPlan {
            seed,
            drop_request: drop,
            drop_response: drop / 2.0,
            duplicate: drop / 2.0,
            delay_prob: 0.2,
            delay_typical: Duration::from_millis(1),
            delay_p99: Duration::from_millis(50),
            partitions,
            ..FaultPlan::default()
        }
    }

    /// Projects this plan onto one shard's link.
    ///
    /// Each shard gets its own derived seed (so fault streams across shards
    /// are independent but still reproducible) and only the partitions that
    /// touch `shard_racks`. A shard's link is one connection: a partition
    /// whose rack scope intersects the shard cuts the **whole** shard link
    /// (promoted to [`PartitionScope::All`]), because batched calls carry no
    /// rack address to scope by. Partitions disjoint from the shard are
    /// dropped entirely.
    #[must_use]
    pub fn for_shard(&self, shard: usize, shard_racks: &[RackId]) -> Self {
        let mut state = self.seed ^ ((shard as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let seed = splitmix64(&mut state);
        let partitions = self
            .partitions
            .iter()
            .filter_map(|p| match &p.scope {
                PartitionScope::All => Some(p.clone()),
                PartitionScope::Racks(racks) => {
                    if racks.iter().any(|r| shard_racks.contains(r)) {
                        Some(Partition::all(p.from_tick, p.to_tick))
                    } else {
                        None
                    }
                }
            })
            .collect();
        FaultPlan {
            seed,
            partitions,
            ..self.clone()
        }
    }

    /// Whether `controller` is dead at `tick`: some [`ProcessFault::CrashController`]
    /// fired at or before it. Crashes are permanent — there is no restart.
    #[must_use]
    pub fn controller_crashed(&self, controller: u32, tick: u64) -> bool {
        self.process_faults.iter().any(|f| {
            matches!(
                f,
                ProcessFault::CrashController { controller: c, at_tick }
                    if *c == controller && *at_tick <= tick
            )
        })
    }

    /// Whether `controller` is frozen at `tick`: inside some
    /// [`ProcessFault::FreezeController`] half-open window.
    #[must_use]
    pub fn controller_frozen(&self, controller: u32, tick: u64) -> bool {
        self.process_faults.iter().any(|f| {
            matches!(
                f,
                ProcessFault::FreezeController { controller: c, from_tick, to_tick }
                    if *c == controller && *from_tick <= tick && tick < *to_tick
            )
        })
    }
}

/// What the fault layer decided for one call attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// Delay to sleep before sending (zero for most attempts).
    pub delay: Duration,
    /// Drop the request frame: the attempt times out without sending.
    pub drop_request: bool,
    /// Drop the response frame: the request is delivered (and takes effect on
    /// the server) but the attempt still times out.
    pub drop_response: bool,
    /// Send the request frame twice.
    pub duplicate: bool,
}

impl FaultDecision {
    /// The clean-link decision: no injected faults.
    pub const NONE: FaultDecision = FaultDecision {
        delay: Duration::ZERO,
        drop_request: false,
        drop_response: false,
        duplicate: false,
    };
}

/// Mutable fault state for one link: the plan plus its random stream.
#[derive(Debug)]
pub struct LinkFaults {
    plan: FaultPlan,
    clock: FaultClock,
    rng: u64,
}

impl LinkFaults {
    /// Binds a plan to the tick clock it watches for partitions.
    #[must_use]
    pub fn new(plan: FaultPlan, clock: FaultClock) -> Self {
        let rng = plan.seed ^ 0x9e37_79b9_7f4a_7c15;
        LinkFaults { plan, clock, rng }
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // 53 high bits → uniform in [0, 1).
        let x = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Whether an active partition cuts calls addressed to `rack` right now.
    #[must_use]
    pub fn partitioned(&self, rack: Option<RackId>) -> bool {
        let tick = self.clock.tick();
        self.plan.partitions.iter().any(|p| p.cuts(tick, rack))
    }

    /// Draws the fault decision for one attempt. Consumes a fixed number of
    /// random draws per attempt so decisions depend only on the attempt
    /// sequence number, not on which faults earlier attempts triggered.
    pub fn decide(&mut self) -> FaultDecision {
        let drop_request = self.chance(self.plan.drop_request);
        let drop_response = self.chance(self.plan.drop_response);
        let duplicate = self.chance(self.plan.duplicate);
        let delayed = self.chance(self.plan.delay_prob);
        let tail = self.chance(0.02);
        let delay = if delayed {
            if tail {
                self.plan.delay_p99
            } else {
                self.plan.delay_typical
            }
        } else {
            Duration::ZERO
        };
        FaultDecision {
            delay,
            drop_request,
            drop_response,
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::chaos(7, 0.1, Vec::new());
        let mut a = LinkFaults::new(plan.clone(), FaultClock::new());
        let mut b = LinkFaults::new(plan, FaultClock::new());
        for _ in 0..1_000 {
            assert_eq!(a.decide(), b.decide());
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan {
            drop_request: 0.1,
            ..FaultPlan::default()
        };
        let mut faults = LinkFaults::new(plan, FaultClock::new());
        let n = 20_000;
        let drops = (0..n).filter(|_| faults.decide().drop_request).count();
        let rate = drops as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.01, "drop rate {rate}");
    }

    #[test]
    fn clean_plan_never_injects() {
        let mut faults = LinkFaults::new(FaultPlan::default(), FaultClock::new());
        for _ in 0..100 {
            assert_eq!(faults.decide(), FaultDecision::NONE);
            assert!(!faults.partitioned(None));
        }
    }

    #[test]
    fn partition_windows_follow_the_tick_clock() {
        let clock = FaultClock::new();
        let faults = LinkFaults::new(
            FaultPlan::partitions_only(vec![Partition::all(10, 20)]),
            clock.clone(),
        );
        assert!(!faults.partitioned(None));
        clock.advance(10);
        assert!(faults.partitioned(None));
        assert!(faults.partitioned(Some(RackId::new(3))));
        clock.advance(9); // tick 19: last cut tick
        assert!(faults.partitioned(None));
        clock.advance(1); // tick 20: healed
        assert!(!faults.partitioned(None));
    }

    #[test]
    fn scoped_partition_cuts_only_listed_racks() {
        let clock = FaultClock::new();
        let faults = LinkFaults::new(
            FaultPlan::partitions_only(vec![Partition::racks(
                0,
                5,
                vec![RackId::new(1), RackId::new(2)],
            )]),
            clock.clone(),
        );
        assert!(faults.partitioned(Some(RackId::new(1))));
        assert!(faults.partitioned(Some(RackId::new(2))));
        assert!(!faults.partitioned(Some(RackId::new(0))));
        // Rack-less calls fail under any active partition.
        assert!(faults.partitioned(None));
        clock.advance(5);
        assert!(!faults.partitioned(Some(RackId::new(1))));
    }

    #[test]
    fn shard_projection_scopes_partitions_and_derives_seeds() {
        let plan = FaultPlan::chaos(
            42,
            0.1,
            vec![
                Partition::all(10, 20),
                Partition::racks(30, 40, vec![RackId::new(1), RackId::new(5)]),
                Partition::racks(50, 60, vec![RackId::new(9)]),
            ],
        );
        let shard0 = plan.for_shard(0, &[RackId::new(0), RackId::new(1)]);
        let shard1 = plan.for_shard(1, &[RackId::new(2), RackId::new(3)]);

        // Whole-link partitions survive everywhere; the rack-scoped one that
        // intersects shard 0 is promoted to the whole shard link; the one
        // touching rack 9 reaches neither shard.
        assert_eq!(
            shard0.partitions,
            vec![Partition::all(10, 20), Partition::all(30, 40)]
        );
        assert_eq!(shard1.partitions, vec![Partition::all(10, 20)]);

        // Derived seeds are distinct per shard and stable across calls.
        assert_ne!(shard0.seed, shard1.seed);
        assert_ne!(shard0.seed, plan.seed);
        assert_eq!(
            shard0.seed,
            plan.for_shard(0, &[RackId::new(0), RackId::new(1)]).seed
        );

        // Probabilistic knobs carry over untouched.
        assert_eq!(shard0.drop_request, plan.drop_request);
        assert_eq!(shard0.delay_p99, plan.delay_p99);
    }

    #[test]
    fn crash_faults_are_permanent_from_their_tick() {
        let plan = FaultPlan {
            process_faults: vec![ProcessFault::CrashController {
                controller: 1,
                at_tick: 600,
            }],
            ..FaultPlan::default()
        };
        assert!(!plan.controller_crashed(1, 0));
        assert!(!plan.controller_crashed(1, 599));
        assert!(plan.controller_crashed(1, 600));
        assert!(plan.controller_crashed(1, 10_000)); // no restart, ever
        assert!(!plan.controller_crashed(0, 10_000)); // other replicas live on
        assert!(!plan.controller_frozen(1, 700)); // dead, not frozen
    }

    #[test]
    fn freeze_faults_follow_half_open_windows() {
        let plan = FaultPlan {
            process_faults: vec![ProcessFault::FreezeController {
                controller: 2,
                from_tick: 100,
                to_tick: 150,
            }],
            ..FaultPlan::default()
        };
        assert!(!plan.controller_frozen(2, 99));
        assert!(plan.controller_frozen(2, 100));
        assert!(plan.controller_frozen(2, 149));
        assert!(!plan.controller_frozen(2, 150)); // thawed
        assert!(!plan.controller_frozen(0, 120));
        assert!(!plan.controller_crashed(2, 120)); // frozen, not dead
        assert_eq!(plan.process_faults[0].controller(), 2);
    }

    #[test]
    fn shard_projection_carries_process_faults() {
        let plan = FaultPlan {
            process_faults: vec![ProcessFault::CrashController {
                controller: 0,
                at_tick: 42,
            }],
            ..FaultPlan::chaos(7, 0.1, Vec::new())
        };
        // Process faults target controllers, not links: every shard's
        // projection sees the same schedule.
        let shard = plan.for_shard(3, &[RackId::new(9)]);
        assert_eq!(shard.process_faults, plan.process_faults);
    }

    #[test]
    fn delay_distribution_has_a_tail() {
        let plan = FaultPlan {
            delay_prob: 1.0,
            delay_typical: Duration::from_millis(1),
            delay_p99: Duration::from_millis(50),
            ..FaultPlan::default()
        };
        let mut faults = LinkFaults::new(plan, FaultClock::new());
        let decisions: Vec<FaultDecision> = (0..10_000).map(|_| faults.decide()).collect();
        let tail = decisions
            .iter()
            .filter(|d| d.delay == Duration::from_millis(50))
            .count();
        let typical = decisions
            .iter()
            .filter(|d| d.delay == Duration::from_millis(1))
            .count();
        assert_eq!(tail + typical, decisions.len());
        let tail_rate = tail as f64 / decisions.len() as f64;
        assert!((tail_rate - 0.02).abs() < 0.01, "tail rate {tail_rate}");
    }
}
