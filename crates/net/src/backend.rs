//! Running a whole fleet behind the mesh: [`RpcFleetBackend`].
//!
//! The backend hosts the rack agents in an [`AgentHost`] served over a real
//! socket (loopback TCP by default, Unix-domain on request) and gives the
//! simulation loop an [`RpcBus`] as its controller-facing bus — every
//! controller read and command crosses the wire, exactly as in production.
//! Physics stepping stays local (the host *is* the rack; only coordination
//! is remote), replicating [`SerialBackend`]'s per-agent order so a
//! clean-link run is bit-identical to the in-memory backends.
//!
//! [`RpcMeshConfig`] is the scenario-carried selector, playing the same role
//! [`FleetBackendKind`](recharge_dynamo::FleetBackendKind) plays for the
//! in-process backends: a plain value describing transport, lease, deadlines,
//! retry budget, and (optionally) a seeded [`FaultPlan`] for chaos runs.
//!
//! [`SerialBackend`]: recharge_dynamo::SerialBackend

use std::io;
use std::sync::Arc;
use std::time::Duration;

use recharge_dynamo::{AgentBus, FleetBackend, PowerReading, RackAgent, SimRackAgent};
use recharge_units::{RackId, Seconds, Watts};

use crate::client::{RetryPolicy, RpcBus, RpcBusConfig};
use crate::endpoint::Endpoint;
use crate::fault::{FaultClock, FaultPlan};
use crate::server::{AgentHost, AgentServer, DEFAULT_LEASE_TICKS};
use crate::sharded::{LeafControlSpec, ShardedRpcFleetBackend};
use crate::wire::MAX_FRAME_LEN;

/// Which socket family the mesh uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RpcTransport {
    /// Ephemeral loopback TCP (`127.0.0.1:0`); works everywhere.
    #[default]
    TcpLoopback,
    /// A fresh Unix-domain socket under the temp directory (Unix only).
    UnixSocket,
}

/// How the fleet is partitioned into agent servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPlan {
    /// One server hosts the whole fleet (the original mesh).
    #[default]
    Single,
    /// `n` servers over contiguous fleet chunks of near-equal size.
    Count(usize),
    /// One server per RPP row: contiguous chunks of `racks_per_rpp` racks,
    /// matching the row layout of the Facebook topology (racks are dense in
    /// RPP order, so contiguous chunking *is* RPP grouping).
    ByRpp {
        /// Racks hosted under each RPP (the paper's row size is 14).
        racks_per_rpp: usize,
    },
}

impl ShardPlan {
    /// Splits `racks` (fleet order) into per-shard groups. Every rack lands
    /// in exactly one group; groups preserve fleet order and are non-empty
    /// whenever `racks` is.
    #[must_use]
    pub fn partition(&self, racks: &[RackId]) -> Vec<Vec<RackId>> {
        let len = racks.len();
        if len == 0 {
            return vec![Vec::new()];
        }
        let shards = match *self {
            ShardPlan::Single => 1,
            ShardPlan::Count(n) => n.clamp(1, len),
            ShardPlan::ByRpp { racks_per_rpp } => len.div_ceil(racks_per_rpp.max(1)),
        };
        match *self {
            ShardPlan::ByRpp { racks_per_rpp } => racks
                .chunks(racks_per_rpp.max(1))
                .map(<[RackId]>::to_vec)
                .collect(),
            _ => (0..shards)
                .map(|i| racks[i * len / shards..(i + 1) * len / shards].to_vec())
                .collect(),
        }
    }
}

/// Scenario-carried configuration for a fleet running over the mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcMeshConfig {
    /// Socket family.
    pub transport: RpcTransport,
    /// Coordination lease in simulation ticks; must exceed the controller's
    /// `control_every`, or healthy racks would flap into standalone between
    /// control tick contacts.
    pub lease_ticks: u64,
    /// Per-attempt response deadline.
    pub deadline: Duration,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Link faults to inject; `None` for a clean link.
    pub fault: Option<FaultPlan>,
    /// Seed for client backoff jitter.
    pub seed: u64,
    /// Fleet partitioning: one server, `n` servers, or one per RPP row.
    pub shards: ShardPlan,
    /// Frame cap both sides enforce (batched reading frames for very large
    /// fleets can need more than the 1 MiB default).
    pub max_frame_len: u32,
    /// Host the leaf control tier inside each agent server: leaf ticks run
    /// server-side and only per-group aggregates and power budgets cross the
    /// wire. Requires a [`LeafControlSpec`] at spawn time.
    pub leaf_control: bool,
}

impl Default for RpcMeshConfig {
    fn default() -> Self {
        RpcMeshConfig {
            transport: RpcTransport::TcpLoopback,
            lease_ticks: DEFAULT_LEASE_TICKS,
            deadline: Duration::from_millis(500),
            retry: RetryPolicy::default(),
            fault: None,
            seed: 0x0b5e_55ed,
            shards: ShardPlan::Single,
            max_frame_len: MAX_FRAME_LEN,
            leaf_control: false,
        }
    }
}

impl RpcMeshConfig {
    /// The default mesh over Unix-domain sockets.
    #[must_use]
    pub fn unix() -> Self {
        RpcMeshConfig {
            transport: RpcTransport::UnixSocket,
            ..RpcMeshConfig::default()
        }
    }

    /// The default mesh with a fault plan attached.
    #[must_use]
    pub fn with_fault(fault: FaultPlan) -> Self {
        RpcMeshConfig {
            fault: Some(fault),
            ..RpcMeshConfig::default()
        }
    }

    /// A mesh sharded by RPP row (the paper's 14-rack rows): one agent
    /// server per RPP, batched wire ops, concurrent controller fan-out.
    #[must_use]
    pub fn sharded_by_rpp() -> Self {
        RpcMeshConfig {
            shards: ShardPlan::ByRpp { racks_per_rpp: 14 },
            ..RpcMeshConfig::default()
        }
    }

    /// A mesh sharded into `n` contiguous fleet chunks.
    #[must_use]
    pub fn shard_count(n: usize) -> Self {
        RpcMeshConfig {
            shards: ShardPlan::Count(n),
            ..RpcMeshConfig::default()
        }
    }

    /// Attaches a fault plan to this config (sharded meshes project it per
    /// shard via [`FaultPlan::for_shard`]).
    #[must_use]
    pub fn faulted(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Overrides the shard plan.
    #[must_use]
    pub fn with_shards(mut self, shards: ShardPlan) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the frame cap.
    #[must_use]
    pub fn with_max_frame_len(mut self, max_frame_len: u32) -> Self {
        self.max_frame_len = max_frame_len;
        self
    }

    /// Enables in-server leaf control (requires a [`LeafControlSpec`] when
    /// spawning).
    #[must_use]
    pub fn with_leaf_control(mut self) -> Self {
        self.leaf_control = true;
        self
    }

    /// The endpoint family this config binds.
    pub(crate) fn fresh_endpoint(&self) -> io::Result<Endpoint> {
        match self.transport {
            RpcTransport::TcpLoopback => Ok(Endpoint::loopback()),
            #[cfg(unix)]
            RpcTransport::UnixSocket => Ok(Endpoint::unix_temp()),
            #[cfg(not(unix))]
            RpcTransport::UnixSocket => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this target",
            )),
        }
    }
}

/// Spawns the backend a mesh config describes: a single-server
/// [`RpcFleetBackend`] for [`ShardPlan::Single`], a
/// [`ShardedRpcFleetBackend`] otherwise. `leaf` supplies the control
/// parameters for in-server leaf ticks; it is required when
/// `config.leaf_control` is set and ignored otherwise.
pub fn spawn_mesh(
    agents: Vec<SimRackAgent>,
    config: &RpcMeshConfig,
    leaf: Option<LeafControlSpec>,
) -> io::Result<Box<dyn FleetBackend>> {
    if config.leaf_control && leaf.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "leaf_control requires a LeafControlSpec",
        ));
    }
    match config.shards {
        ShardPlan::Single if !config.leaf_control => {
            Ok(Box::new(RpcFleetBackend::spawn(agents, config)?))
        }
        _ => Ok(Box::new(ShardedRpcFleetBackend::spawn(
            agents,
            config,
            if config.leaf_control { leaf } else { None },
        )?)),
    }
}

/// A [`FleetBackend`] whose controller bus crosses a real socket.
pub struct RpcFleetBackend {
    host: Arc<AgentHost<SimRackAgent>>,
    // Dropped after `bus`, stopping the server threads; field order is load-
    // bearing only for prompt shutdown, not correctness.
    _server: AgentServer<SimRackAgent>,
    bus: RpcBus,
    name: &'static str,
}

impl RpcFleetBackend {
    /// Hosts `agents` behind a freshly bound server and connects the bus.
    pub fn spawn(agents: Vec<SimRackAgent>, config: &RpcMeshConfig) -> io::Result<Self> {
        let endpoint = config.fresh_endpoint()?;
        let clock = FaultClock::new();
        let host = Arc::new(
            AgentHost::new(agents, config.lease_ticks, clock.clone())
                .with_max_frame_len(config.max_frame_len),
        );
        let server = AgentServer::serve(Arc::clone(&host), &endpoint)?;
        let bus = RpcBus::connect(
            server.endpoint(),
            RpcBusConfig {
                deadline: config.deadline,
                connect_timeout: Duration::from_secs(2),
                retry: config.retry,
                seed: config.seed,
                fault: config.fault.clone(),
                max_frame_len: config.max_frame_len,
                shard_label: None,
            },
            clock,
        )?;
        let name = match config.transport {
            RpcTransport::TcpLoopback => "rpc-tcp",
            RpcTransport::UnixSocket => "rpc-unix",
        };
        Ok(RpcFleetBackend {
            host,
            _server: server,
            bus,
            name,
        })
    }

    /// The hosted racks and lease state (inspection for tests and reports).
    #[must_use]
    pub fn host(&self) -> &Arc<AgentHost<SimRackAgent>> {
        &self.host
    }

    /// The client bus (inspection; the simulation gets it via `bus_mut`).
    #[must_use]
    pub fn bus(&self) -> &RpcBus {
        &self.bus
    }
}

impl FleetBackend for RpcFleetBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    ) {
        // Identical per-agent order to SerialBackend: sub-step outer, rack
        // inner — the bit-identical guarantee depends on it.
        self.host.with_agents(|agents| {
            for (i, &power) in input_power.iter().enumerate() {
                for agent in agents.iter_mut() {
                    agent.set_offered_load(load_of(agent.rack(), i));
                    agent.set_input_power(power);
                    agent.step(dt);
                }
            }
        });
        // Advance the shared tick clock (partition windows) and sweep leases
        // *after* physics, *before* the controller's next look — the same
        // boundary where command effects become observable.
        self.host.advance(input_power.len() as u64);
    }

    fn readings(&self) -> Vec<PowerReading> {
        // Omniscient simulator bookkeeping reads locally; only the
        // *controller's* view crosses the wire.
        self.host.readings()
    }

    fn bus_mut(&mut self) -> &mut dyn AgentBus {
        &mut self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_units::Priority;

    fn agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect()
    }

    #[test]
    fn rpc_backend_matches_serial_physics() {
        use recharge_dynamo::FleetBackendKind;
        let schedule: Vec<bool> = (0..8).map(|i| i % 5 != 2).collect();
        let load = |rack: RackId, i: usize| {
            Watts::from_kilowatts(5.5 + 0.2 * f64::from(rack.index()) + 0.05 * i as f64)
        };
        let mut serial = FleetBackendKind::Serial.build(agents(4));
        let mut rpc = RpcFleetBackend::spawn(agents(4), &RpcMeshConfig::default()).expect("spawn");
        serial.step_schedule(Seconds::new(1.0), &schedule, &load);
        rpc.step_schedule(Seconds::new(1.0), &schedule, &load);
        assert_eq!(serial.readings(), rpc.readings());
    }

    #[test]
    fn controller_commands_cross_the_wire() {
        let mut rpc = RpcFleetBackend::spawn(agents(2), &RpcMeshConfig::default()).expect("spawn");
        assert_eq!(rpc.name(), "rpc-tcp");
        let racks = rpc.bus_mut().racks();
        assert_eq!(racks, vec![RackId::new(0), RackId::new(1)]);
        rpc.bus_mut()
            .cap_servers(RackId::new(0), Watts::from_kilowatts(3.0));
        let reading = rpc.bus_mut().read(RackId::new(0)).expect("read");
        assert_eq!(reading.it_load, Watts::from_kilowatts(3.0));
        // The simulator-side (local) view agrees: same host state.
        assert_eq!(rpc.readings()[0].it_load, Watts::from_kilowatts(3.0));
    }

    #[cfg(unix)]
    #[test]
    fn unix_transport_works() {
        let mut rpc = RpcFleetBackend::spawn(agents(1), &RpcMeshConfig::unix()).expect("spawn");
        assert_eq!(rpc.name(), "rpc-unix");
        assert!(rpc.bus_mut().read(RackId::new(0)).is_some());
    }

    #[test]
    fn ticks_advance_with_schedules() {
        let mut rpc = RpcFleetBackend::spawn(agents(1), &RpcMeshConfig::default()).expect("spawn");
        assert_eq!(rpc.host().clock().tick(), 0);
        rpc.step_schedule(Seconds::new(1.0), &[true; 5], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        assert_eq!(rpc.host().clock().tick(), 5);
    }
}
