//! The length-prefixed framed wire protocol.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload length
//! followed by the payload. A payload is
//!
//! ```text
//! [ version: u8 = 1 ][ request id: u64 LE ][ opcode: u8 ][ body ... ]
//! ```
//!
//! The request id is chosen by the client and echoed verbatim in the reply,
//! so a client that retried after a timeout (or whose link duplicated a
//! frame) can discard stale replies instead of mis-pairing them. All
//! quantities are encoded exactly: `f64` fields travel as their IEEE-754 bit
//! patterns, so a reading decoded on the far side is bit-identical to the
//! one the agent produced — the foundation of the clean-link equivalence
//! guarantee.
//!
//! The vendored `serde` in this workspace is a compile-only stand-in (no
//! runtime serializer exists in the offline build environment), so the codec
//! here is hand-rolled over the same `messages.rs` types the in-memory bus
//! passes by value.

use recharge_battery::BbuState;
use recharge_dynamo::PowerReading;
use recharge_units::{Amperes, Dod, Priority, RackId, SimTime, Watts};

/// Protocol version carried in every payload; peers reject mismatches.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default upper bound on a frame payload; anything larger is treated as a
/// corrupt stream and the connection is dropped. Batched reading frames for
/// very large fleets can legitimately exceed this — the cap is a knob on
/// [`RpcMeshConfig`](crate::backend::RpcMeshConfig::max_frame_len).
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// One controller command inside a [`Request::ApplyCommandBatch`] frame.
///
/// Exactly the mutating half of the [`AgentBus`](recharge_dynamo::AgentBus)
/// surface, so a batch replays per-rack calls verbatim on the server side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AgentCommand {
    /// Force a rack's BBU charging current.
    SetChargeOverride(RackId, Amperes),
    /// Return a rack's charger to automatic current selection.
    ClearChargeOverride(RackId),
    /// Suspend or resume a rack's battery charging.
    SetChargePostponed(RackId, bool),
    /// Cap a rack's server power.
    CapServers(RackId, Watts),
    /// Remove a rack's server power cap.
    UncapServers(RackId),
}

impl AgentCommand {
    /// The rack this command addresses.
    #[must_use]
    pub fn rack(&self) -> RackId {
        match *self {
            AgentCommand::SetChargeOverride(rack, _)
            | AgentCommand::ClearChargeOverride(rack)
            | AgentCommand::SetChargePostponed(rack, _)
            | AgentCommand::CapServers(rack, _)
            | AgentCommand::UncapServers(rack) => rack,
        }
    }
}

/// Per-group aggregates reported by a server-hosted leaf control tick — the
/// only telemetry that crosses the wire in leaf-in-server mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupAggregate {
    /// Sum of powered racks' IT load.
    pub it_load: Watts,
    /// Sum of powered racks' recharge draw.
    pub recharge_power: Watts,
    /// Sum of server power shed to caps.
    pub capped_power: Watts,
    /// Charge-current overrides the leaf sent this tick.
    pub overrides_sent: u32,
    /// Racks the leaf throttled this tick.
    pub racks_throttled: u32,
}

/// A live-health snapshot served by an agent server — the payload of the
/// mesh's observability plane. The numeric fields are the cheap
/// at-a-glance summary; `text` carries the full metrics registry in the
/// Prometheus text exposition format for scraping or diffing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The server's shard index within the mesh (0 for a lone server).
    pub shard: u32,
    /// Racks hosted behind this server.
    pub racks: u32,
    /// Hosted racks currently under an unexpired coordination lease.
    pub coordinated: u32,
    /// Prometheus text exposition of the process metrics registry.
    pub text: String,
}

/// A replicated controller-brain snapshot as stored on an agent server:
/// the leader's fencing coordinates plus the opaque snapshot bytes
/// (`ControllerSnapshot::to_bytes` in `recharge-dynamo` — the wire layer
/// does not interpret them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredSnapshot {
    /// HA term of the leader that took the snapshot.
    pub term: u64,
    /// Replica id of that leader.
    pub leader: u32,
    /// Simulation tick the snapshot was taken at.
    pub tick: u64,
    /// The serialized controller brain.
    pub bytes: Vec<u8>,
}

/// A controller → agent-server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The racks hosted behind this server, in stable order.
    ListRacks,
    /// Read a rack's telemetry.
    Read(RackId),
    /// Force a rack's BBU charging current.
    SetChargeOverride(RackId, Amperes),
    /// Return a rack's charger to automatic current selection.
    ClearChargeOverride(RackId),
    /// Suspend or resume a rack's battery charging.
    SetChargePostponed(RackId, bool),
    /// Cap a rack's server power.
    CapServers(RackId, Watts),
    /// Remove a rack's server power cap.
    UncapServers(RackId),
    /// Liveness probe.
    Ping,
    /// Read every hosted rack in one round trip (fleet order); renews every
    /// hosted rack's coordination lease.
    ReadAllReadings,
    /// Apply a batch of commands in one round trip; renews each addressed
    /// rack's coordination lease.
    ApplyCommandBatch(Vec<AgentCommand>),
    /// Run the server-hosted leaf control tick at simulation time `now`,
    /// optionally re-budgeting the leaf's power limit first. Renews every
    /// hosted rack's coordination lease.
    TickLeaf {
        /// The controller's current simulation time.
        now: SimTime,
        /// Power budget assigned by the upper tier for this tick; `None`
        /// keeps the leaf's configured limit.
        budget: Option<Watts>,
    },
    /// Read the server's live health snapshot (registry metrics plus lease
    /// and hosting summary). Deliberately lease-neutral: scraping health
    /// must never keep a dead controller's coordination alive.
    ReadHealth,
    /// Apply a command batch fenced by the sender's HA term: the server
    /// rejects the whole batch (applying nothing) when `term` is below the
    /// highest term it has witnessed, so a stale leader that wakes after a
    /// takeover can never double-override a rack.
    ApplyFencedBatch {
        /// The sender's HA election term.
        term: u64,
        /// The sender's replica id.
        leader: u32,
        /// The commands to apply if the term is current.
        commands: Vec<AgentCommand>,
    },
    /// Replicate a controller-brain snapshot to this server so a standby can
    /// fetch it at failover. Accepted only from the highest term witnessed;
    /// lease-neutral, like [`Request::ReadHealth`] — replication is
    /// bookkeeping, not coordination.
    InstallSnapshot(StoredSnapshot),
    /// Fetch the last installed snapshot (takeover recovery). Lease-neutral.
    FetchSnapshot,
}

impl Request {
    /// The rack a request addresses, if any (`ListRacks`/`Ping` and the
    /// batched/leaf ops address the server itself).
    #[must_use]
    pub fn rack(&self) -> Option<RackId> {
        match self {
            Request::ListRacks
            | Request::Ping
            | Request::ReadAllReadings
            | Request::ApplyCommandBatch(_)
            | Request::TickLeaf { .. }
            | Request::ReadHealth
            | Request::ApplyFencedBatch { .. }
            | Request::InstallSnapshot(_)
            | Request::FetchSnapshot => None,
            Request::Read(rack)
            | Request::SetChargeOverride(rack, _)
            | Request::ClearChargeOverride(rack)
            | Request::SetChargePostponed(rack, _)
            | Request::CapServers(rack, _)
            | Request::UncapServers(rack) => Some(*rack),
        }
    }
}

/// An agent-server → controller reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::ListRacks`].
    Racks(Vec<RackId>),
    /// Reply to [`Request::Read`]: `None` when the rack is not hosted here.
    Reading(Option<PowerReading>),
    /// Reply to a command.
    Ack,
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::ReadAllReadings`]: every hosted rack, fleet order.
    Readings(Vec<PowerReading>),
    /// Reply to [`Request::ApplyCommandBatch`]: commands applied (addressed
    /// racks actually hosted here).
    BatchAck(u32),
    /// Reply to [`Request::TickLeaf`].
    GroupAggregate(GroupAggregate),
    /// Reply to [`Request::ReadHealth`].
    Health(HealthReport),
    /// Reply to [`Request::ApplyFencedBatch`]: whether the term was current
    /// (and the batch applied), the server's highest witnessed term, and how
    /// many commands took effect (0 when fenced).
    FencedAck {
        /// `true` when the batch's term was accepted and applied.
        accepted: bool,
        /// The server's highest witnessed term after this request.
        term: u64,
        /// Commands applied (addressed racks actually hosted here).
        applied: u32,
    },
    /// Reply to [`Request::InstallSnapshot`]: whether the snapshot was
    /// stored, plus the server's highest witnessed term.
    SnapshotAck {
        /// `true` when the snapshot's term was accepted and stored.
        accepted: bool,
        /// The server's highest witnessed term after this request.
        term: u64,
    },
    /// Reply to [`Request::FetchSnapshot`]: the last stored snapshot, if any.
    Snapshot(Option<StoredSnapshot>),
}

/// A malformed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message did.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Peer speaks a different protocol version.
    BadVersion(u8),
    /// An enum discriminant outside its legal range.
    BadEnum(&'static str, u8),
    /// Trailing bytes after a complete message.
    TrailingBytes,
    /// A frame longer than the configured cap (carried inside the
    /// `InvalidData` [`io::Error`](std::io::Error) frame I/O returns, so
    /// callers can downcast instead of parsing message text).
    FrameTooLarge {
        /// The offending frame's payload length.
        len: u32,
        /// The configured cap it exceeded.
        limit: u32,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v} (expected {PROTOCOL_VERSION})")
            }
            WireError::BadEnum(what, v) => write!(f, "illegal {what} discriminant {v}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::FrameTooLarge { len, limit } => {
                write!(f, "frame length {len} exceeds the {limit}-byte cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

// Request opcodes.
const OP_LIST_RACKS: u8 = 0x01;
const OP_READ: u8 = 0x02;
const OP_SET_OVERRIDE: u8 = 0x03;
const OP_CLEAR_OVERRIDE: u8 = 0x04;
const OP_SET_POSTPONED: u8 = 0x05;
const OP_CAP: u8 = 0x06;
const OP_UNCAP: u8 = 0x07;
const OP_PING: u8 = 0x08;
const OP_READ_ALL: u8 = 0x09;
const OP_APPLY_BATCH: u8 = 0x0A;
const OP_TICK_LEAF: u8 = 0x0B;
const OP_READ_HEALTH: u8 = 0x0C;
const OP_APPLY_FENCED_BATCH: u8 = 0x0D;
const OP_INSTALL_SNAPSHOT: u8 = 0x0E;
const OP_FETCH_SNAPSHOT: u8 = 0x0F;
// Response opcodes (high bit set).
const OP_RACKS: u8 = 0x81;
const OP_READING: u8 = 0x82;
const OP_ACK: u8 = 0x83;
const OP_PONG: u8 = 0x84;
const OP_READINGS: u8 = 0x85;
const OP_BATCH_ACK: u8 = 0x86;
const OP_GROUP_AGGREGATE: u8 = 0x87;
const OP_HEALTH: u8 = 0x88;
const OP_FENCED_ACK: u8 = 0x89;
const OP_SNAPSHOT_ACK: u8 = 0x8A;
const OP_SNAPSHOT: u8 = 0x8B;

// Command tags inside an `ApplyCommandBatch` body.
const CMD_SET_OVERRIDE: u8 = 0;
const CMD_CLEAR_OVERRIDE: u8 = 1;
const CMD_SET_POSTPONED: u8 = 2;
const CMD_CAP: u8 = 3;
const CMD_UNCAP: u8 = 4;

/// Encoded size of one [`PowerReading`] in a batched frame: rack u32,
/// priority u8, present u8, five f64 fields, bbu state u8.
const READING_WIRE_BYTES: usize = 4 + 1 + 1 + 8 * 5 + 1;
/// Minimum encoded size of one [`AgentCommand`]: tag u8 + rack u32.
const COMMAND_WIRE_MIN_BYTES: usize = 1 + 4;

/// Little-endian byte-buffer writer.
struct Writer(Vec<u8>);

impl Writer {
    fn new() -> Self {
        Writer(Vec::with_capacity(96))
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn rack(&mut self, rack: RackId) {
        self.u32(rack.index());
    }
}

/// Little-endian byte-buffer reader.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.0.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn rack(&mut self) -> Result<RackId, WireError> {
        Ok(RackId::new(self.u32()?))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::BadEnum("bool", v)),
        }
    }

    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn put_priority(w: &mut Writer, priority: Priority) {
    w.u8(priority.rank());
}

fn get_priority(r: &mut Reader<'_>) -> Result<Priority, WireError> {
    match r.u8()? {
        1 => Ok(Priority::P1),
        2 => Ok(Priority::P2),
        3 => Ok(Priority::P3),
        v => Err(WireError::BadEnum("priority", v)),
    }
}

fn put_bbu_state(w: &mut Writer, state: BbuState) {
    w.u8(match state {
        BbuState::FullyCharged => 0,
        BbuState::Charging => 1,
        BbuState::Discharging => 2,
        BbuState::FullyDischarged => 3,
    });
}

fn get_bbu_state(r: &mut Reader<'_>) -> Result<BbuState, WireError> {
    match r.u8()? {
        0 => Ok(BbuState::FullyCharged),
        1 => Ok(BbuState::Charging),
        2 => Ok(BbuState::Discharging),
        3 => Ok(BbuState::FullyDischarged),
        v => Err(WireError::BadEnum("bbu state", v)),
    }
}

fn put_reading(w: &mut Writer, reading: &PowerReading) {
    w.rack(reading.rack);
    put_priority(w, reading.priority);
    w.u8(u8::from(reading.input_power_present));
    w.f64(reading.it_load.as_watts());
    w.f64(reading.recharge_power.as_watts());
    put_bbu_state(w, reading.bbu_state);
    w.f64(reading.event_dod.value());
    w.f64(reading.dod.value());
    w.f64(reading.capped_power.as_watts());
}

fn get_reading(r: &mut Reader<'_>) -> Result<PowerReading, WireError> {
    Ok(PowerReading {
        rack: r.rack()?,
        priority: get_priority(r)?,
        input_power_present: r.bool()?,
        it_load: Watts::new(r.f64()?),
        recharge_power: Watts::new(r.f64()?),
        bbu_state: get_bbu_state(r)?,
        event_dod: Dod::new(r.f64()?),
        dod: Dod::new(r.f64()?),
        capped_power: Watts::new(r.f64()?),
    })
}

fn put_command(w: &mut Writer, command: &AgentCommand) {
    match *command {
        AgentCommand::SetChargeOverride(rack, current) => {
            w.u8(CMD_SET_OVERRIDE);
            w.rack(rack);
            w.f64(current.as_amps());
        }
        AgentCommand::ClearChargeOverride(rack) => {
            w.u8(CMD_CLEAR_OVERRIDE);
            w.rack(rack);
        }
        AgentCommand::SetChargePostponed(rack, postponed) => {
            w.u8(CMD_SET_POSTPONED);
            w.rack(rack);
            w.u8(u8::from(postponed));
        }
        AgentCommand::CapServers(rack, limit) => {
            w.u8(CMD_CAP);
            w.rack(rack);
            w.f64(limit.as_watts());
        }
        AgentCommand::UncapServers(rack) => {
            w.u8(CMD_UNCAP);
            w.rack(rack);
        }
    }
}

fn get_command(r: &mut Reader<'_>) -> Result<AgentCommand, WireError> {
    match r.u8()? {
        CMD_SET_OVERRIDE => {
            let rack = r.rack()?;
            Ok(AgentCommand::SetChargeOverride(
                rack,
                Amperes::new(r.f64()?),
            ))
        }
        CMD_CLEAR_OVERRIDE => Ok(AgentCommand::ClearChargeOverride(r.rack()?)),
        CMD_SET_POSTPONED => {
            let rack = r.rack()?;
            Ok(AgentCommand::SetChargePostponed(rack, r.bool()?))
        }
        CMD_CAP => {
            let rack = r.rack()?;
            Ok(AgentCommand::CapServers(rack, Watts::new(r.f64()?)))
        }
        CMD_UNCAP => Ok(AgentCommand::UncapServers(r.rack()?)),
        v => Err(WireError::BadEnum("command", v)),
    }
}

fn put_aggregate(w: &mut Writer, aggregate: &GroupAggregate) {
    w.f64(aggregate.it_load.as_watts());
    w.f64(aggregate.recharge_power.as_watts());
    w.f64(aggregate.capped_power.as_watts());
    w.u32(aggregate.overrides_sent);
    w.u32(aggregate.racks_throttled);
}

fn put_health(w: &mut Writer, health: &HealthReport) {
    w.u32(health.shard);
    w.u32(health.racks);
    w.u32(health.coordinated);
    let bytes = health.text.as_bytes();
    w.u32(bytes.len() as u32);
    w.0.extend_from_slice(bytes);
}

fn get_health(r: &mut Reader<'_>) -> Result<HealthReport, WireError> {
    let shard = r.u32()?;
    let racks = r.u32()?;
    let coordinated = r.u32()?;
    let len = r.u32()? as usize;
    if len > r.remaining() {
        return Err(WireError::Truncated);
    }
    let text = core::str::from_utf8(r.take(len)?)
        .map_err(|_| WireError::BadEnum("utf-8 health text", 0))?
        .to_owned();
    Ok(HealthReport {
        shard,
        racks,
        coordinated,
        text,
    })
}

fn put_stored_snapshot(w: &mut Writer, snapshot: &StoredSnapshot) {
    w.u64(snapshot.term);
    w.u32(snapshot.leader);
    w.u64(snapshot.tick);
    w.u32(snapshot.bytes.len() as u32);
    w.0.extend_from_slice(&snapshot.bytes);
}

fn get_stored_snapshot(r: &mut Reader<'_>) -> Result<StoredSnapshot, WireError> {
    let term = r.u64()?;
    let leader = r.u32()?;
    let tick = r.u64()?;
    let len = r.u32()? as usize;
    if len > r.remaining() {
        return Err(WireError::Truncated);
    }
    Ok(StoredSnapshot {
        term,
        leader,
        tick,
        bytes: r.take(len)?.to_vec(),
    })
}

fn get_aggregate(r: &mut Reader<'_>) -> Result<GroupAggregate, WireError> {
    Ok(GroupAggregate {
        it_load: Watts::new(r.f64()?),
        recharge_power: Watts::new(r.f64()?),
        capped_power: Watts::new(r.f64()?),
        overrides_sent: r.u32()?,
        racks_throttled: r.u32()?,
    })
}

fn header(w: &mut Writer, id: u64, opcode: u8) {
    w.u8(PROTOCOL_VERSION);
    w.u64(id);
    w.u8(opcode);
}

fn read_header(r: &mut Reader<'_>) -> Result<(u64, u8), WireError> {
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let id = r.u64()?;
    let opcode = r.u8()?;
    Ok((id, opcode))
}

/// Encodes a request payload (no length prefix).
#[must_use]
pub fn encode_request(id: u64, request: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match request {
        Request::ListRacks => header(&mut w, id, OP_LIST_RACKS),
        Request::Read(rack) => {
            header(&mut w, id, OP_READ);
            w.rack(*rack);
        }
        Request::SetChargeOverride(rack, current) => {
            header(&mut w, id, OP_SET_OVERRIDE);
            w.rack(*rack);
            w.f64(current.as_amps());
        }
        Request::ClearChargeOverride(rack) => {
            header(&mut w, id, OP_CLEAR_OVERRIDE);
            w.rack(*rack);
        }
        Request::SetChargePostponed(rack, postponed) => {
            header(&mut w, id, OP_SET_POSTPONED);
            w.rack(*rack);
            w.u8(u8::from(*postponed));
        }
        Request::CapServers(rack, limit) => {
            header(&mut w, id, OP_CAP);
            w.rack(*rack);
            w.f64(limit.as_watts());
        }
        Request::UncapServers(rack) => {
            header(&mut w, id, OP_UNCAP);
            w.rack(*rack);
        }
        Request::Ping => header(&mut w, id, OP_PING),
        Request::ReadAllReadings => header(&mut w, id, OP_READ_ALL),
        Request::ApplyCommandBatch(commands) => {
            header(&mut w, id, OP_APPLY_BATCH);
            w.u32(commands.len() as u32);
            for command in commands {
                put_command(&mut w, command);
            }
        }
        Request::TickLeaf { now, budget } => {
            header(&mut w, id, OP_TICK_LEAF);
            w.f64(now.as_secs());
            match budget {
                Some(budget) => {
                    w.u8(1);
                    w.f64(budget.as_watts());
                }
                None => w.u8(0),
            }
        }
        Request::ReadHealth => header(&mut w, id, OP_READ_HEALTH),
        Request::ApplyFencedBatch {
            term,
            leader,
            commands,
        } => {
            header(&mut w, id, OP_APPLY_FENCED_BATCH);
            w.u64(*term);
            w.u32(*leader);
            w.u32(commands.len() as u32);
            for command in commands {
                put_command(&mut w, command);
            }
        }
        Request::InstallSnapshot(snapshot) => {
            header(&mut w, id, OP_INSTALL_SNAPSHOT);
            put_stored_snapshot(&mut w, snapshot);
        }
        Request::FetchSnapshot => header(&mut w, id, OP_FETCH_SNAPSHOT),
    }
    w.0
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), WireError> {
    let mut r = Reader(payload);
    let (id, opcode) = read_header(&mut r)?;
    let request = match opcode {
        OP_LIST_RACKS => Request::ListRacks,
        OP_READ => Request::Read(r.rack()?),
        OP_SET_OVERRIDE => Request::SetChargeOverride(r.rack()?, Amperes::new(r.f64()?)),
        OP_CLEAR_OVERRIDE => Request::ClearChargeOverride(r.rack()?),
        OP_SET_POSTPONED => {
            let rack = r.rack()?;
            Request::SetChargePostponed(rack, r.bool()?)
        }
        OP_CAP => {
            let rack = r.rack()?;
            Request::CapServers(rack, Watts::new(r.f64()?))
        }
        OP_UNCAP => Request::UncapServers(r.rack()?),
        OP_PING => Request::Ping,
        OP_READ_ALL => Request::ReadAllReadings,
        OP_APPLY_BATCH => {
            let count = r.u32()? as usize;
            // A count the remaining payload cannot possibly hold is corrupt.
            if count > r.remaining() / COMMAND_WIRE_MIN_BYTES {
                return Err(WireError::Truncated);
            }
            let mut commands = Vec::with_capacity(count);
            for _ in 0..count {
                commands.push(get_command(&mut r)?);
            }
            Request::ApplyCommandBatch(commands)
        }
        OP_TICK_LEAF => {
            let now = SimTime::from_secs(r.f64()?);
            let budget = match r.u8()? {
                0 => None,
                1 => Some(Watts::new(r.f64()?)),
                v => return Err(WireError::BadEnum("option", v)),
            };
            Request::TickLeaf { now, budget }
        }
        OP_READ_HEALTH => Request::ReadHealth,
        OP_APPLY_FENCED_BATCH => {
            let term = r.u64()?;
            let leader = r.u32()?;
            let count = r.u32()? as usize;
            if count > r.remaining() / COMMAND_WIRE_MIN_BYTES {
                return Err(WireError::Truncated);
            }
            let mut commands = Vec::with_capacity(count);
            for _ in 0..count {
                commands.push(get_command(&mut r)?);
            }
            Request::ApplyFencedBatch {
                term,
                leader,
                commands,
            }
        }
        OP_INSTALL_SNAPSHOT => Request::InstallSnapshot(get_stored_snapshot(&mut r)?),
        OP_FETCH_SNAPSHOT => Request::FetchSnapshot,
        op => return Err(WireError::BadOpcode(op)),
    };
    r.finish()?;
    Ok((id, request))
}

/// Encodes a response payload (no length prefix).
#[must_use]
pub fn encode_response(id: u64, response: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match response {
        Response::Racks(racks) => {
            header(&mut w, id, OP_RACKS);
            w.u32(racks.len() as u32);
            for &rack in racks {
                w.rack(rack);
            }
        }
        Response::Reading(reading) => {
            header(&mut w, id, OP_READING);
            match reading {
                Some(reading) => {
                    w.u8(1);
                    put_reading(&mut w, reading);
                }
                None => w.u8(0),
            }
        }
        Response::Ack => header(&mut w, id, OP_ACK),
        Response::Pong => header(&mut w, id, OP_PONG),
        Response::Readings(readings) => {
            header(&mut w, id, OP_READINGS);
            w.u32(readings.len() as u32);
            for reading in readings {
                put_reading(&mut w, reading);
            }
        }
        Response::BatchAck(applied) => {
            header(&mut w, id, OP_BATCH_ACK);
            w.u32(*applied);
        }
        Response::GroupAggregate(aggregate) => {
            header(&mut w, id, OP_GROUP_AGGREGATE);
            put_aggregate(&mut w, aggregate);
        }
        Response::Health(health) => {
            header(&mut w, id, OP_HEALTH);
            put_health(&mut w, health);
        }
        Response::FencedAck {
            accepted,
            term,
            applied,
        } => {
            header(&mut w, id, OP_FENCED_ACK);
            w.u8(u8::from(*accepted));
            w.u64(*term);
            w.u32(*applied);
        }
        Response::SnapshotAck { accepted, term } => {
            header(&mut w, id, OP_SNAPSHOT_ACK);
            w.u8(u8::from(*accepted));
            w.u64(*term);
        }
        Response::Snapshot(snapshot) => {
            header(&mut w, id, OP_SNAPSHOT);
            match snapshot {
                Some(snapshot) => {
                    w.u8(1);
                    put_stored_snapshot(&mut w, snapshot);
                }
                None => w.u8(0),
            }
        }
    }
    w.0
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), WireError> {
    let mut r = Reader(payload);
    let (id, opcode) = read_header(&mut r)?;
    let response = match opcode {
        OP_RACKS => {
            let count = r.u32()? as usize;
            // A count that could not fit the remaining payload is corrupt.
            if count > MAX_FRAME_LEN as usize / 4 {
                return Err(WireError::Truncated);
            }
            let mut racks = Vec::with_capacity(count);
            for _ in 0..count {
                racks.push(r.rack()?);
            }
            Response::Racks(racks)
        }
        OP_READING => match r.u8()? {
            0 => Response::Reading(None),
            1 => Response::Reading(Some(get_reading(&mut r)?)),
            v => return Err(WireError::BadEnum("option", v)),
        },
        OP_ACK => Response::Ack,
        OP_PONG => Response::Pong,
        OP_READINGS => {
            let count = r.u32()? as usize;
            if count > r.remaining() / READING_WIRE_BYTES {
                return Err(WireError::Truncated);
            }
            let mut readings = Vec::with_capacity(count);
            for _ in 0..count {
                readings.push(get_reading(&mut r)?);
            }
            Response::Readings(readings)
        }
        OP_BATCH_ACK => Response::BatchAck(r.u32()?),
        OP_GROUP_AGGREGATE => Response::GroupAggregate(get_aggregate(&mut r)?),
        OP_HEALTH => Response::Health(get_health(&mut r)?),
        OP_FENCED_ACK => {
            let accepted = r.bool()?;
            let term = r.u64()?;
            let applied = r.u32()?;
            Response::FencedAck {
                accepted,
                term,
                applied,
            }
        }
        OP_SNAPSHOT_ACK => {
            let accepted = r.bool()?;
            let term = r.u64()?;
            Response::SnapshotAck { accepted, term }
        }
        OP_SNAPSHOT => match r.u8()? {
            0 => Response::Snapshot(None),
            1 => Response::Snapshot(Some(get_stored_snapshot(&mut r)?)),
            v => return Err(WireError::BadEnum("option", v)),
        },
        op => return Err(WireError::BadOpcode(op)),
    };
    r.finish()?;
    Ok((id, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading() -> PowerReading {
        PowerReading {
            rack: RackId::new(42),
            priority: Priority::P2,
            input_power_present: true,
            it_load: Watts::new(6_000.123_456_789),
            recharge_power: Watts::new(701.000_000_001),
            bbu_state: BbuState::Charging,
            event_dod: Dod::new(0.300_000_000_000_01),
            dod: Dod::new(0.123_456_789),
            capped_power: Watts::new(0.0),
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::ListRacks,
            Request::Read(RackId::new(7)),
            Request::SetChargeOverride(RackId::new(1), Amperes::new(2.345_678_9)),
            Request::ClearChargeOverride(RackId::new(2)),
            Request::SetChargePostponed(RackId::new(3), true),
            Request::CapServers(RackId::new(4), Watts::from_kilowatts(4.2)),
            Request::UncapServers(RackId::new(5)),
            Request::Ping,
            Request::ReadAllReadings,
            Request::ApplyCommandBatch(Vec::new()),
            Request::ApplyCommandBatch(vec![
                AgentCommand::SetChargeOverride(RackId::new(0), Amperes::new(3.241_59)),
                AgentCommand::ClearChargeOverride(RackId::new(1)),
                AgentCommand::SetChargePostponed(RackId::new(2), true),
                AgentCommand::CapServers(RackId::new(3), Watts::from_kilowatts(5.5)),
                AgentCommand::UncapServers(RackId::new(4)),
            ]),
            Request::TickLeaf {
                now: SimTime::from_secs(612.0),
                budget: None,
            },
            Request::TickLeaf {
                now: SimTime::from_secs(613.0),
                budget: Some(Watts::from_kilowatts(47.5)),
            },
            Request::ReadHealth,
            Request::ApplyFencedBatch {
                term: 3,
                leader: 1,
                commands: vec![
                    AgentCommand::SetChargeOverride(RackId::new(0), Amperes::new(16.4)),
                    AgentCommand::UncapServers(RackId::new(4)),
                ],
            },
            Request::ApplyFencedBatch {
                term: u64::MAX,
                leader: 0,
                commands: Vec::new(),
            },
            Request::InstallSnapshot(StoredSnapshot {
                term: 2,
                leader: 1,
                tick: 612,
                bytes: vec![1, 0, 0, 0, 0, 0, 0, 0, 0],
            }),
            Request::InstallSnapshot(StoredSnapshot {
                term: 0,
                leader: 0,
                tick: 0,
                bytes: Vec::new(),
            }),
            Request::FetchSnapshot,
        ];
        for (i, request) in requests.iter().enumerate() {
            let id = 1000 + i as u64;
            let payload = encode_request(id, request);
            assert_eq!(decode_request(&payload), Ok((id, request.clone())));
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Racks(vec![RackId::new(0), RackId::new(9)]),
            Response::Racks(Vec::new()),
            Response::Reading(Some(reading())),
            Response::Reading(None),
            Response::Ack,
            Response::Pong,
            Response::Readings(vec![reading(), reading()]),
            Response::Readings(Vec::new()),
            Response::BatchAck(7),
            Response::GroupAggregate(GroupAggregate {
                it_load: Watts::from_kilowatts(84.0),
                recharge_power: Watts::new(2_801.000_000_001),
                capped_power: Watts::new(17.25),
                overrides_sent: 14,
                racks_throttled: 3,
            }),
            Response::Health(HealthReport {
                shard: 3,
                racks: 12,
                coordinated: 11,
                text: "# TYPE net_rpc_calls counter\nnet_rpc_calls 42\n".to_owned(),
            }),
            Response::Health(HealthReport {
                shard: 0,
                racks: 0,
                coordinated: 0,
                text: String::new(),
            }),
            Response::FencedAck {
                accepted: true,
                term: 4,
                applied: 12,
            },
            Response::FencedAck {
                accepted: false,
                term: 9,
                applied: 0,
            },
            Response::SnapshotAck {
                accepted: true,
                term: 4,
            },
            Response::Snapshot(Some(StoredSnapshot {
                term: 4,
                leader: 2,
                tick: 900,
                bytes: vec![0xDE, 0xAD, 0xBE, 0xEF],
            })),
            Response::Snapshot(None),
        ];
        for (i, response) in responses.iter().enumerate() {
            let id = u64::MAX - i as u64;
            let payload = encode_response(id, response);
            assert_eq!(decode_response(&payload), Ok((id, response.clone())));
        }
    }

    #[test]
    fn readings_survive_bit_exactly() {
        // The equivalence guarantee rests on f64 fields crossing the wire as
        // raw bit patterns — no text formatting, no rounding.
        let original = reading();
        let payload = encode_response(1, &Response::Reading(Some(original)));
        let (_, decoded) = decode_response(&payload).expect("decodes");
        let Response::Reading(Some(decoded)) = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(
            decoded.it_load.as_watts().to_bits(),
            original.it_load.as_watts().to_bits()
        );
        assert_eq!(
            decoded.event_dod.value().to_bits(),
            original.event_dod.value().to_bits()
        );
        assert_eq!(decoded, original);
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        assert_eq!(decode_request(&[]), Err(WireError::Truncated));
        // Wrong version byte.
        let mut payload = encode_request(1, &Request::Ping);
        payload[0] = 99;
        assert_eq!(decode_request(&payload), Err(WireError::BadVersion(99)));
        // Unknown opcode.
        let mut payload = encode_request(1, &Request::Ping);
        payload[9] = 0x7f;
        assert_eq!(decode_request(&payload), Err(WireError::BadOpcode(0x7f)));
        // Truncated body.
        let payload = encode_request(1, &Request::Read(RackId::new(3)));
        assert_eq!(
            decode_request(&payload[..payload.len() - 1]),
            Err(WireError::Truncated)
        );
        // Trailing garbage.
        let mut payload = encode_request(1, &Request::Ping);
        payload.push(0);
        assert_eq!(decode_request(&payload), Err(WireError::TrailingBytes));
        // Response decoded as request and vice versa.
        let payload = encode_response(1, &Response::Ack);
        assert_eq!(decode_request(&payload), Err(WireError::BadOpcode(OP_ACK)));
        // A batch whose claimed count cannot fit the remaining bytes.
        let mut payload = encode_request(1, &Request::ApplyCommandBatch(Vec::new()));
        let count_at = payload.len() - 4;
        payload[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload), Err(WireError::Truncated));
        // Same for a readings frame.
        let mut payload = encode_response(1, &Response::Readings(Vec::new()));
        let count_at = payload.len() - 4;
        payload[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_response(&payload), Err(WireError::Truncated));
        // A health text length that cannot fit the remaining bytes.
        let mut payload = encode_response(
            1,
            &Response::Health(HealthReport {
                shard: 0,
                racks: 0,
                coordinated: 0,
                text: String::new(),
            }),
        );
        let len_at = payload.len() - 4;
        payload[len_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_response(&payload), Err(WireError::Truncated));
        // Non-UTF-8 health text.
        let mut payload = encode_response(
            1,
            &Response::Health(HealthReport {
                shard: 0,
                racks: 0,
                coordinated: 0,
                text: "a".to_owned(),
            }),
        );
        let last = payload.len() - 1;
        payload[last] = 0xFF;
        assert_eq!(
            decode_response(&payload),
            Err(WireError::BadEnum("utf-8 health text", 0))
        );
        // A snapshot byte-length that cannot fit the remaining bytes.
        let mut payload = encode_request(
            1,
            &Request::InstallSnapshot(StoredSnapshot {
                term: 1,
                leader: 0,
                tick: 0,
                bytes: Vec::new(),
            }),
        );
        let len_at = payload.len() - 4;
        payload[len_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload), Err(WireError::Truncated));
        // A fenced batch whose claimed count cannot fit the remaining bytes.
        let mut payload = encode_request(
            1,
            &Request::ApplyFencedBatch {
                term: 1,
                leader: 0,
                commands: Vec::new(),
            },
        );
        let count_at = payload.len() - 4;
        payload[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload), Err(WireError::Truncated));
        // An unknown command tag inside a batch.
        let mut payload = encode_request(
            1,
            &Request::ApplyCommandBatch(vec![AgentCommand::UncapServers(RackId::new(0))]),
        );
        payload[14] = 99;
        assert_eq!(
            decode_request(&payload),
            Err(WireError::BadEnum("command", 99))
        );
    }

    #[test]
    fn batched_readings_survive_bit_exactly() {
        let original = reading();
        let payload = encode_response(9, &Response::Readings(vec![original, original]));
        let (_, decoded) = decode_response(&payload).expect("decodes");
        let Response::Readings(decoded) = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(decoded.len(), 2);
        for reading in decoded {
            assert_eq!(
                reading.recharge_power.as_watts().to_bits(),
                original.recharge_power.as_watts().to_bits()
            );
            assert_eq!(reading, original);
        }
    }

    #[test]
    fn reading_wire_size_matches_the_sanity_bound() {
        // The count-vs-remaining sanity check in `decode_response` divides by
        // this constant; keep it honest against the real encoder.
        let lone = encode_response(0, &Response::Readings(vec![reading()]));
        let empty = encode_response(0, &Response::Readings(Vec::new()));
        assert_eq!(lone.len() - empty.len(), READING_WIRE_BYTES);
        let lone = encode_request(
            0,
            &Request::ApplyCommandBatch(vec![AgentCommand::UncapServers(RackId::new(1))]),
        );
        let empty = encode_request(0, &Request::ApplyCommandBatch(Vec::new()));
        assert_eq!(lone.len() - empty.len(), COMMAND_WIRE_MIN_BYTES);
    }

    #[test]
    fn request_rack_scope() {
        assert_eq!(Request::ListRacks.rack(), None);
        assert_eq!(Request::FetchSnapshot.rack(), None);
        assert_eq!(
            Request::ApplyFencedBatch {
                term: 1,
                leader: 0,
                commands: Vec::new()
            }
            .rack(),
            None
        );
        assert_eq!(Request::Ping.rack(), None);
        assert_eq!(Request::ReadAllReadings.rack(), None);
        assert_eq!(Request::ApplyCommandBatch(Vec::new()).rack(), None);
        assert_eq!(
            Request::TickLeaf {
                now: SimTime::from_secs(0.0),
                budget: None
            }
            .rack(),
            None
        );
        assert_eq!(Request::Read(RackId::new(4)).rack(), Some(RackId::new(4)));
        assert_eq!(
            Request::CapServers(RackId::new(5), Watts::ZERO).rack(),
            Some(RackId::new(5))
        );
        assert_eq!(
            AgentCommand::SetChargePostponed(RackId::new(6), false).rack(),
            RackId::new(6)
        );
    }
}
