//! Transport endpoints: TCP and Unix-domain sockets behind one façade.
//!
//! The mesh is std-only — no async runtime — so connections are plain
//! blocking streams served by threads. [`NetStream`] and [`NetListener`]
//! erase the TCP/UDS split so the framing, server, and client layers are
//! written once. Framed I/O lives here too: [`send_frame`] and [`recv_frame`]
//! move one length-prefixed payload at a time and are careful about the two
//! realities of stream sockets — short reads (a frame can arrive in many
//! pieces) and read timeouts used as poll intervals (a timeout mid-frame must
//! keep accumulating, not corrupt the stream position).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::wire::WireError;

/// Where an [`AgentServer`](crate::server::AgentServer) listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path (Unix targets only).
    Unix(PathBuf),
}

impl Endpoint {
    /// An ephemeral loopback TCP endpoint (`127.0.0.1:0`); the listener's
    /// [`local_endpoint`](NetListener::local_endpoint) reports the bound port.
    #[must_use]
    pub fn loopback() -> Self {
        Endpoint::Tcp(SocketAddr::from(([127, 0, 0, 1], 0)))
    }

    /// A fresh Unix-domain socket path under the system temp directory,
    /// unique per process and call.
    #[cfg(unix)]
    #[must_use]
    pub fn unix_temp() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut path = std::env::temp_dir();
        path.push(format!("recharge-net-{}-{n}.sock", std::process::id()));
        Endpoint::Unix(path)
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A connected stream over either transport.
#[derive(Debug)]
pub enum NetStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl NetStream {
    /// Connects to `endpoint`, bounded by `timeout`.
    ///
    /// TCP uses `connect_timeout` and disables Nagle — without `TCP_NODELAY`
    /// the request/response cadence of the bus would eat a delayed-ack stall
    /// on every call.
    pub fn connect(endpoint: &Endpoint, timeout: Duration) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect_timeout(addr, timeout)?;
                stream.set_nodelay(true)?;
                Ok(NetStream::Tcp(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(NetStream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this target",
            )),
        }
    }

    /// Sets the read timeout used as the poll interval by [`recv_frame`].
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            NetStream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener over either transport.
#[derive(Debug)]
pub enum NetListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener (kept with its path for cleanup on drop).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl NetListener {
    /// Binds to `endpoint` in non-blocking mode (the accept loop polls a
    /// shutdown flag between attempts).
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(NetListener::Tcp(listener))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A stale socket file from a crashed prior run would make
                // bind fail with AddrInUse; remove it first.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(NetListener::Unix(listener, path.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this target",
            )),
        }
    }

    /// The endpoint actually bound — resolves port 0 to the assigned port.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            NetListener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?)),
            #[cfg(unix)]
            NetListener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }

    /// Accepts one pending connection, or `WouldBlock` if none is queued.
    pub fn accept(&self) -> io::Result<NetStream> {
        match self {
            NetListener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                stream.set_nonblocking(false)?;
                Ok(NetStream::Tcp(stream))
            }
            #[cfg(unix)]
            NetListener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(NetStream::Unix(stream))
            }
        }
    }
}

#[cfg(unix)]
impl Drop for NetListener {
    fn drop(&mut self) {
        if let NetListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The typed oversize error: an `InvalidData` [`io::Error`] wrapping
/// [`WireError::FrameTooLarge`], recoverable via [`as_frame_too_large`]
/// instead of parsing message text.
fn oversize(len: u32, limit: u32) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        WireError::FrameTooLarge { len, limit },
    )
}

/// Extracts a [`WireError::FrameTooLarge`] from an I/O error produced by
/// [`send_frame`] or [`recv_frame`], if that is what it carries.
#[must_use]
pub fn as_frame_too_large(err: &io::Error) -> Option<WireError> {
    err.get_ref()
        .and_then(|inner| inner.downcast_ref::<WireError>())
        .filter(|wire| matches!(wire, WireError::FrameTooLarge { .. }))
        .copied()
}

/// Writes one frame: `u32` little-endian payload length, then the payload.
///
/// A payload longer than `max_frame_len` is refused before any bytes hit the
/// stream, with a typed [`WireError::FrameTooLarge`] inside the error.
pub fn send_frame(stream: &mut NetStream, payload: &[u8], max_frame_len: u32) -> io::Result<()> {
    if payload.len() > max_frame_len as usize {
        return Err(oversize(payload.len() as u32, max_frame_len));
    }
    let len = (payload.len() as u32).to_le_bytes();
    // One write per frame keeps packet boundaries tidy, but correctness only
    // needs the bytes in order.
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len);
    buf.extend_from_slice(payload);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Outcome of [`recv_frame`].
#[derive(Debug)]
pub enum FrameRead {
    /// A complete payload arrived.
    Frame(Vec<u8>),
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// `deadline` passed (or the poll-interval timeout fired with `deadline`
    /// unset) without a complete frame; no bytes are lost — the partial frame
    /// stays in `pending` for the next call.
    TimedOut,
}

/// Carry-over state for a partially received frame.
///
/// A read timeout can fire with half a length prefix or half a payload
/// already consumed from the socket; dropping those bytes would desynchronise
/// the stream permanently. Each connection owns one `FrameBuffer` that
/// survives across [`recv_frame`] calls.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    pending: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Discards any partial frame (used when a connection is abandoned).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

/// Receives one frame, accumulating across short reads and poll timeouts.
///
/// The stream's read timeout acts as the poll granularity; `deadline`, when
/// set, bounds the total wait. A clean EOF *between* frames reports
/// [`FrameRead::Closed`]; an EOF *mid-frame* is a protocol error.
pub fn recv_frame(
    stream: &mut NetStream,
    buffer: &mut FrameBuffer,
    deadline: Option<Instant>,
    max_frame_len: u32,
) -> io::Result<FrameRead> {
    let mut chunk = [0u8; 4096];
    loop {
        // A complete frame may already be buffered from a previous over-read.
        if buffer.pending.len() >= 4 {
            let len = u32::from_le_bytes(buffer.pending[..4].try_into().expect("4 bytes"));
            if len > max_frame_len {
                return Err(oversize(len, max_frame_len));
            }
            let total = 4 + len as usize;
            if buffer.pending.len() >= total {
                let payload = buffer.pending[4..total].to_vec();
                buffer.pending.drain(..total);
                return Ok(FrameRead::Frame(payload));
            }
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Ok(FrameRead::TimedOut);
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buffer.pending.is_empty() {
                    Ok(FrameRead::Closed)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            Ok(n) => buffer.pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if deadline.is_none() {
                    return Ok(FrameRead::TimedOut);
                }
                // Deadline-bounded read: the poll-interval timeout is not the
                // caller's deadline — loop and re-check.
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MAX_FRAME_LEN;
    use std::thread;

    fn pair() -> (NetStream, NetStream) {
        let listener = NetListener::bind(&Endpoint::loopback()).expect("bind");
        let endpoint = listener.local_endpoint().expect("endpoint");
        let client = NetStream::connect(&endpoint, Duration::from_secs(1)).expect("connect");
        let server = loop {
            match listener.accept() {
                Ok(stream) => break stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("accept: {e}"),
            }
        };
        (client, server)
    }

    #[test]
    fn frames_round_trip_over_loopback() {
        let (mut client, mut server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        let mut buffer = FrameBuffer::new();

        for payload in [&b"hello"[..], &[], &[0xAB; 10_000]] {
            send_frame(&mut client, payload, MAX_FRAME_LEN).expect("send");
            let deadline = Some(Instant::now() + Duration::from_secs(2));
            match recv_frame(&mut server, &mut buffer, deadline, MAX_FRAME_LEN).expect("recv") {
                FrameRead::Frame(got) => assert_eq!(got, payload),
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn two_frames_in_one_burst_split_correctly() {
        let (mut client, mut server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        send_frame(&mut client, b"first", MAX_FRAME_LEN).expect("send");
        send_frame(&mut client, b"second", MAX_FRAME_LEN).expect("send");

        let mut buffer = FrameBuffer::new();
        let deadline = Some(Instant::now() + Duration::from_secs(2));
        let FrameRead::Frame(a) =
            recv_frame(&mut server, &mut buffer, deadline, MAX_FRAME_LEN).expect("recv")
        else {
            panic!("expected first frame");
        };
        let FrameRead::Frame(b) =
            recv_frame(&mut server, &mut buffer, deadline, MAX_FRAME_LEN).expect("recv")
        else {
            panic!("expected second frame");
        };
        assert_eq!(a, b"first");
        assert_eq!(b, b"second");
    }

    #[test]
    fn timeout_mid_frame_preserves_partial_bytes() {
        let (mut client, mut server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(10)))
            .expect("timeout");
        let mut buffer = FrameBuffer::new();

        // Send only the length prefix and half the payload.
        let payload = b"split-frame";
        let len = (payload.len() as u32).to_le_bytes();
        {
            use std::io::Write as _;
            client.write_all(&len).expect("write len");
            client.write_all(&payload[..4]).expect("write half");
            client.flush().expect("flush");
        }
        let deadline = Some(Instant::now() + Duration::from_millis(40));
        match recv_frame(&mut server, &mut buffer, deadline, MAX_FRAME_LEN).expect("recv") {
            FrameRead::TimedOut => {}
            other => panic!("expected timeout, got {other:?}"),
        }

        // The remainder arrives; the buffered prefix must still be intact.
        {
            use std::io::Write as _;
            client.write_all(&payload[4..]).expect("write rest");
            client.flush().expect("flush");
        }
        let deadline = Some(Instant::now() + Duration::from_secs(2));
        match recv_frame(&mut server, &mut buffer, deadline, MAX_FRAME_LEN).expect("recv") {
            FrameRead::Frame(got) => assert_eq!(got, payload),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_between_frames_reports_closed() {
        let (client, mut server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        drop(client);
        let mut buffer = FrameBuffer::new();
        let deadline = Some(Instant::now() + Duration::from_secs(2));
        match recv_frame(&mut server, &mut buffer, deadline, MAX_FRAME_LEN).expect("recv") {
            FrameRead::Closed => {}
            other => panic!("expected closed, got {other:?}"),
        }
    }

    #[test]
    fn oversize_frame_is_rejected() {
        let (mut client, mut server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        {
            use std::io::Write as _;
            let bad_len = (MAX_FRAME_LEN + 1).to_le_bytes();
            client.write_all(&bad_len).expect("write");
            client.flush().expect("flush");
        }
        let mut buffer = FrameBuffer::new();
        let deadline = Some(Instant::now() + Duration::from_secs(2));
        let err =
            recv_frame(&mut server, &mut buffer, deadline, MAX_FRAME_LEN).expect_err("oversize");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(
            as_frame_too_large(&err),
            Some(WireError::FrameTooLarge {
                len: MAX_FRAME_LEN + 1,
                limit: MAX_FRAME_LEN,
            })
        );
    }

    #[test]
    fn frame_cap_boundary_is_exact() {
        // A payload exactly at the configured cap crosses; one byte more is
        // refused with the typed error — on both the send and receive sides.
        let cap = 64u32;
        let (mut client, mut server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        let mut buffer = FrameBuffer::new();

        let at_cap = vec![0x5A; cap as usize];
        send_frame(&mut client, &at_cap, cap).expect("at-cap send");
        let deadline = Some(Instant::now() + Duration::from_secs(2));
        match recv_frame(&mut server, &mut buffer, deadline, cap).expect("at-cap recv") {
            FrameRead::Frame(got) => assert_eq!(got, at_cap),
            other => panic!("expected frame, got {other:?}"),
        }

        // Send side: refused before any bytes hit the stream.
        let over = vec![0x5A; cap as usize + 1];
        let err = send_frame(&mut client, &over, cap).expect_err("oversize send");
        assert_eq!(
            as_frame_too_large(&err),
            Some(WireError::FrameTooLarge {
                len: cap + 1,
                limit: cap,
            })
        );

        // Receive side: a peer holding a larger cap can still send it; the
        // small-cap receiver rejects it with the typed error.
        send_frame(&mut client, &over, MAX_FRAME_LEN).expect("send past small cap");
        let deadline = Some(Instant::now() + Duration::from_secs(2));
        let err = recv_frame(&mut server, &mut buffer, deadline, cap).expect_err("oversize recv");
        assert_eq!(
            as_frame_too_large(&err),
            Some(WireError::FrameTooLarge {
                len: cap + 1,
                limit: cap,
            })
        );
        // Errors that are not FrameTooLarge do not downcast.
        assert_eq!(
            as_frame_too_large(&io::Error::new(io::ErrorKind::InvalidData, "other")),
            None
        );
    }

    #[cfg(unix)]
    #[test]
    fn unix_endpoint_round_trips() {
        let endpoint = Endpoint::unix_temp();
        let listener = NetListener::bind(&endpoint).expect("bind");
        let bound = listener.local_endpoint().expect("endpoint");
        let mut client = NetStream::connect(&bound, Duration::from_secs(1)).expect("connect");
        let mut server = loop {
            match listener.accept() {
                Ok(stream) => break stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("accept: {e}"),
            }
        };
        server
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        send_frame(&mut client, b"over unix", MAX_FRAME_LEN).expect("send");
        let mut buffer = FrameBuffer::new();
        let deadline = Some(Instant::now() + Duration::from_secs(2));
        match recv_frame(&mut server, &mut buffer, deadline, MAX_FRAME_LEN).expect("recv") {
            FrameRead::Frame(got) => assert_eq!(got, b"over unix"),
            other => panic!("expected frame, got {other:?}"),
        }
        // Dropping the listener removes the socket file.
        let Endpoint::Unix(path) = bound else {
            panic!("expected unix endpoint")
        };
        drop(listener);
        assert!(!path.exists());
    }
}
