//! The agent side of the mesh: hosted racks, degraded-mode state machine,
//! and the socket server.
//!
//! [`AgentHost`] owns the [`RackAgent`]s and tracks, per rack, when the
//! controller last spoke to it. The degraded-mode state machine (§III-B of
//! the paper) is lease-based:
//!
//! ```text
//!            first contact / contact while standalone
//!   standalone ────────────────────────────────────────► coordinated
//!        ▲                                                    │
//!        └──────────── lease expires (no contact for ─────────┘
//!                      `lease_ticks` simulation ticks)
//! ```
//!
//! Falling back to standalone clears any charge override and resumes
//! postponed charging, so the rack's variable charger picks currents
//! autonomously — exactly the uncoordinated policy the paper's chargers run
//! when no controller exists. Server power caps are deliberately **left in
//! place**: caps protect breakers, and dropping one because the control
//! plane hiccupped could trip the very device the cap was guarding. The
//! controller re-evaluates caps as soon as it can reach the rack again.
//!
//! Racks *start* standalone and join on first contact. This matters for the
//! equivalence guarantee: a fleet warms up for many ticks before the
//! controller's first read, and a lease that expired during warm-up would
//! otherwise inject a spurious fallback event into every run.
//!
//! [`AgentServer`] puts an [`AgentHost`] behind a TCP or Unix-domain
//! listener: one accept thread, one handler thread per connection, all
//! plain blocking I/O with short poll timeouts so shutdown is prompt.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use recharge_dynamo::{PowerReading, RackAgent};
use recharge_telemetry::{tcounter, tevent, tspan};
use recharge_units::RackId;

use crate::endpoint::{
    recv_frame, send_frame, Endpoint, FrameBuffer, FrameRead, NetListener, NetStream,
};
use crate::fault::FaultClock;
use crate::wire::{decode_request, encode_response, Request, Response};

/// Default coordination lease, in simulation ticks.
///
/// Must comfortably exceed the controller's `control_every` interval:
/// the controller reads every scoped rack once per control tick, so under a
/// healthy link the lease is renewed long before it expires.
pub const DEFAULT_LEASE_TICKS: u64 = 30;

/// Per-rack coordination state.
#[derive(Debug, Clone, Copy)]
struct RackLease {
    /// Tick of the last controller contact.
    last_contact: u64,
    /// Whether the rack currently follows controller commands.
    coordinated: bool,
}

struct HostState<A> {
    agents: Vec<A>,
    leases: Vec<RackLease>,
}

/// The racks hosted behind one server, with lease tracking.
///
/// Shared between the stepping side (a fleet backend advancing physics) and
/// the serving side (handler threads executing controller requests); all
/// access goes through one mutex, so a request can never observe a rack
/// mid-step.
pub struct AgentHost<A> {
    state: Mutex<HostState<A>>,
    index_of: HashMap<RackId, usize>,
    racks: Vec<RackId>,
    clock: FaultClock,
    lease_ticks: u64,
}

impl<A: RackAgent> AgentHost<A> {
    /// Hosts `agents` with the given lease, sharing `clock` with whoever
    /// advances simulation time.
    #[must_use]
    pub fn new(agents: Vec<A>, lease_ticks: u64, clock: FaultClock) -> Self {
        let racks: Vec<RackId> = agents.iter().map(RackAgent::rack).collect();
        let index_of = racks.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let leases = vec![
            RackLease {
                last_contact: 0,
                coordinated: false,
            };
            agents.len()
        ];
        AgentHost {
            state: Mutex::new(HostState { agents, leases }),
            index_of,
            racks,
            clock,
            lease_ticks,
        }
    }

    /// The shared simulation-tick clock.
    #[must_use]
    pub fn clock(&self) -> &FaultClock {
        &self.clock
    }

    /// The hosted racks, in stable (fleet) order.
    #[must_use]
    pub fn racks(&self) -> &[RackId] {
        &self.racks
    }

    fn lock(&self) -> MutexGuard<'_, HostState<A>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` over the mutable agent slice (fleet order) — the stepping
    /// hook for backends.
    pub fn with_agents<R>(&self, f: impl FnOnce(&mut [A]) -> R) -> R {
        let mut state = self.lock();
        f(&mut state.agents)
    }

    /// Post-step telemetry for every hosted rack, in fleet order.
    #[must_use]
    pub fn readings(&self) -> Vec<PowerReading> {
        let state = self.lock();
        state.agents.iter().map(RackAgent::read).collect()
    }

    /// Whether `rack` is currently coordinated (lease unexpired).
    #[must_use]
    pub fn is_coordinated(&self, rack: RackId) -> bool {
        let state = self.lock();
        self.index_of
            .get(&rack)
            .is_some_and(|&i| state.leases[i].coordinated)
    }

    /// Advances the shared tick clock and sweeps leases: any coordinated
    /// rack whose lease expired falls back to standalone.
    pub fn advance(&self, ticks: u64) {
        self.clock.advance(ticks);
        let now = self.clock.tick();
        let mut state = self.lock();
        for i in 0..state.leases.len() {
            let lease = state.leases[i];
            if lease.coordinated && now.saturating_sub(lease.last_contact) > self.lease_ticks {
                state.leases[i].coordinated = false;
                // Standalone: automatic variable-charger current, charging
                // resumed. Caps stay (see module docs).
                state.agents[i].clear_charge_override();
                state.agents[i].set_charge_postponed(false);
                tcounter!("net.standalone_fallbacks").inc();
                tevent!(
                    "net.standalone_fallback",
                    "net",
                    "rack" => state.agents[i].rack().index(),
                    "tick" => now,
                );
            }
        }
    }

    /// Executes one controller request. Any rack-addressed request renews
    /// that rack's lease (and rejoins it if it was standalone).
    pub fn handle(&self, request: &Request) -> Response {
        let _span = tspan!("net.rpc_serve", "net");
        tcounter!("net.rpc_server_requests").inc();
        let mut state = self.lock();
        if let Some(rack) = request.rack() {
            if let Some(&i) = self.index_of.get(&rack) {
                let now = self.clock.tick();
                state.leases[i].last_contact = now;
                if !state.leases[i].coordinated {
                    state.leases[i].coordinated = true;
                    tcounter!("net.rejoins").inc();
                    tevent!("net.rejoin", "net", "rack" => rack.index(), "tick" => now);
                }
            }
        }
        match *request {
            Request::ListRacks => Response::Racks(self.racks.clone()),
            Request::Ping => Response::Pong,
            Request::Read(rack) => {
                let reading = self.index_of.get(&rack).map(|&i| state.agents[i].read());
                Response::Reading(reading)
            }
            Request::SetChargeOverride(rack, current) => {
                if let Some(&i) = self.index_of.get(&rack) {
                    state.agents[i].set_charge_override(current);
                }
                Response::Ack
            }
            Request::ClearChargeOverride(rack) => {
                if let Some(&i) = self.index_of.get(&rack) {
                    state.agents[i].clear_charge_override();
                }
                Response::Ack
            }
            Request::SetChargePostponed(rack, postponed) => {
                if let Some(&i) = self.index_of.get(&rack) {
                    state.agents[i].set_charge_postponed(postponed);
                }
                Response::Ack
            }
            Request::CapServers(rack, limit) => {
                if let Some(&i) = self.index_of.get(&rack) {
                    state.agents[i].cap_servers(limit);
                }
                Response::Ack
            }
            Request::UncapServers(rack) => {
                if let Some(&i) = self.index_of.get(&rack) {
                    state.agents[i].uncap_servers();
                }
                Response::Ack
            }
        }
    }
}

/// Poll interval for accept and read loops; bounds shutdown latency.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// An [`AgentHost`] behind a listening socket.
///
/// Dropping the server stops the accept loop, closes every connection
/// handler, and (for Unix endpoints) removes the socket file.
pub struct AgentServer<A> {
    host: Arc<AgentHost<A>>,
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl<A: RackAgent + Send + 'static> AgentServer<A> {
    /// Binds `endpoint` and starts serving `host`.
    pub fn serve(host: Arc<AgentHost<A>>, endpoint: &Endpoint) -> io::Result<Self> {
        let listener = NetListener::bind(endpoint)?;
        let bound = listener.local_endpoint()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let host = Arc::clone(&host);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("recharge-net-accept".into())
                .spawn(move || accept_loop(&listener, &host, &shutdown))
                .map_err(|e| io::Error::other(format!("spawning accept thread: {e}")))?
        };
        Ok(AgentServer {
            host,
            endpoint: bound,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The endpoint actually bound (ephemeral ports resolved).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The hosted racks and leases.
    #[must_use]
    pub fn host(&self) -> &Arc<AgentHost<A>> {
        &self.host
    }
}

impl<A> Drop for AgentServer<A> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop<A: RackAgent + Send + 'static>(
    listener: &NetListener,
    host: &Arc<AgentHost<A>>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                tcounter!("net.rpc_server_accepts").inc();
                let host = Arc::clone(host);
                let shutdown = Arc::clone(shutdown);
                let spawned = std::thread::Builder::new()
                    .name("recharge-net-conn".into())
                    .spawn(move || connection_loop(stream, &host, &shutdown));
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

fn connection_loop<A: RackAgent>(
    mut stream: NetStream,
    host: &AgentHost<A>,
    shutdown: &AtomicBool,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut buffer = FrameBuffer::new();
    while !shutdown.load(Ordering::SeqCst) {
        match recv_frame(&mut stream, &mut buffer, None) {
            Ok(FrameRead::Frame(payload)) => {
                let Ok((id, request)) = decode_request(&payload) else {
                    // A peer that stops speaking the protocol gets dropped;
                    // answering garbage risks mis-pairing replies.
                    tcounter!("net.rpc_server_bad_frames").inc();
                    return;
                };
                let response = host.handle(&request);
                if send_frame(&mut stream, &encode_response(id, &response)).is_err() {
                    return;
                }
            }
            Ok(FrameRead::TimedOut) => {} // poll tick: re-check shutdown
            Ok(FrameRead::Closed) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_dynamo::SimRackAgent;
    use recharge_units::{Amperes, Priority, Seconds, Watts};

    fn host(n: u32, lease: u64) -> AgentHost<SimRackAgent> {
        let agents = (0..n)
            .map(|i| SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize]).build())
            .collect();
        AgentHost::new(agents, lease, FaultClock::new())
    }

    #[test]
    fn racks_start_standalone_and_join_on_contact() {
        let host = host(2, 10);
        assert!(!host.is_coordinated(RackId::new(0)));
        host.handle(&Request::Read(RackId::new(0)));
        assert!(host.is_coordinated(RackId::new(0)));
        assert!(!host.is_coordinated(RackId::new(1)));
    }

    #[test]
    fn lease_expiry_falls_back_and_clears_overrides() {
        let host = host(1, 5);
        let rack = RackId::new(0);
        host.handle(&Request::SetChargeOverride(rack, Amperes::MIN_CHARGE));
        host.handle(&Request::SetChargePostponed(rack, true));
        assert!(host.is_coordinated(rack));
        host.with_agents(|agents| {
            assert!(agents[0].battery().is_postponed());
        });

        // Within the lease: still coordinated, override intact.
        host.advance(5);
        assert!(host.is_coordinated(rack));

        // One past the lease: standalone, override cleared, charging resumed.
        host.advance(1);
        assert!(!host.is_coordinated(rack));
        host.with_agents(|agents| {
            assert!(!agents[0].battery().is_postponed());
            assert!(agents[0]
                .battery()
                .bbu()
                .charger()
                .override_current()
                .is_none());
        });
    }

    #[test]
    fn contact_renews_the_lease() {
        let host = host(1, 5);
        let rack = RackId::new(0);
        host.handle(&Request::Read(rack));
        for _ in 0..10 {
            host.advance(3);
            host.handle(&Request::Read(rack));
        }
        assert!(host.is_coordinated(rack), "renewed lease must not expire");
    }

    #[test]
    fn caps_survive_fallback() {
        let host = host(1, 2);
        let rack = RackId::new(0);
        host.handle(&Request::CapServers(rack, Watts::from_kilowatts(4.0)));
        host.advance(3); // lease expires
        assert!(!host.is_coordinated(rack));
        let reading = &host.readings()[0];
        assert!(
            reading.capped_power > Watts::ZERO,
            "caps must survive standalone fallback"
        );
    }

    #[test]
    fn unknown_rack_reads_none_and_acks_commands() {
        let host = host(1, 5);
        let ghost = RackId::new(99);
        assert_eq!(host.handle(&Request::Read(ghost)), Response::Reading(None));
        assert_eq!(
            host.handle(&Request::ClearChargeOverride(ghost)),
            Response::Ack
        );
    }

    #[test]
    fn server_round_trips_over_loopback() {
        let host = Arc::new(host(3, DEFAULT_LEASE_TICKS));
        let server = AgentServer::serve(Arc::clone(&host), &Endpoint::loopback()).expect("serve");
        let mut stream =
            NetStream::connect(server.endpoint(), Duration::from_secs(1)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        let mut buffer = FrameBuffer::new();

        let mut call = |id: u64, request: &Request| -> Response {
            send_frame(&mut stream, &crate::wire::encode_request(id, request)).expect("send");
            let deadline = Some(std::time::Instant::now() + Duration::from_secs(5));
            loop {
                match recv_frame(&mut stream, &mut buffer, deadline).expect("recv") {
                    FrameRead::Frame(payload) => {
                        let (got_id, response) =
                            crate::wire::decode_response(&payload).expect("decode");
                        assert_eq!(got_id, id);
                        return response;
                    }
                    FrameRead::TimedOut => continue,
                    FrameRead::Closed => panic!("server closed connection"),
                }
            }
        };

        let Response::Racks(racks) = call(1, &Request::ListRacks) else {
            panic!("expected racks");
        };
        assert_eq!(racks, vec![RackId::new(0), RackId::new(1), RackId::new(2)]);
        let Response::Reading(Some(reading)) = call(2, &Request::Read(RackId::new(1))) else {
            panic!("expected reading");
        };
        assert_eq!(reading.rack, RackId::new(1));
        assert_eq!(call(3, &Request::Ping), Response::Pong);
        assert_eq!(
            call(
                4,
                &Request::SetChargeOverride(RackId::new(0), Amperes::MAX_CHARGE)
            ),
            Response::Ack
        );
        // The command took effect on the hosted agent.
        host.with_agents(|agents| {
            assert_eq!(
                agents[0].battery().bbu().charger().override_current(),
                Some(Amperes::MAX_CHARGE)
            );
        });
        drop(server);
    }

    #[test]
    fn stepping_and_serving_share_state() {
        let host = Arc::new(host(1, DEFAULT_LEASE_TICKS));
        // Ride through an outage, then read over the host surface.
        host.with_agents(|agents| {
            agents[0].set_input_power(false);
            agents[0].step(Seconds::new(60.0));
            agents[0].set_input_power(true);
            agents[0].step(Seconds::new(1.0));
        });
        let Response::Reading(Some(reading)) = host.handle(&Request::Read(RackId::new(0))) else {
            panic!("expected reading");
        };
        assert!(reading.is_charging());
        assert_eq!(host.readings()[0], reading);
    }
}
