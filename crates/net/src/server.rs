//! The agent side of the mesh: hosted racks, degraded-mode state machine,
//! and the socket server.
//!
//! [`AgentHost`] owns the [`RackAgent`]s and tracks, per rack, when the
//! controller last spoke to it. The degraded-mode state machine (§III-B of
//! the paper) is lease-based:
//!
//! ```text
//!            first contact / contact while standalone
//!   standalone ────────────────────────────────────────► coordinated
//!        ▲                                                    │
//!        └──────────── lease expires (no contact for ─────────┘
//!                      `lease_ticks` simulation ticks)
//! ```
//!
//! Falling back to standalone clears any charge override and resumes
//! postponed charging, so the rack's variable charger picks currents
//! autonomously — exactly the uncoordinated policy the paper's chargers run
//! when no controller exists. Server power caps are deliberately **left in
//! place**: caps protect breakers, and dropping one because the control
//! plane hiccupped could trip the very device the cap was guarding. The
//! controller re-evaluates caps as soon as it can reach the rack again.
//!
//! Racks *start* standalone and join on first contact. This matters for the
//! equivalence guarantee: a fleet warms up for many ticks before the
//! controller's first read, and a lease that expired during warm-up would
//! otherwise inject a spurious fallback event into every run.
//!
//! [`AgentServer`] puts an [`AgentHost`] behind a TCP or Unix-domain
//! listener: one accept thread, one handler thread per connection, all
//! plain blocking I/O with short poll timeouts so shutdown is prompt.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use recharge_dynamo::{AgentBus, Controller, PowerReading, RackAgent};
use recharge_telemetry::{
    flight_at, tcounter, tevent, tspan, FlightKind, ReasonCode, NO_BUCKET, NO_RACK,
};
use recharge_units::{Amperes, RackId, Watts};

use crate::endpoint::{
    recv_frame, send_frame, Endpoint, FrameBuffer, FrameRead, NetListener, NetStream,
};
use crate::fault::FaultClock;
use crate::wire::{
    decode_request, encode_response, AgentCommand, GroupAggregate, HealthReport, Request, Response,
    StoredSnapshot, MAX_FRAME_LEN,
};

/// Default coordination lease, in simulation ticks.
///
/// Must comfortably exceed the controller's `control_every` interval:
/// the controller reads every scoped rack once per control tick, so under a
/// healthy link the lease is renewed long before it expires.
pub const DEFAULT_LEASE_TICKS: u64 = 30;

/// Per-rack coordination state.
#[derive(Debug, Clone, Copy)]
struct RackLease {
    /// Tick of the last controller contact.
    last_contact: u64,
    /// Whether the rack currently follows controller commands.
    coordinated: bool,
    /// Whether the rack has ever been coordinated — distinguishes the
    /// first-contact lease grant from a rejoin after standalone fallback in
    /// the flight-recorder journal. Never read by the lease logic itself.
    ever_coordinated: bool,
}

struct HostState<A> {
    agents: Vec<A>,
    leases: Vec<RackLease>,
    /// A server-hosted leaf controller ([`Request::TickLeaf`]); `None` for
    /// plain agent hosting.
    leaf: Option<Controller>,
    /// Highest HA election term witnessed on fenced requests. Requests
    /// carrying a lower term are stale leaders and are rejected wholesale.
    ha_term: u64,
    /// Replica id of the leader that set [`HostState::ha_term`].
    ha_leader: u32,
    /// Last controller-brain snapshot replicated here, for standbys to fetch
    /// at failover.
    ha_snapshot: Option<StoredSnapshot>,
}

/// [`AgentBus`] over a host's local agent slice — what a hosted leaf
/// controller ticks against, so leaf control never touches the wire.
struct LeafBus<'a, A> {
    agents: &'a mut [A],
    index_of: &'a HashMap<RackId, usize>,
    racks: &'a [RackId],
}

impl<A: RackAgent> AgentBus for LeafBus<'_, A> {
    fn racks(&self) -> Vec<RackId> {
        self.racks.to_vec()
    }

    fn read(&self, rack: RackId) -> Option<PowerReading> {
        self.index_of.get(&rack).map(|&i| self.agents[i].read())
    }

    fn set_charge_override(&mut self, rack: RackId, current: Amperes) {
        if let Some(&i) = self.index_of.get(&rack) {
            self.agents[i].set_charge_override(current);
        }
    }

    fn clear_charge_override(&mut self, rack: RackId) {
        if let Some(&i) = self.index_of.get(&rack) {
            self.agents[i].clear_charge_override();
        }
    }

    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool) {
        if let Some(&i) = self.index_of.get(&rack) {
            self.agents[i].set_charge_postponed(postponed);
        }
    }

    fn cap_servers(&mut self, rack: RackId, limit: Watts) {
        if let Some(&i) = self.index_of.get(&rack) {
            self.agents[i].cap_servers(limit);
        }
    }

    fn uncap_servers(&mut self, rack: RackId) {
        if let Some(&i) = self.index_of.get(&rack) {
            self.agents[i].uncap_servers();
        }
    }
}

/// The racks hosted behind one server, with lease tracking.
///
/// Shared between the stepping side (a fleet backend advancing physics) and
/// the serving side (handler threads executing controller requests); all
/// access goes through one mutex, so a request can never observe a rack
/// mid-step.
pub struct AgentHost<A> {
    state: Mutex<HostState<A>>,
    index_of: HashMap<RackId, usize>,
    racks: Vec<RackId>,
    clock: FaultClock,
    lease_ticks: u64,
    max_frame_len: u32,
    shard: u32,
}

impl<A: RackAgent> AgentHost<A> {
    /// Hosts `agents` with the given lease, sharing `clock` with whoever
    /// advances simulation time.
    #[must_use]
    pub fn new(agents: Vec<A>, lease_ticks: u64, clock: FaultClock) -> Self {
        let racks: Vec<RackId> = agents.iter().map(RackAgent::rack).collect();
        let index_of = racks.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let leases = vec![
            RackLease {
                last_contact: 0,
                coordinated: false,
                ever_coordinated: false,
            };
            agents.len()
        ];
        AgentHost {
            state: Mutex::new(HostState {
                agents,
                leases,
                leaf: None,
                ha_term: 0,
                ha_leader: 0,
                ha_snapshot: None,
            }),
            index_of,
            racks,
            clock,
            lease_ticks,
            max_frame_len: MAX_FRAME_LEN,
            shard: 0,
        }
    }

    /// Overrides the frame cap this host's connections enforce.
    #[must_use]
    pub fn with_max_frame_len(mut self, max_frame_len: u32) -> Self {
        self.max_frame_len = max_frame_len;
        self
    }

    /// Tags this host with its shard index within a sharded mesh; reported
    /// back through [`Request::ReadHealth`] so scrapes identify the server.
    #[must_use]
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = shard;
        self
    }

    /// The shard index this host reports in health snapshots.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The frame cap this host's connections enforce.
    #[must_use]
    pub fn max_frame_len(&self) -> u32 {
        self.max_frame_len
    }

    /// Installs a leaf controller that [`Request::TickLeaf`] runs against the
    /// hosted agents — the in-server leaf tier of the control hierarchy.
    pub fn install_leaf_controller(&self, controller: Controller) {
        self.lock().leaf = Some(controller);
    }

    /// The shared simulation-tick clock.
    #[must_use]
    pub fn clock(&self) -> &FaultClock {
        &self.clock
    }

    /// The hosted racks, in stable (fleet) order.
    #[must_use]
    pub fn racks(&self) -> &[RackId] {
        &self.racks
    }

    fn lock(&self) -> MutexGuard<'_, HostState<A>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` over the mutable agent slice (fleet order) — the stepping
    /// hook for backends.
    pub fn with_agents<R>(&self, f: impl FnOnce(&mut [A]) -> R) -> R {
        let mut state = self.lock();
        f(&mut state.agents)
    }

    /// Post-step telemetry for every hosted rack, in fleet order.
    #[must_use]
    pub fn readings(&self) -> Vec<PowerReading> {
        let state = self.lock();
        state.agents.iter().map(RackAgent::read).collect()
    }

    /// Whether `rack` is currently coordinated (lease unexpired).
    #[must_use]
    pub fn is_coordinated(&self, rack: RackId) -> bool {
        let state = self.lock();
        self.index_of
            .get(&rack)
            .is_some_and(|&i| state.leases[i].coordinated)
    }

    /// Advances the shared tick clock and sweeps leases.
    pub fn advance(&self, ticks: u64) {
        self.clock.advance(ticks);
        self.sweep_leases();
    }

    /// Sweeps leases at the current clock: any coordinated rack whose lease
    /// expired falls back to standalone. Split from [`advance`](Self::advance)
    /// for hosts sharing one clock — a sharded backend advances the clock
    /// once, then sweeps every host.
    pub fn sweep_leases(&self) {
        let now = self.clock.tick();
        let mut state = self.lock();
        for i in 0..state.leases.len() {
            let lease = state.leases[i];
            if lease.coordinated && now.saturating_sub(lease.last_contact) > self.lease_ticks {
                state.leases[i].coordinated = false;
                // Standalone: automatic variable-charger current, charging
                // resumed. Caps stay (see module docs).
                state.agents[i].clear_charge_override();
                state.agents[i].set_charge_postponed(false);
                tcounter!("net.standalone_fallbacks").inc();
                tevent!(
                    "net.standalone_fallback",
                    "net",
                    "rack" => state.agents[i].rack().index(),
                    "tick" => now,
                );
                flight_at(
                    now as f64,
                    FlightKind::LeaseExpire,
                    ReasonCode::LeaseLapsed,
                    state.agents[i].rack().index(),
                    0,
                    NO_BUCKET,
                    lease.last_contact,
                    self.lease_ticks,
                );
            }
        }
    }

    /// Renews rack `i`'s lease at tick `now`, rejoining it if standalone.
    fn renew_lease(&self, state: &mut HostState<A>, i: usize, now: u64) {
        state.leases[i].last_contact = now;
        if !state.leases[i].coordinated {
            state.leases[i].coordinated = true;
            tcounter!("net.rejoins").inc();
            tevent!("net.rejoin", "net", "rack" => self.racks[i].index(), "tick" => now);
            let reason = if state.leases[i].ever_coordinated {
                ReasonCode::LeaseRejoin
            } else {
                ReasonCode::LeaseFirstContact
            };
            state.leases[i].ever_coordinated = true;
            flight_at(
                now as f64,
                FlightKind::LeaseGrant,
                reason,
                self.racks[i].index(),
                0,
                NO_BUCKET,
                now,
                self.lease_ticks,
            );
        }
    }

    /// Executes one controller request.
    ///
    /// Lease renewal mirrors the per-rack protocol exactly: a rack-addressed
    /// request renews that rack; `ReadAllReadings` and `TickLeaf` renew every
    /// hosted rack (the controller reads every scoped rack each control
    /// tick, so the batched read is the same contact the per-rack reads
    /// were); `ApplyCommandBatch` renews each addressed rack.
    pub fn handle(&self, request: &Request) -> Response {
        let _span = tspan!("net.rpc_serve", "net");
        tcounter!("net.rpc_server_requests").inc();
        let mut state = self.lock();
        let now = self.clock.tick();
        match request {
            Request::ReadAllReadings | Request::TickLeaf { .. } => {
                for i in 0..self.racks.len() {
                    self.renew_lease(&mut state, i, now);
                }
            }
            Request::ApplyCommandBatch(commands) => {
                for command in commands {
                    if let Some(&i) = self.index_of.get(&command.rack()) {
                        self.renew_lease(&mut state, i, now);
                    }
                }
            }
            // A fenced batch renews leases only when its term is current: a
            // stale leader's contact must not keep its coordination alive.
            Request::ApplyFencedBatch { term, commands, .. } if *term >= state.ha_term => {
                for command in commands {
                    if let Some(&i) = self.index_of.get(&command.rack()) {
                        self.renew_lease(&mut state, i, now);
                    }
                }
            }
            _ => {
                if let Some(rack) = request.rack() {
                    if let Some(&i) = self.index_of.get(&rack) {
                        self.renew_lease(&mut state, i, now);
                    }
                }
            }
        }
        match request {
            Request::ListRacks => Response::Racks(self.racks.clone()),
            Request::Ping => Response::Pong,
            Request::Read(rack) => {
                let reading = self.index_of.get(rack).map(|&i| state.agents[i].read());
                Response::Reading(reading)
            }
            Request::SetChargeOverride(rack, current) => {
                if let Some(&i) = self.index_of.get(rack) {
                    state.agents[i].set_charge_override(*current);
                }
                Response::Ack
            }
            Request::ClearChargeOverride(rack) => {
                if let Some(&i) = self.index_of.get(rack) {
                    state.agents[i].clear_charge_override();
                }
                Response::Ack
            }
            Request::SetChargePostponed(rack, postponed) => {
                if let Some(&i) = self.index_of.get(rack) {
                    state.agents[i].set_charge_postponed(*postponed);
                }
                Response::Ack
            }
            Request::CapServers(rack, limit) => {
                if let Some(&i) = self.index_of.get(rack) {
                    state.agents[i].cap_servers(*limit);
                }
                Response::Ack
            }
            Request::UncapServers(rack) => {
                if let Some(&i) = self.index_of.get(rack) {
                    state.agents[i].uncap_servers();
                }
                Response::Ack
            }
            Request::ReadAllReadings => {
                Response::Readings(state.agents.iter().map(RackAgent::read).collect())
            }
            Request::ApplyCommandBatch(commands) => {
                let mut applied = 0u32;
                for command in commands {
                    let Some(&i) = self.index_of.get(&command.rack()) else {
                        continue;
                    };
                    let agent = &mut state.agents[i];
                    match *command {
                        AgentCommand::SetChargeOverride(_, current) => {
                            agent.set_charge_override(current);
                        }
                        AgentCommand::ClearChargeOverride(_) => agent.clear_charge_override(),
                        AgentCommand::SetChargePostponed(_, postponed) => {
                            agent.set_charge_postponed(postponed);
                        }
                        AgentCommand::CapServers(_, limit) => agent.cap_servers(limit),
                        AgentCommand::UncapServers(_) => agent.uncap_servers(),
                    }
                    applied += 1;
                }
                Response::BatchAck(applied)
            }
            Request::TickLeaf { now, budget } => {
                let HostState { agents, leaf, .. } = &mut *state;
                match leaf.as_mut() {
                    Some(controller) => {
                        if let Some(budget) = budget {
                            controller.set_limit(*budget);
                        }
                        let mut bus = LeafBus {
                            agents,
                            index_of: &self.index_of,
                            racks: &self.racks,
                        };
                        let report = controller.tick(*now, &mut bus);
                        Response::GroupAggregate(GroupAggregate {
                            it_load: report.it_load,
                            recharge_power: report.recharge_power,
                            capped_power: report.capped_power,
                            overrides_sent: report.overrides_sent as u32,
                            racks_throttled: report.racks_throttled as u32,
                        })
                    }
                    // No leaf installed: a monitoring-only aggregate, summed
                    // the way the controller sums its own readings.
                    None => {
                        let mut aggregate = GroupAggregate {
                            it_load: Watts::ZERO,
                            recharge_power: Watts::ZERO,
                            capped_power: Watts::ZERO,
                            overrides_sent: 0,
                            racks_throttled: 0,
                        };
                        for agent in agents.iter() {
                            let reading = agent.read();
                            if reading.input_power_present {
                                aggregate.it_load += reading.it_load;
                                aggregate.recharge_power += reading.recharge_power;
                            }
                            aggregate.capped_power += reading.capped_power;
                        }
                        Response::GroupAggregate(aggregate)
                    }
                }
            }
            Request::ReadHealth => {
                let coordinated = state.leases.iter().filter(|l| l.coordinated).count() as u32;
                Response::Health(HealthReport {
                    shard: self.shard,
                    racks: self.racks.len() as u32,
                    coordinated,
                    text: recharge_telemetry::snapshot().to_prometheus(),
                })
            }
            Request::ApplyFencedBatch {
                term,
                leader,
                commands,
            } => {
                if *term < state.ha_term {
                    self.fence_stale(*term, state.ha_term, now);
                    return Response::FencedAck {
                        accepted: false,
                        term: state.ha_term,
                        applied: 0,
                    };
                }
                state.ha_term = *term;
                state.ha_leader = *leader;
                let mut applied = 0u32;
                for command in commands {
                    let Some(&i) = self.index_of.get(&command.rack()) else {
                        continue;
                    };
                    let agent = &mut state.agents[i];
                    match *command {
                        AgentCommand::SetChargeOverride(_, current) => {
                            agent.set_charge_override(current);
                        }
                        AgentCommand::ClearChargeOverride(_) => agent.clear_charge_override(),
                        AgentCommand::SetChargePostponed(_, postponed) => {
                            agent.set_charge_postponed(postponed);
                        }
                        AgentCommand::CapServers(_, limit) => agent.cap_servers(limit),
                        AgentCommand::UncapServers(_) => agent.uncap_servers(),
                    }
                    applied += 1;
                }
                Response::FencedAck {
                    accepted: true,
                    term: state.ha_term,
                    applied,
                }
            }
            Request::InstallSnapshot(snapshot) => {
                if snapshot.term < state.ha_term {
                    self.fence_stale(snapshot.term, state.ha_term, now);
                    return Response::SnapshotAck {
                        accepted: false,
                        term: state.ha_term,
                    };
                }
                state.ha_term = snapshot.term;
                state.ha_leader = snapshot.leader;
                state.ha_snapshot = Some(snapshot.clone());
                tcounter!("net.ha_snapshots_installed").inc();
                Response::SnapshotAck {
                    accepted: true,
                    term: state.ha_term,
                }
            }
            Request::FetchSnapshot => Response::Snapshot(state.ha_snapshot.clone()),
        }
    }

    /// Journals and counts a stale-term rejection: a leader deposed before
    /// this request was sent tried to act on the fleet.
    fn fence_stale(&self, stale_term: u64, current_term: u64, now: u64) {
        tcounter!("net.ha_stale_fenced").inc();
        tevent!(
            "net.ha_stale_fenced",
            "net",
            "stale_term" => stale_term,
            "current_term" => current_term,
        );
        flight_at(
            now as f64,
            FlightKind::StaleLeaderFenced,
            ReasonCode::HaStaleTerm,
            NO_RACK,
            0,
            NO_BUCKET,
            stale_term,
            current_term,
        );
    }
}

/// Poll interval for accept and read loops; bounds shutdown latency.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// An [`AgentHost`] behind a listening socket.
///
/// Dropping the server stops the accept loop, closes every connection
/// handler, and (for Unix endpoints) removes the socket file.
pub struct AgentServer<A> {
    host: Arc<AgentHost<A>>,
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl<A: RackAgent + Send + 'static> AgentServer<A> {
    /// Binds `endpoint` and starts serving `host`.
    pub fn serve(host: Arc<AgentHost<A>>, endpoint: &Endpoint) -> io::Result<Self> {
        let listener = NetListener::bind(endpoint)?;
        let bound = listener.local_endpoint()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let host = Arc::clone(&host);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("recharge-net-accept".into())
                .spawn(move || accept_loop(&listener, &host, &shutdown))
                .map_err(|e| io::Error::other(format!("spawning accept thread: {e}")))?
        };
        Ok(AgentServer {
            host,
            endpoint: bound,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The endpoint actually bound (ephemeral ports resolved).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The hosted racks and leases.
    #[must_use]
    pub fn host(&self) -> &Arc<AgentHost<A>> {
        &self.host
    }
}

impl<A> Drop for AgentServer<A> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop<A: RackAgent + Send + 'static>(
    listener: &NetListener,
    host: &Arc<AgentHost<A>>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                tcounter!("net.rpc_server_accepts").inc();
                let host = Arc::clone(host);
                let shutdown = Arc::clone(shutdown);
                let spawned = std::thread::Builder::new()
                    .name("recharge-net-conn".into())
                    .spawn(move || connection_loop(stream, &host, &shutdown));
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

fn connection_loop<A: RackAgent>(
    mut stream: NetStream,
    host: &AgentHost<A>,
    shutdown: &AtomicBool,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut buffer = FrameBuffer::new();
    let max_frame_len = host.max_frame_len();
    while !shutdown.load(Ordering::SeqCst) {
        match recv_frame(&mut stream, &mut buffer, None, max_frame_len) {
            Ok(FrameRead::Frame(payload)) => {
                let Ok((id, request)) = decode_request(&payload) else {
                    // A peer that stops speaking the protocol gets dropped;
                    // answering garbage risks mis-pairing replies.
                    tcounter!("net.rpc_server_bad_frames").inc();
                    return;
                };
                let response = host.handle(&request);
                if send_frame(&mut stream, &encode_response(id, &response), max_frame_len).is_err()
                {
                    return;
                }
            }
            Ok(FrameRead::TimedOut) => {} // poll tick: re-check shutdown
            Ok(FrameRead::Closed) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_dynamo::SimRackAgent;
    use recharge_units::{Amperes, Priority, Seconds, Watts};

    fn host(n: u32, lease: u64) -> AgentHost<SimRackAgent> {
        let agents = (0..n)
            .map(|i| SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize]).build())
            .collect();
        AgentHost::new(agents, lease, FaultClock::new())
    }

    #[test]
    fn racks_start_standalone_and_join_on_contact() {
        let host = host(2, 10);
        assert!(!host.is_coordinated(RackId::new(0)));
        host.handle(&Request::Read(RackId::new(0)));
        assert!(host.is_coordinated(RackId::new(0)));
        assert!(!host.is_coordinated(RackId::new(1)));
    }

    #[test]
    fn lease_expiry_falls_back_and_clears_overrides() {
        let host = host(1, 5);
        let rack = RackId::new(0);
        host.handle(&Request::SetChargeOverride(rack, Amperes::MIN_CHARGE));
        host.handle(&Request::SetChargePostponed(rack, true));
        assert!(host.is_coordinated(rack));
        host.with_agents(|agents| {
            assert!(agents[0].battery().is_postponed());
        });

        // Within the lease: still coordinated, override intact.
        host.advance(5);
        assert!(host.is_coordinated(rack));

        // One past the lease: standalone, override cleared, charging resumed.
        host.advance(1);
        assert!(!host.is_coordinated(rack));
        host.with_agents(|agents| {
            assert!(!agents[0].battery().is_postponed());
            assert!(agents[0]
                .battery()
                .bbu()
                .charger()
                .override_current()
                .is_none());
        });
    }

    #[test]
    fn contact_renews_the_lease() {
        let host = host(1, 5);
        let rack = RackId::new(0);
        host.handle(&Request::Read(rack));
        for _ in 0..10 {
            host.advance(3);
            host.handle(&Request::Read(rack));
        }
        assert!(host.is_coordinated(rack), "renewed lease must not expire");
    }

    #[test]
    fn caps_survive_fallback() {
        let host = host(1, 2);
        let rack = RackId::new(0);
        host.handle(&Request::CapServers(rack, Watts::from_kilowatts(4.0)));
        host.advance(3); // lease expires
        assert!(!host.is_coordinated(rack));
        let reading = &host.readings()[0];
        assert!(
            reading.capped_power > Watts::ZERO,
            "caps must survive standalone fallback"
        );
    }

    #[test]
    fn unknown_rack_reads_none_and_acks_commands() {
        let host = host(1, 5);
        let ghost = RackId::new(99);
        assert_eq!(host.handle(&Request::Read(ghost)), Response::Reading(None));
        assert_eq!(
            host.handle(&Request::ClearChargeOverride(ghost)),
            Response::Ack
        );
    }

    #[test]
    fn server_round_trips_over_loopback() {
        let host = Arc::new(host(3, DEFAULT_LEASE_TICKS));
        let server = AgentServer::serve(Arc::clone(&host), &Endpoint::loopback()).expect("serve");
        let mut stream =
            NetStream::connect(server.endpoint(), Duration::from_secs(1)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        let mut buffer = FrameBuffer::new();

        let mut call = |id: u64, request: &Request| -> Response {
            send_frame(
                &mut stream,
                &crate::wire::encode_request(id, request),
                MAX_FRAME_LEN,
            )
            .expect("send");
            let deadline = Some(std::time::Instant::now() + Duration::from_secs(5));
            loop {
                match recv_frame(&mut stream, &mut buffer, deadline, MAX_FRAME_LEN).expect("recv") {
                    FrameRead::Frame(payload) => {
                        let (got_id, response) =
                            crate::wire::decode_response(&payload).expect("decode");
                        assert_eq!(got_id, id);
                        return response;
                    }
                    FrameRead::TimedOut => continue,
                    FrameRead::Closed => panic!("server closed connection"),
                }
            }
        };

        let Response::Racks(racks) = call(1, &Request::ListRacks) else {
            panic!("expected racks");
        };
        assert_eq!(racks, vec![RackId::new(0), RackId::new(1), RackId::new(2)]);
        let Response::Reading(Some(reading)) = call(2, &Request::Read(RackId::new(1))) else {
            panic!("expected reading");
        };
        assert_eq!(reading.rack, RackId::new(1));
        assert_eq!(call(3, &Request::Ping), Response::Pong);
        assert_eq!(
            call(
                4,
                &Request::SetChargeOverride(RackId::new(0), Amperes::MAX_CHARGE)
            ),
            Response::Ack
        );
        // The command took effect on the hosted agent.
        host.with_agents(|agents| {
            assert_eq!(
                agents[0].battery().bbu().charger().override_current(),
                Some(Amperes::MAX_CHARGE)
            );
        });
        drop(server);
    }

    #[test]
    fn batched_ops_mirror_per_rack_semantics() {
        let host = host(3, 5);
        // A batched read returns every hosted rack in fleet order and joins
        // all of them, exactly as per-rack reads would have.
        let Response::Readings(readings) = host.handle(&Request::ReadAllReadings) else {
            panic!("expected readings");
        };
        assert_eq!(readings.len(), 3);
        for (i, reading) in readings.iter().enumerate() {
            assert_eq!(reading.rack, RackId::new(i as u32));
            assert!(host.is_coordinated(reading.rack));
        }

        // A batch applies each hosted command and counts only those; the
        // ghost rack is skipped without disturbing anything.
        let response = host.handle(&Request::ApplyCommandBatch(vec![
            AgentCommand::SetChargeOverride(RackId::new(0), Amperes::MAX_CHARGE),
            AgentCommand::CapServers(RackId::new(1), Watts::from_kilowatts(4.0)),
            AgentCommand::SetChargeOverride(RackId::new(99), Amperes::MAX_CHARGE),
        ]));
        assert_eq!(response, Response::BatchAck(2));
        host.with_agents(|agents| {
            assert_eq!(
                agents[0].battery().bbu().charger().override_current(),
                Some(Amperes::MAX_CHARGE)
            );
        });
        assert!(host.readings()[1].capped_power > Watts::ZERO);

        // Batched contact renews leases like per-rack contact does.
        for _ in 0..10 {
            host.advance(3);
            host.handle(&Request::ReadAllReadings);
        }
        for i in 0..3 {
            assert!(host.is_coordinated(RackId::new(i)));
        }
    }

    #[test]
    fn tick_leaf_without_controller_reports_monitoring_aggregate() {
        use recharge_units::SimTime;
        let host = host(2, 5);
        host.with_agents(|agents| {
            for a in agents {
                a.step(Seconds::new(1.0));
            }
        });
        let Response::GroupAggregate(aggregate) = host.handle(&Request::TickLeaf {
            now: SimTime::from_secs(1.0),
            budget: None,
        }) else {
            panic!("expected aggregate");
        };
        let expected: Watts = host
            .readings()
            .iter()
            .filter(|r| r.input_power_present)
            .map(|r| r.it_load)
            .sum();
        assert_eq!(aggregate.it_load, expected);
        assert_eq!(aggregate.overrides_sent, 0);
        // The monitoring tick still counts as controller contact.
        assert!(host.is_coordinated(RackId::new(0)));
    }

    #[test]
    fn tick_leaf_runs_the_hosted_controller_locally() {
        use recharge_dynamo::{ControllerConfig, Strategy};
        use recharge_units::{DeviceId, SimTime};
        let host = host(3, DEFAULT_LEASE_TICKS);
        host.install_leaf_controller(Controller::new(
            ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
            Strategy::PriorityAware,
        ));
        // Ride through an outage so the leaf has charging racks to plan.
        host.with_agents(|agents| {
            for a in agents.iter_mut() {
                a.set_input_power(false);
            }
            for a in agents.iter_mut() {
                a.step(Seconds::new(60.0));
            }
            for a in agents.iter_mut() {
                a.set_input_power(true);
            }
            for a in agents.iter_mut() {
                a.step(Seconds::new(1.0));
            }
        });
        let Response::GroupAggregate(aggregate) = host.handle(&Request::TickLeaf {
            now: SimTime::from_secs(1.0),
            budget: Some(Watts::from_kilowatts(150.0)),
        }) else {
            panic!("expected aggregate");
        };
        assert!(aggregate.overrides_sent > 0, "leaf sent no overrides");
        host.with_agents(|agents| {
            for a in agents {
                assert!(
                    a.battery().bbu().charger().override_current().is_some(),
                    "leaf tick must coordinate hosted racks locally"
                );
            }
        });
    }

    #[test]
    fn read_health_reports_without_renewing_leases() {
        let host = host(3, 5).with_shard(7);
        let Response::Health(health) = host.handle(&Request::ReadHealth) else {
            panic!("expected health");
        };
        assert_eq!(health.shard, 7);
        assert_eq!(health.racks, 3);
        assert_eq!(health.coordinated, 0);
        // Scraping health is not controller contact: nobody joined.
        assert!(!host.is_coordinated(RackId::new(0)));

        host.handle(&Request::Read(RackId::new(0)));
        let Response::Health(health) = host.handle(&Request::ReadHealth) else {
            panic!("expected health");
        };
        assert_eq!(health.coordinated, 1);
    }

    #[test]
    fn stale_term_commands_are_fenced_after_takeover() {
        let host = host(2, DEFAULT_LEASE_TICKS);
        let rack = RackId::new(0);

        // Term 1: the original leader overrides rack 0.
        let response = host.handle(&Request::ApplyFencedBatch {
            term: 1,
            leader: 0,
            commands: vec![AgentCommand::SetChargeOverride(rack, Amperes::MIN_CHARGE)],
        });
        assert_eq!(
            response,
            Response::FencedAck {
                accepted: true,
                term: 1,
                applied: 1,
            }
        );
        assert!(host.is_coordinated(rack));

        // Term 2: a standby took over and re-overrides the rack.
        let response = host.handle(&Request::ApplyFencedBatch {
            term: 2,
            leader: 1,
            commands: vec![AgentCommand::SetChargeOverride(rack, Amperes::MAX_CHARGE)],
        });
        assert_eq!(
            response,
            Response::FencedAck {
                accepted: true,
                term: 2,
                applied: 1,
            }
        );

        // The deposed leader wakes and replays its term-1 command: rejected
        // wholesale, nothing applied, the takeover's override untouched.
        let response = host.handle(&Request::ApplyFencedBatch {
            term: 1,
            leader: 0,
            commands: vec![AgentCommand::SetChargeOverride(rack, Amperes::MIN_CHARGE)],
        });
        assert_eq!(
            response,
            Response::FencedAck {
                accepted: false,
                term: 2,
                applied: 0,
            }
        );
        host.with_agents(|agents| {
            assert_eq!(
                agents[0].battery().bbu().charger().override_current(),
                Some(Amperes::MAX_CHARGE),
                "a fenced batch must not disturb the current leader's override"
            );
        });

        // A stale snapshot install is fenced the same way.
        let response = host.handle(&Request::InstallSnapshot(StoredSnapshot {
            term: 1,
            leader: 0,
            tick: 9,
            bytes: vec![1, 0, 0, 0, 0, 0, 0, 0, 0],
        }));
        assert_eq!(
            response,
            Response::SnapshotAck {
                accepted: false,
                term: 2,
            }
        );
        assert_eq!(
            host.handle(&Request::FetchSnapshot),
            Response::Snapshot(None)
        );
    }

    #[test]
    fn snapshots_replicate_and_fetch_without_touching_leases() {
        let host = host(1, 5);
        let snapshot = StoredSnapshot {
            term: 3,
            leader: 1,
            tick: 42,
            bytes: vec![1, 0, 0, 0, 0, 0, 0, 0, 0],
        };
        assert_eq!(
            host.handle(&Request::InstallSnapshot(snapshot.clone())),
            Response::SnapshotAck {
                accepted: true,
                term: 3,
            }
        );
        assert_eq!(
            host.handle(&Request::FetchSnapshot),
            Response::Snapshot(Some(snapshot))
        );
        // Replication is bookkeeping, not coordination: nobody joined.
        assert!(!host.is_coordinated(RackId::new(0)));
    }

    #[test]
    fn stepping_and_serving_share_state() {
        let host = Arc::new(host(1, DEFAULT_LEASE_TICKS));
        // Ride through an outage, then read over the host surface.
        host.with_agents(|agents| {
            agents[0].set_input_power(false);
            agents[0].step(Seconds::new(60.0));
            agents[0].set_input_power(true);
            agents[0].step(Seconds::new(1.0));
        });
        let Response::Reading(Some(reading)) = host.handle(&Request::Read(RackId::new(0))) else {
            panic!("expected reading");
        };
        assert!(reading.is_charging());
        assert_eq!(host.readings()[0], reading);
    }
}
