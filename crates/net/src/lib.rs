//! `recharge-net`: the RPC mesh between Dynamo controllers and rack agents.
//!
//! The paper's controllers coordinate rack-level battery charging over a
//! production RPC mesh (§IV-B/C); the simulator historically stood that in
//! with a function call ([`InMemoryBus`](recharge_dynamo::InMemoryBus)).
//! This crate provides the real thing, std-only (no async runtime — plain
//! `std::net` sockets and threads, honouring the workspace's vendored-deps
//! constraint):
//!
//! - [`wire`] — a length-prefixed framed binary protocol for the
//!   `messages.rs` types, `f64`-bit-exact so remote readings equal local
//!   ones.
//! - [`endpoint`] — TCP and Unix-domain transports behind one façade, with
//!   short-read- and timeout-safe frame I/O.
//! - [`server`] — [`AgentHost`]/[`AgentServer`]: racks behind a listener,
//!   with the lease-based degraded-mode state machine (coordinated →
//!   standalone → rejoin) from the paper's §III-B standalone variable
//!   charger.
//! - [`client`] — [`RpcBus`]: an [`AgentBus`](recharge_dynamo::AgentBus)
//!   with per-call deadlines, bounded retry (exponential backoff + seeded
//!   jitter), and transparent reconnect. Exhausted budgets look exactly like
//!   today's unreachable racks: `read` returns `None`.
//! - [`fault`] — deterministic seeded link faults (drop / delay / duplicate /
//!   partition schedules in simulation ticks) for reproducible chaos runs.
//! - [`backend`] — [`RpcFleetBackend`]: a
//!   [`FleetBackend`](recharge_dynamo::FleetBackend) whose controller bus
//!   crosses a real socket, selected per scenario via [`RpcMeshConfig`].
//! - [`sharded`] — [`ShardedRpcFleetBackend`]: the fleet partitioned into
//!   one server per RPP/row ([`ShardPlan`]), batched wire ops
//!   (`ReadAllReadings` / `ApplyCommandBatch`: O(servers) RPCs per control
//!   tick instead of O(racks)), concurrent per-shard client threads joined
//!   on a latch, and optional in-server leaf control (`TickLeaf`) where only
//!   per-group aggregates and budgets cross the wire.
//!
//! Telemetry: every RPC path records `net.rpc_*` counters (calls, retries,
//! timeouts, reconnects, stale replies, lost commands), `net.rpc_call` /
//! `net.rpc_serve` spans, and call-latency histograms — the aggregate
//! `net.rpc_latency_us` plus a zero-padded per-shard series
//! (`net.rpc_latency_us.shardNNN`) when the bus carries a shard label.
//! Fallback and rejoin transitions emit `net.standalone_fallback` /
//! `net.rejoin` events with rack and tick, and the flight recorder journals
//! lease grants/expiries, RPC retries, and partition edges. The live health
//! plane is [`Request::ReadHealth`]: each server answers with a
//! [`HealthReport`] (shard identity, hosted/coordinated rack counts, and the
//! full metrics registry in Prometheus text exposition).
//!
//! The headline correctness property, pinned by
//! `crates/sim/tests/backend_equivalence.rs`: with a clean link, a full
//! simulation over [`RpcFleetBackend`] produces **bit-identical**
//! `RunMetrics` to the in-memory backends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod endpoint;
pub mod fault;
pub mod server;
pub mod sharded;
pub mod wire;

pub use backend::{spawn_mesh, RpcFleetBackend, RpcMeshConfig, RpcTransport, ShardPlan};
pub use client::{RetryPolicy, RpcBus, RpcBusConfig};
pub use endpoint::{as_frame_too_large, Endpoint, NetListener, NetStream};
pub use fault::{FaultClock, FaultPlan, LinkFaults, Partition, PartitionScope, ProcessFault};
pub use server::{AgentHost, AgentServer, DEFAULT_LEASE_TICKS};
pub use sharded::{LeafControlSpec, ShardedRpcBus, ShardedRpcFleetBackend};
pub use wire::{
    AgentCommand, GroupAggregate, HealthReport, Request, Response, StoredSnapshot, WireError,
    PROTOCOL_VERSION,
};
