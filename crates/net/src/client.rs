//! The controller side of the mesh: [`RpcBus`], an [`AgentBus`] over a
//! framed socket connection.
//!
//! Every call carries a per-call deadline, a bounded retry budget with
//! exponential backoff and deterministic jitter, and reconnects lazily when
//! the connection is lost. A call that exhausts its budget degrades exactly
//! the way the controller already tolerates: reads return `None` (the rack
//! looks unreachable, as with [`InMemoryBus::disconnect`]) and commands are
//! dropped — the agent's own lease machinery (see
//! [`server`](crate::server)) guarantees a rack that stops hearing commands
//! falls back to safe standalone behaviour.
//!
//! The rack list is discovered once at connect time and cached: a bus whose
//! link later degrades still *scopes* the same racks (matching
//! [`InMemoryBus`] semantics, where disconnected racks stay listed but stop
//! answering reads), so the controller keeps trying them and notices the
//! heal.
//!
//! Fault injection ([`LinkFaults`]) wraps the call path: injected drops
//! consume a retry attempt as a synthetic timeout (without holding the
//! caller for the full wall-clock deadline — see [`fault`](crate::fault)),
//! injected delays are real sleeps, and partitions fail calls fast.
//!
//! [`InMemoryBus`]: recharge_dynamo::InMemoryBus
//! [`InMemoryBus::disconnect`]: recharge_dynamo::InMemoryBus::disconnect

use std::io;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::splitmix64;
use recharge_dynamo::{AgentBus, PowerReading};
use recharge_telemetry::{
    flight, histogram, histogram_named, tcounter, tspan, FlightKind, Histogram, ReasonCode,
    NO_BUCKET, NO_RACK,
};
use recharge_units::{Amperes, RackId, SimTime, Watts};

use crate::endpoint::{recv_frame, send_frame, Endpoint, FrameBuffer, FrameRead, NetStream};
use crate::fault::{FaultClock, FaultPlan, LinkFaults};
use crate::wire::{
    decode_response, encode_request, AgentCommand, GroupAggregate, HealthReport, Request, Response,
    StoredSnapshot, MAX_FRAME_LEN,
};

/// Bucket upper bounds (microseconds) for the RPC latency histograms — a
/// roughly-logarithmic ladder from sub-frame loopback calls to calls that
/// burned most of a 500 ms deadline on retries.
const LATENCY_BOUNDS_US: [f64; 11] = [
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
];

/// Bounded-retry parameters: exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per call (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a seeded uniform
    /// factor in `[1 - jitter, 1 + jitter]` to de-synchronise retry storms.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based), jittered by a
    /// uniform draw `u` in `[0, 1)`.
    fn backoff(&self, retry: u32, u: f64) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_backoff);
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * u;
        doubled.mul_f64(factor.max(0.0))
    }
}

/// Connection and call parameters for an [`RpcBus`].
#[derive(Debug, Clone, PartialEq)]
pub struct RpcBusConfig {
    /// Per-attempt response deadline.
    pub deadline: Duration,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Seed for backoff jitter (distinct from the fault-plan seed).
    pub seed: u64,
    /// Link faults to inject; `None` for a clean link.
    pub fault: Option<FaultPlan>,
    /// Frame cap this side enforces on both sent and received frames.
    pub max_frame_len: u32,
    /// Shard index this bus serves within a sharded mesh; labels the
    /// per-shard RPC latency histogram (`net.rpc_latency_us.shardNNN`) in
    /// addition to the aggregate series. `None` for a lone bus.
    pub shard_label: Option<u32>,
}

impl Default for RpcBusConfig {
    fn default() -> Self {
        RpcBusConfig {
            deadline: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            seed: 0x0b5e_55ed,
            fault: None,
            max_frame_len: MAX_FRAME_LEN,
            shard_label: None,
        }
    }
}

struct ClientInner {
    conn: Option<(NetStream, FrameBuffer)>,
    faults: LinkFaults,
    jitter_rng: u64,
    next_id: u64,
    ever_connected: bool,
    /// Last partition state this bus observed; flipping it journals a
    /// partition edge into the flight recorder.
    was_partitioned: bool,
}

/// An [`AgentBus`] speaking the framed wire protocol to an
/// [`AgentServer`](crate::server::AgentServer).
///
/// Interior mutability (one mutex around the connection) lets `read` keep
/// the trait's `&self` signature; the controller is single-threaded per bus,
/// so the lock is uncontended in practice.
pub struct RpcBus {
    endpoint: Endpoint,
    config: RpcBusConfig,
    racks: Vec<RackId>,
    inner: Mutex<ClientInner>,
    /// Aggregate call-latency histogram (`net.rpc_latency_us`).
    latency: Histogram,
    /// Per-shard call-latency histogram, when the config names a shard.
    shard_latency: Option<Histogram>,
}

impl RpcBus {
    /// Connects to `endpoint` and discovers the hosted racks.
    ///
    /// Discovery uses the same deadline/retry budget as any call; if the
    /// server is unreachable the constructor fails rather than returning a
    /// bus that scopes zero racks.
    pub fn connect(
        endpoint: &Endpoint,
        config: RpcBusConfig,
        clock: FaultClock,
    ) -> io::Result<Self> {
        let faults = LinkFaults::new(config.fault.clone().unwrap_or_default(), clock);
        // Zero-padded shard labels keep the sorted snapshot order numeric.
        let shard_latency = config.shard_label.map(|s| {
            histogram_named(
                format!("net.rpc_latency_us.shard{s:03}"),
                &LATENCY_BOUNDS_US,
            )
        });
        let mut bus = RpcBus {
            endpoint: endpoint.clone(),
            racks: Vec::new(),
            inner: Mutex::new(ClientInner {
                conn: None,
                faults,
                jitter_rng: config.seed ^ 0xa5a5_a5a5_a5a5_a5a5,
                next_id: 1,
                ever_connected: false,
                was_partitioned: false,
            }),
            config,
            latency: histogram("net.rpc_latency_us", &LATENCY_BOUNDS_US),
            shard_latency,
        };
        match bus.call(&Request::ListRacks) {
            Some(Response::Racks(racks)) => {
                bus.racks = racks;
                Ok(bus)
            }
            _ => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "rack discovery failed against {endpoint}",
                    endpoint = bus.endpoint
                ),
            )),
        }
    }

    /// The endpoint this bus talks to.
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Issues one request with the full deadline/retry budget.
    ///
    /// `None` means the budget was exhausted: the caller sees the same
    /// signal an unreachable in-memory rack produces.
    fn call(&self, request: &Request) -> Option<Response> {
        let _span = tspan!("net.rpc_call", "net");
        tcounter!("net.rpc_calls").inc();
        // Clock reads cost more than the disabled-path check, so only time
        // the call when the latency histograms can actually consume it.
        let started = recharge_telemetry::enabled().then(Instant::now);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let inner = &mut *inner;
        let rack = request.rack();
        let rack_idx = rack.map_or(NO_RACK, RackId::index);
        let shard = u64::from(self.config.shard_label.unwrap_or(0));

        for attempt in 1..=self.config.retry.max_attempts.max(1) {
            if attempt > 1 {
                tcounter!("net.rpc_retries").inc();
                flight(
                    FlightKind::RpcRetry,
                    ReasonCode::RpcDeadline,
                    rack_idx,
                    0,
                    NO_BUCKET,
                    u64::from(attempt),
                    shard,
                );
                let u = uniform(&mut inner.jitter_rng);
                std::thread::sleep(self.config.retry.backoff(attempt - 1, u));
            }

            // An active partition fails the call fast: partitions persist for
            // whole simulation ticks, so burning wall-clock deadlines against
            // one would only slow the run without changing the outcome.
            let partitioned = inner.faults.partitioned(rack);
            if partitioned != inner.was_partitioned {
                inner.was_partitioned = partitioned;
                flight(
                    FlightKind::PartitionEdge,
                    ReasonCode::RpcPartitioned,
                    rack_idx,
                    0,
                    NO_BUCKET,
                    u64::from(partitioned),
                    shard,
                );
            }
            if partitioned {
                tcounter!("net.rpc_timeouts").inc();
                break;
            }

            let decision = inner.faults.decide();
            if !decision.delay.is_zero() {
                std::thread::sleep(decision.delay);
            }

            // Ensure a connection.
            if inner.conn.is_none() {
                match NetStream::connect(&self.endpoint, self.config.connect_timeout) {
                    Ok(stream) => {
                        if stream
                            .set_read_timeout(Some(Duration::from_millis(5)))
                            .is_err()
                        {
                            continue;
                        }
                        if inner.ever_connected {
                            tcounter!("net.rpc_reconnects").inc();
                        }
                        inner.ever_connected = true;
                        inner.conn = Some((stream, FrameBuffer::new()));
                    }
                    Err(_) => {
                        tcounter!("net.rpc_connect_failures").inc();
                        continue;
                    }
                }
            }

            let id = inner.next_id;
            inner.next_id += 1;
            let payload = encode_request(id, request);

            if decision.drop_request {
                // The frame never reaches the wire; the attempt times out
                // synthetically (no wall-clock wait — see module docs).
                tcounter!("net.rpc_timeouts").inc();
                continue;
            }

            let (stream, buffer) = inner.conn.as_mut().expect("connection ensured above");
            let mut send = send_frame(stream, &payload, self.config.max_frame_len);
            if send.is_ok() && decision.duplicate {
                send = send_frame(stream, &payload, self.config.max_frame_len);
            }
            if send.is_err() {
                inner.conn = None;
                tcounter!("net.rpc_send_failures").inc();
                continue;
            }

            if decision.drop_response {
                // The server received and executed the request, but the reply
                // is lost. It stays buffered in the stream; the id check
                // below discards it as stale on the next attempt.
                tcounter!("net.rpc_timeouts").inc();
                continue;
            }

            // Await the matching reply within the per-attempt deadline.
            let deadline = Instant::now() + self.config.deadline;
            let mut drop_conn = false;
            let reply = loop {
                match recv_frame(stream, buffer, Some(deadline), self.config.max_frame_len) {
                    Ok(FrameRead::Frame(frame)) => match decode_response(&frame) {
                        Ok((got_id, response)) if got_id == id => break Some(response),
                        Ok(_) => {
                            // A reply to an earlier (timed-out or duplicated)
                            // request; discard and keep waiting.
                            tcounter!("net.rpc_stale_replies").inc();
                        }
                        Err(_) => {
                            tcounter!("net.rpc_bad_frames").inc();
                            drop_conn = true;
                            break None;
                        }
                    },
                    Ok(FrameRead::TimedOut) => {
                        tcounter!("net.rpc_timeouts").inc();
                        break None;
                    }
                    Ok(FrameRead::Closed) | Err(_) => {
                        tcounter!("net.rpc_disconnects").inc();
                        drop_conn = true;
                        break None;
                    }
                }
            };
            if drop_conn {
                inner.conn = None;
            }
            if let Some(response) = reply {
                self.record_latency(started);
                return Some(response);
            }
        }
        tcounter!("net.rpc_failures").inc();
        self.record_latency(started);
        None
    }

    /// Records one call's wall-clock latency (microseconds) into the
    /// aggregate and, when configured, per-shard histograms.
    fn record_latency(&self, started: Option<Instant>) {
        if let Some(started) = started {
            let us = started.elapsed().as_secs_f64() * 1e6;
            self.latency.record(us);
            if let Some(shard) = &self.shard_latency {
                shard.record(us);
            }
        }
    }

    /// Issues a command, dropping it (with a counter) if the budget runs out.
    fn command(&self, request: &Request) {
        if self.call(request).is_none() {
            tcounter!("net.rpc_lost_commands").inc();
        }
    }

    /// Reads every hosted rack in one round trip (fleet order); `None` when
    /// the retry budget is exhausted (the whole shard looks unreachable).
    #[must_use]
    pub fn read_all(&self) -> Option<Vec<PowerReading>> {
        match self.call(&Request::ReadAllReadings) {
            Some(Response::Readings(readings)) => Some(readings),
            _ => None,
        }
    }

    /// Applies a command batch in one round trip, returning how many commands
    /// landed; `None` when the batch was lost (counted like a lost command).
    pub fn apply_batch(&self, commands: Vec<AgentCommand>) -> Option<u32> {
        match self.call(&Request::ApplyCommandBatch(commands)) {
            Some(Response::BatchAck(applied)) => Some(applied),
            _ => {
                tcounter!("net.rpc_lost_commands").inc();
                None
            }
        }
    }

    /// Runs the server-hosted leaf control tick, returning the group
    /// aggregate; `None` when the shard is unreachable.
    #[must_use]
    pub fn tick_leaf(&self, now: SimTime, budget: Option<Watts>) -> Option<GroupAggregate> {
        match self.call(&Request::TickLeaf { now, budget }) {
            Some(Response::GroupAggregate(aggregate)) => Some(aggregate),
            _ => None,
        }
    }

    /// Reads the server's live health snapshot (lease summary plus the
    /// Prometheus text exposition of its metrics registry); `None` when the
    /// shard is unreachable. Health reads never renew coordination leases.
    #[must_use]
    pub fn read_health(&self) -> Option<HealthReport> {
        match self.call(&Request::ReadHealth) {
            Some(Response::Health(health)) => Some(health),
            _ => None,
        }
    }

    /// Applies a term-fenced command batch: returns `Some((accepted,
    /// witnessed_term, applied))`, or `None` when the shard is unreachable.
    /// `accepted == false` means the server has witnessed a higher term and
    /// fenced this leader — the caller must stop acting on the fleet.
    pub fn apply_fenced_batch(
        &self,
        term: u64,
        leader: u32,
        commands: Vec<AgentCommand>,
    ) -> Option<(bool, u64, u32)> {
        match self.call(&Request::ApplyFencedBatch {
            term,
            leader,
            commands,
        }) {
            Some(Response::FencedAck {
                accepted,
                term,
                applied,
            }) => Some((accepted, term, applied)),
            _ => {
                tcounter!("net.rpc_lost_commands").inc();
                None
            }
        }
    }

    /// Replicates a controller-brain snapshot to the server: returns
    /// `Some((accepted, witnessed_term))`, `None` when unreachable.
    pub fn install_snapshot(&self, snapshot: StoredSnapshot) -> Option<(bool, u64)> {
        match self.call(&Request::InstallSnapshot(snapshot)) {
            Some(Response::SnapshotAck { accepted, term }) => Some((accepted, term)),
            _ => None,
        }
    }

    /// Fetches the server's last replicated snapshot (takeover recovery).
    /// The outer `None` means unreachable; the inner `None` means the server
    /// holds no snapshot.
    #[must_use]
    pub fn fetch_snapshot(&self) -> Option<Option<StoredSnapshot>> {
        match self.call(&Request::FetchSnapshot) {
            Some(Response::Snapshot(snapshot)) => Some(snapshot),
            _ => None,
        }
    }
}

fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl AgentBus for RpcBus {
    fn racks(&self) -> Vec<RackId> {
        self.racks.clone()
    }

    fn read(&self, rack: RackId) -> Option<PowerReading> {
        match self.call(&Request::Read(rack)) {
            Some(Response::Reading(reading)) => reading,
            _ => None,
        }
    }

    fn set_charge_override(&mut self, rack: RackId, current: Amperes) {
        self.command(&Request::SetChargeOverride(rack, current));
    }

    fn clear_charge_override(&mut self, rack: RackId) {
        self.command(&Request::ClearChargeOverride(rack));
    }

    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool) {
        self.command(&Request::SetChargePostponed(rack, postponed));
    }

    fn cap_servers(&mut self, rack: RackId, limit: Watts) {
        self.command(&Request::CapServers(rack, limit));
    }

    fn uncap_servers(&mut self, rack: RackId) {
        self.command(&Request::UncapServers(rack));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Partition;
    use crate::server::{AgentHost, AgentServer, DEFAULT_LEASE_TICKS};
    use recharge_dynamo::SimRackAgent;
    use recharge_units::Priority;
    use std::sync::Arc;

    fn spawn_server(
        n: u32,
        clock: &FaultClock,
    ) -> (AgentServer<SimRackAgent>, Arc<AgentHost<SimRackAgent>>) {
        let agents = (0..n)
            .map(|i| SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize]).build())
            .collect();
        let host = Arc::new(AgentHost::new(agents, DEFAULT_LEASE_TICKS, clock.clone()));
        let server = AgentServer::serve(Arc::clone(&host), &Endpoint::loopback()).expect("serve");
        (server, host)
    }

    #[test]
    fn bus_discovers_reads_and_commands() {
        let clock = FaultClock::new();
        let (server, host) = spawn_server(3, &clock);
        let mut bus =
            RpcBus::connect(server.endpoint(), RpcBusConfig::default(), clock).expect("connect");
        assert_eq!(
            bus.racks(),
            vec![RackId::new(0), RackId::new(1), RackId::new(2)]
        );
        let reading = bus.read(RackId::new(2)).expect("read");
        assert_eq!(reading.rack, RackId::new(2));
        assert!(bus.read(RackId::new(9)).is_none(), "unknown rack");

        bus.set_charge_override(RackId::new(1), Amperes::MIN_CHARGE);
        host.with_agents(|agents| {
            assert_eq!(
                agents[1].battery().bbu().charger().override_current(),
                Some(Amperes::MIN_CHARGE)
            );
        });
        bus.clear_charge_override(RackId::new(1));
        host.with_agents(|agents| {
            assert!(agents[1]
                .battery()
                .bbu()
                .charger()
                .override_current()
                .is_none());
        });
    }

    #[test]
    fn batched_calls_round_trip() {
        let clock = FaultClock::new();
        let (server, host) = spawn_server(3, &clock);
        let bus =
            RpcBus::connect(server.endpoint(), RpcBusConfig::default(), clock).expect("connect");

        let readings = bus.read_all().expect("read_all");
        assert_eq!(readings.len(), 3);
        for (i, reading) in readings.iter().enumerate() {
            assert_eq!(reading.rack, RackId::new(i as u32));
            // Batched reads must be bit-identical to per-rack reads.
            assert_eq!(*reading, bus.read(reading.rack).expect("read"));
        }

        let applied = bus
            .apply_batch(vec![
                AgentCommand::SetChargeOverride(RackId::new(0), Amperes::MAX_CHARGE),
                AgentCommand::SetChargeOverride(RackId::new(2), Amperes::MIN_CHARGE),
                AgentCommand::ClearChargeOverride(RackId::new(42)),
            ])
            .expect("apply_batch");
        assert_eq!(applied, 2);
        host.with_agents(|agents| {
            assert_eq!(
                agents[0].battery().bbu().charger().override_current(),
                Some(Amperes::MAX_CHARGE)
            );
            assert_eq!(
                agents[2].battery().bbu().charger().override_current(),
                Some(Amperes::MIN_CHARGE)
            );
        });

        // No leaf installed: the tick reports a monitoring aggregate.
        let aggregate = bus
            .tick_leaf(SimTime::from_secs(0.0), None)
            .expect("tick_leaf");
        assert_eq!(aggregate.overrides_sent, 0);
        let expected: Watts = readings
            .iter()
            .filter(|r| r.input_power_present)
            .map(|r| r.it_load)
            .sum();
        assert_eq!(aggregate.it_load, expected);
    }

    #[test]
    fn oversize_batch_reply_is_survivable() {
        // A tiny receive cap on the client: the server's ListRacks reply fits,
        // but a batched readings frame does not — the call fails cleanly (the
        // shard looks unreachable) instead of wedging the stream.
        let clock = FaultClock::new();
        let (server, _host) = spawn_server(3, &clock);
        let config = RpcBusConfig {
            max_frame_len: 64,
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(1),
                jitter: 0.0,
            },
            ..RpcBusConfig::default()
        };
        let bus = RpcBus::connect(server.endpoint(), config, clock).expect("connect");
        assert_eq!(bus.racks().len(), 3);
        // 3 readings × 47 bytes ≫ 64: the reply trips the typed cap.
        assert!(bus.read_all().is_none());
        // The bus reconnects and keeps working for frames under the cap.
        assert!(bus.read(RackId::new(0)).is_some());
    }

    #[test]
    fn connect_fails_without_a_server() {
        let config = RpcBusConfig {
            deadline: Duration::from_millis(20),
            connect_timeout: Duration::from_millis(50),
            retry: RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            ..RpcBusConfig::default()
        };
        // A listener that was dropped: the port is closed.
        let endpoint = {
            let listener = crate::endpoint::NetListener::bind(&Endpoint::loopback()).expect("bind");
            listener.local_endpoint().expect("endpoint")
        };
        assert!(RpcBus::connect(&endpoint, config, FaultClock::new()).is_err());
    }

    #[test]
    fn partition_makes_reads_fail_fast_and_heal() {
        let clock = FaultClock::new();
        let (server, _host) = spawn_server(1, &clock);
        let config = RpcBusConfig {
            fault: Some(FaultPlan::partitions_only(vec![Partition::all(5, 10)])),
            ..RpcBusConfig::default()
        };
        let bus = RpcBus::connect(server.endpoint(), config, clock.clone()).expect("connect");
        assert!(bus.read(RackId::new(0)).is_some(), "before partition");
        clock.advance(5);
        let start = Instant::now();
        assert!(bus.read(RackId::new(0)).is_none(), "during partition");
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "partitioned calls must fail fast, took {:?}",
            start.elapsed()
        );
        // Scoping is unaffected: the cached rack list persists.
        assert_eq!(bus.racks(), vec![RackId::new(0)]);
        clock.advance(5);
        assert!(bus.read(RackId::new(0)).is_some(), "after heal");
    }

    #[test]
    fn dropped_frames_are_retried_transparently() {
        let clock = FaultClock::new();
        let (server, _host) = spawn_server(1, &clock);
        // Heavy request-drop but a generous retry budget: calls still land.
        let config = RpcBusConfig {
            fault: Some(FaultPlan {
                seed: 11,
                drop_request: 0.4,
                duplicate: 0.2,
                ..FaultPlan::default()
            }),
            retry: RetryPolicy {
                max_attempts: 12,
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(2),
                jitter: 0.5,
            },
            ..RpcBusConfig::default()
        };
        let bus = RpcBus::connect(server.endpoint(), config, clock).expect("connect");
        for _ in 0..50 {
            assert!(bus.read(RackId::new(0)).is_some());
        }
    }

    #[test]
    fn lost_responses_still_apply_commands() {
        let clock = FaultClock::new();
        let (server, host) = spawn_server(1, &clock);
        let config = RpcBusConfig {
            fault: Some(FaultPlan {
                seed: 3,
                drop_response: 0.5,
                ..FaultPlan::default()
            }),
            retry: RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(2),
                jitter: 0.5,
            },
            ..RpcBusConfig::default()
        };
        let mut bus = RpcBus::connect(server.endpoint(), config, clock).expect("connect");
        for _ in 0..20 {
            bus.set_charge_override(RackId::new(0), Amperes::MAX_CHARGE);
            assert!(bus.read(RackId::new(0)).is_some());
        }
        host.with_agents(|agents| {
            assert_eq!(
                agents[0].battery().bbu().charger().override_current(),
                Some(Amperes::MAX_CHARGE)
            );
        });
    }

    #[test]
    fn reconnects_after_server_restart() {
        let clock = FaultClock::new();
        let (server, _host) = spawn_server(2, &clock);
        let endpoint = server.endpoint().clone();
        let config = RpcBusConfig {
            deadline: Duration::from_millis(100),
            connect_timeout: Duration::from_millis(100),
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(5),
                jitter: 0.0,
            },
            ..RpcBusConfig::default()
        };
        let bus = RpcBus::connect(&endpoint, config, clock.clone()).expect("connect");
        assert!(bus.read(RackId::new(0)).is_some());
        drop(server);
        // The controller keeps polling; reads fail while the server is down.
        assert!(bus.read(RackId::new(0)).is_none());

        // Restart on the same endpoint (loopback TCP port may be reused only
        // if we bind the exact address — do so explicitly).
        let agents = vec![
            SimRackAgent::builder(RackId::new(0), Priority::P1).build(),
            SimRackAgent::builder(RackId::new(1), Priority::P2).build(),
        ];
        let host = Arc::new(AgentHost::new(agents, DEFAULT_LEASE_TICKS, clock));
        let _server = AgentServer::serve(host, &endpoint).expect("rebind");
        // A few attempts may be needed while the listener comes up.
        let healed = (0..50).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            bus.read(RackId::new(0)).is_some()
        });
        assert!(healed, "bus must reconnect after server restart");
    }

    #[test]
    fn read_health_round_trips_over_loopback() {
        let clock = FaultClock::new();
        let (server, _host) = spawn_server(2, &clock);
        let config = RpcBusConfig {
            shard_label: Some(5),
            ..RpcBusConfig::default()
        };
        let bus = RpcBus::connect(server.endpoint(), config, clock).expect("connect");
        let health = bus.read_health().expect("health");
        assert_eq!(health.shard, 0, "lone host defaults to shard 0");
        assert_eq!(health.racks, 2);
        // Neither discovery nor the health read is controller contact.
        assert_eq!(health.coordinated, 0);

        // A real read joins the rack; the next scrape sees it.
        assert!(bus.read(RackId::new(1)).is_some());
        let health = bus.read_health().expect("health");
        assert_eq!(health.coordinated, 1);
    }

    #[test]
    fn fenced_ops_round_trip_over_loopback() {
        let clock = FaultClock::new();
        let (server, host) = spawn_server(2, &clock);
        let bus =
            RpcBus::connect(server.endpoint(), RpcBusConfig::default(), clock).expect("connect");

        // No snapshot replicated yet.
        assert_eq!(bus.fetch_snapshot(), Some(None));

        // Term 1 commands land.
        let ack = bus
            .apply_fenced_batch(
                1,
                0,
                vec![AgentCommand::SetChargeOverride(
                    RackId::new(0),
                    Amperes::MIN_CHARGE,
                )],
            )
            .expect("reachable");
        assert_eq!(ack, (true, 1, 1));

        // Replicate a snapshot at term 2 and fetch it back bit-exactly.
        let snapshot = StoredSnapshot {
            term: 2,
            leader: 1,
            tick: 7,
            bytes: vec![1, 0, 0, 0, 0, 0, 0, 0, 0],
        };
        assert_eq!(bus.install_snapshot(snapshot.clone()), Some((true, 2)));
        assert_eq!(bus.fetch_snapshot(), Some(Some(snapshot)));

        // The deposed term-1 leader is fenced; its command does not land.
        let ack = bus
            .apply_fenced_batch(
                1,
                0,
                vec![AgentCommand::SetChargeOverride(
                    RackId::new(0),
                    Amperes::MAX_CHARGE,
                )],
            )
            .expect("reachable");
        assert_eq!(ack, (false, 2, 0));
        host.with_agents(|agents| {
            assert_eq!(
                agents[0].battery().bbu().charger().override_current(),
                Some(Amperes::MIN_CHARGE)
            );
        });
    }

    #[test]
    fn backoff_shape_is_bounded_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            jitter: 0.5,
        };
        // No jitter draw at the extremes: u=0.5 is the midpoint (factor 1).
        assert_eq!(policy.backoff(1, 0.5), Duration::from_millis(2));
        assert_eq!(policy.backoff(2, 0.5), Duration::from_millis(4));
        // Capped at max_backoff before jitter.
        assert_eq!(policy.backoff(7, 0.5), Duration::from_millis(20));
        // Jitter spans [0.5, 1.5]× around the nominal sleep.
        assert_eq!(policy.backoff(1, 0.0), Duration::from_millis(1));
        assert_eq!(policy.backoff(1, 1.0), Duration::from_millis(3));
    }
}
